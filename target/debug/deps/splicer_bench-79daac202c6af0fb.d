/root/repo/target/debug/deps/splicer_bench-79daac202c6af0fb.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsplicer_bench-79daac202c6af0fb.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
