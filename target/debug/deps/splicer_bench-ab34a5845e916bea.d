/root/repo/target/debug/deps/splicer_bench-ab34a5845e916bea.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsplicer_bench-ab34a5845e916bea.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsplicer_bench-ab34a5845e916bea.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
