/root/repo/target/debug/deps/pcn_workload-b524a87d564a04a8.d: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs Cargo.toml

/root/repo/target/debug/deps/libpcn_workload-b524a87d564a04a8.rmeta: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/builder.rs:
crates/workload/src/funds.rs:
crates/workload/src/scenario.rs:
crates/workload/src/topology.rs:
crates/workload/src/transactions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
