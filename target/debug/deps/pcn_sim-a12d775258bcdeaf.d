/root/repo/target/debug/deps/pcn_sim-a12d775258bcdeaf.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs

/root/repo/target/debug/deps/libpcn_sim-a12d775258bcdeaf.rmeta: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
