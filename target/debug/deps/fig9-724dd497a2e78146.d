/root/repo/target/debug/deps/fig9-724dd497a2e78146.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-724dd497a2e78146: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
