/root/repo/target/debug/deps/determinism-c4f13b23c144f06b.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-c4f13b23c144f06b.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
