/root/repo/target/debug/deps/pcn_graph-3e8e2a8de17d362f.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/dijkstra.rs crates/graph/src/disjoint.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/maxflow.rs crates/graph/src/metrics.rs crates/graph/src/path.rs crates/graph/src/widest.rs crates/graph/src/yen.rs

/root/repo/target/debug/deps/libpcn_graph-3e8e2a8de17d362f.rlib: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/dijkstra.rs crates/graph/src/disjoint.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/maxflow.rs crates/graph/src/metrics.rs crates/graph/src/path.rs crates/graph/src/widest.rs crates/graph/src/yen.rs

/root/repo/target/debug/deps/libpcn_graph-3e8e2a8de17d362f.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/dijkstra.rs crates/graph/src/disjoint.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/maxflow.rs crates/graph/src/metrics.rs crates/graph/src/path.rs crates/graph/src/widest.rs crates/graph/src/yen.rs

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/dijkstra.rs:
crates/graph/src/disjoint.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/maxflow.rs:
crates/graph/src/metrics.rs:
crates/graph/src/path.rs:
crates/graph/src/widest.rs:
crates/graph/src/yen.rs:
