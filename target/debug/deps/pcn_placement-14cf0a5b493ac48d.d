/root/repo/target/debug/deps/pcn_placement-14cf0a5b493ac48d.d: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs Cargo.toml

/root/repo/target/debug/deps/libpcn_placement-14cf0a5b493ac48d.rmeta: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs Cargo.toml

crates/placement/src/lib.rs:
crates/placement/src/assignment.rs:
crates/placement/src/exact.rs:
crates/placement/src/instance.rs:
crates/placement/src/milp_form.rs:
crates/placement/src/plan.rs:
crates/placement/src/solver.rs:
crates/placement/src/supermodular.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
