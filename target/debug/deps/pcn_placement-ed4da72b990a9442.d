/root/repo/target/debug/deps/pcn_placement-ed4da72b990a9442.d: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs

/root/repo/target/debug/deps/pcn_placement-ed4da72b990a9442: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs

crates/placement/src/lib.rs:
crates/placement/src/assignment.rs:
crates/placement/src/exact.rs:
crates/placement/src/instance.rs:
crates/placement/src/milp_form.rs:
crates/placement/src/plan.rs:
crates/placement/src/solver.rs:
crates/placement/src/supermodular.rs:
