/root/repo/target/debug/deps/failure_injection-b3754e7d9bf54f77.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-b3754e7d9bf54f77: tests/failure_injection.rs

tests/failure_injection.rs:
