/root/repo/target/debug/deps/pcn_graph-2d75091ffaef2f74.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/dijkstra.rs crates/graph/src/disjoint.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/maxflow.rs crates/graph/src/metrics.rs crates/graph/src/path.rs crates/graph/src/widest.rs crates/graph/src/yen.rs Cargo.toml

/root/repo/target/debug/deps/libpcn_graph-2d75091ffaef2f74.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/dijkstra.rs crates/graph/src/disjoint.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/maxflow.rs crates/graph/src/metrics.rs crates/graph/src/path.rs crates/graph/src/widest.rs crates/graph/src/yen.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/dijkstra.rs:
crates/graph/src/disjoint.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/maxflow.rs:
crates/graph/src/metrics.rs:
crates/graph/src/path.rs:
crates/graph/src/widest.rs:
crates/graph/src/yen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
