/root/repo/target/debug/deps/milp-5b81ac5887d245fc.d: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs Cargo.toml

/root/repo/target/debug/deps/libmilp-5b81ac5887d245fc.rmeta: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs Cargo.toml

crates/milp/src/lib.rs:
crates/milp/src/branch_bound.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
