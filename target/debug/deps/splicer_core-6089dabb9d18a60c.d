/root/repo/target/debug/deps/splicer_core-6089dabb9d18a60c.d: crates/core/src/lib.rs crates/core/src/epoch.rs crates/core/src/schemes.rs crates/core/src/system.rs crates/core/src/voting.rs crates/core/src/workflow.rs

/root/repo/target/debug/deps/libsplicer_core-6089dabb9d18a60c.rlib: crates/core/src/lib.rs crates/core/src/epoch.rs crates/core/src/schemes.rs crates/core/src/system.rs crates/core/src/voting.rs crates/core/src/workflow.rs

/root/repo/target/debug/deps/libsplicer_core-6089dabb9d18a60c.rmeta: crates/core/src/lib.rs crates/core/src/epoch.rs crates/core/src/schemes.rs crates/core/src/system.rs crates/core/src/voting.rs crates/core/src/workflow.rs

crates/core/src/lib.rs:
crates/core/src/epoch.rs:
crates/core/src/schemes.rs:
crates/core/src/system.rs:
crates/core/src/voting.rs:
crates/core/src/workflow.rs:
