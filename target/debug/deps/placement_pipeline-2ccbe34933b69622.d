/root/repo/target/debug/deps/placement_pipeline-2ccbe34933b69622.d: tests/placement_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libplacement_pipeline-2ccbe34933b69622.rmeta: tests/placement_pipeline.rs Cargo.toml

tests/placement_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
