/root/repo/target/debug/deps/pcn_placement-253665d7df40f24e.d: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs

/root/repo/target/debug/deps/libpcn_placement-253665d7df40f24e.rmeta: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs

crates/placement/src/lib.rs:
crates/placement/src/assignment.rs:
crates/placement/src/exact.rs:
crates/placement/src/instance.rs:
crates/placement/src/milp_form.rs:
crates/placement/src/plan.rs:
crates/placement/src/solver.rs:
crates/placement/src/supermodular.rs:
