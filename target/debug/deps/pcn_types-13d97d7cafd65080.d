/root/repo/target/debug/deps/pcn_types-13d97d7cafd65080.d: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libpcn_types-13d97d7cafd65080.rmeta: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/amount.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
