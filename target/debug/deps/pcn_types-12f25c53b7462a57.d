/root/repo/target/debug/deps/pcn_types-12f25c53b7462a57.d: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs

/root/repo/target/debug/deps/libpcn_types-12f25c53b7462a57.rmeta: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/amount.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/time.rs:
