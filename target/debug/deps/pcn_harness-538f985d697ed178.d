/root/repo/target/debug/deps/pcn_harness-538f985d697ed178.d: crates/harness/src/lib.rs crates/harness/src/grid.rs crates/harness/src/run.rs

/root/repo/target/debug/deps/pcn_harness-538f985d697ed178: crates/harness/src/lib.rs crates/harness/src/grid.rs crates/harness/src/run.rs

crates/harness/src/lib.rs:
crates/harness/src/grid.rs:
crates/harness/src/run.rs:
