/root/repo/target/debug/deps/property_tests-ce94e4fce91e0a48.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-ce94e4fce91e0a48: tests/property_tests.rs

tests/property_tests.rs:
