/root/repo/target/debug/deps/pcn_crypto-0cc5cdf3553b2023.d: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs Cargo.toml

/root/repo/target/debug/deps/libpcn_crypto-0cc5cdf3553b2023.rmeta: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/dkg.rs:
crates/crypto/src/envelope.rs:
crates/crypto/src/field.rs:
crates/crypto/src/htlc.rs:
crates/crypto/src/keys.rs:
crates/crypto/src/rng64.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/shamir.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
