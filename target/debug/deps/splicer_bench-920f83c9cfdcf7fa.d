/root/repo/target/debug/deps/splicer_bench-920f83c9cfdcf7fa.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/splicer_bench-920f83c9cfdcf7fa: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
