/root/repo/target/debug/deps/milp-6b350a113bc3a3a6.d: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

/root/repo/target/debug/deps/milp-6b350a113bc3a3a6: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

crates/milp/src/lib.rs:
crates/milp/src/branch_bound.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solution.rs:
