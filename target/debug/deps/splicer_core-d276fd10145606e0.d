/root/repo/target/debug/deps/splicer_core-d276fd10145606e0.d: crates/core/src/lib.rs crates/core/src/epoch.rs crates/core/src/schemes.rs crates/core/src/system.rs crates/core/src/voting.rs crates/core/src/workflow.rs

/root/repo/target/debug/deps/splicer_core-d276fd10145606e0: crates/core/src/lib.rs crates/core/src/epoch.rs crates/core/src/schemes.rs crates/core/src/system.rs crates/core/src/voting.rs crates/core/src/workflow.rs

crates/core/src/lib.rs:
crates/core/src/epoch.rs:
crates/core/src/schemes.rs:
crates/core/src/system.rs:
crates/core/src/voting.rs:
crates/core/src/workflow.rs:
