/root/repo/target/debug/deps/table1-66b92eb8c8e4c738.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-66b92eb8c8e4c738: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
