/root/repo/target/debug/deps/pcn_types-3d0326b0209e7810.d: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs

/root/repo/target/debug/deps/libpcn_types-3d0326b0209e7810.rlib: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs

/root/repo/target/debug/deps/libpcn_types-3d0326b0209e7810.rmeta: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/amount.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/time.rs:
