/root/repo/target/debug/deps/placement_pipeline-843c7435641b8d08.d: tests/placement_pipeline.rs

/root/repo/target/debug/deps/placement_pipeline-843c7435641b8d08: tests/placement_pipeline.rs

tests/placement_pipeline.rs:
