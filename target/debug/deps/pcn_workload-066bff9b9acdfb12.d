/root/repo/target/debug/deps/pcn_workload-066bff9b9acdfb12.d: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs

/root/repo/target/debug/deps/libpcn_workload-066bff9b9acdfb12.rmeta: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs

crates/workload/src/lib.rs:
crates/workload/src/builder.rs:
crates/workload/src/funds.rs:
crates/workload/src/scenario.rs:
crates/workload/src/topology.rs:
crates/workload/src/transactions.rs:
