/root/repo/target/debug/deps/graph_algos-24ccff93e66c9ac5.d: crates/bench/benches/graph_algos.rs Cargo.toml

/root/repo/target/debug/deps/libgraph_algos-24ccff93e66c9ac5.rmeta: crates/bench/benches/graph_algos.rs Cargo.toml

crates/bench/benches/graph_algos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
