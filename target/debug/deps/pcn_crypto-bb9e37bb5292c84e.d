/root/repo/target/debug/deps/pcn_crypto-bb9e37bb5292c84e.d: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs

/root/repo/target/debug/deps/libpcn_crypto-bb9e37bb5292c84e.rlib: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs

/root/repo/target/debug/deps/libpcn_crypto-bb9e37bb5292c84e.rmeta: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs

crates/crypto/src/lib.rs:
crates/crypto/src/dkg.rs:
crates/crypto/src/envelope.rs:
crates/crypto/src/field.rs:
crates/crypto/src/htlc.rs:
crates/crypto/src/keys.rs:
crates/crypto/src/rng64.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/shamir.rs:
