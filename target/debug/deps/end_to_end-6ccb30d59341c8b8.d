/root/repo/target/debug/deps/end_to_end-6ccb30d59341c8b8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6ccb30d59341c8b8: tests/end_to_end.rs

tests/end_to_end.rs:
