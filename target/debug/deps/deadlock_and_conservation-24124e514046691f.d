/root/repo/target/debug/deps/deadlock_and_conservation-24124e514046691f.d: tests/deadlock_and_conservation.rs Cargo.toml

/root/repo/target/debug/deps/libdeadlock_and_conservation-24124e514046691f.rmeta: tests/deadlock_and_conservation.rs Cargo.toml

tests/deadlock_and_conservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
