/root/repo/target/debug/deps/pcn_graph-36c5fa730e1bc4d1.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/dijkstra.rs crates/graph/src/disjoint.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/maxflow.rs crates/graph/src/metrics.rs crates/graph/src/path.rs crates/graph/src/widest.rs crates/graph/src/yen.rs

/root/repo/target/debug/deps/libpcn_graph-36c5fa730e1bc4d1.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/dijkstra.rs crates/graph/src/disjoint.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/maxflow.rs crates/graph/src/metrics.rs crates/graph/src/path.rs crates/graph/src/widest.rs crates/graph/src/yen.rs

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/dijkstra.rs:
crates/graph/src/disjoint.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/maxflow.rs:
crates/graph/src/metrics.rs:
crates/graph/src/path.rs:
crates/graph/src/widest.rs:
crates/graph/src/yen.rs:
