/root/repo/target/debug/deps/pcn_harness-4c004fed7d005993.d: crates/harness/src/lib.rs crates/harness/src/grid.rs crates/harness/src/run.rs

/root/repo/target/debug/deps/libpcn_harness-4c004fed7d005993.rlib: crates/harness/src/lib.rs crates/harness/src/grid.rs crates/harness/src/run.rs

/root/repo/target/debug/deps/libpcn_harness-4c004fed7d005993.rmeta: crates/harness/src/lib.rs crates/harness/src/grid.rs crates/harness/src/run.rs

crates/harness/src/lib.rs:
crates/harness/src/grid.rs:
crates/harness/src/run.rs:
