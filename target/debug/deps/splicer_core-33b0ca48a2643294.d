/root/repo/target/debug/deps/splicer_core-33b0ca48a2643294.d: crates/core/src/lib.rs crates/core/src/epoch.rs crates/core/src/schemes.rs crates/core/src/system.rs crates/core/src/voting.rs crates/core/src/workflow.rs Cargo.toml

/root/repo/target/debug/deps/libsplicer_core-33b0ca48a2643294.rmeta: crates/core/src/lib.rs crates/core/src/epoch.rs crates/core/src/schemes.rs crates/core/src/system.rs crates/core/src/voting.rs crates/core/src/workflow.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/epoch.rs:
crates/core/src/schemes.rs:
crates/core/src/system.rs:
crates/core/src/voting.rs:
crates/core/src/workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
