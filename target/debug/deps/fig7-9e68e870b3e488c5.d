/root/repo/target/debug/deps/fig7-9e68e870b3e488c5.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-9e68e870b3e488c5.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
