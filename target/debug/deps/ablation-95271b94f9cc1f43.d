/root/repo/target/debug/deps/ablation-95271b94f9cc1f43.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-95271b94f9cc1f43.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
