/root/repo/target/debug/deps/milp-264919f4a5f036bf.d: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

/root/repo/target/debug/deps/milp-264919f4a5f036bf: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

crates/milp/src/lib.rs:
crates/milp/src/branch_bound.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solution.rs:
