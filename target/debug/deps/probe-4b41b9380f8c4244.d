/root/repo/target/debug/deps/probe-4b41b9380f8c4244.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-4b41b9380f8c4244: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
