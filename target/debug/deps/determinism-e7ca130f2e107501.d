/root/repo/target/debug/deps/determinism-e7ca130f2e107501.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-e7ca130f2e107501: tests/determinism.rs

tests/determinism.rs:
