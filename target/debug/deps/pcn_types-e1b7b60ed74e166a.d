/root/repo/target/debug/deps/pcn_types-e1b7b60ed74e166a.d: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libpcn_types-e1b7b60ed74e166a.rmeta: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/amount.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
