/root/repo/target/debug/deps/pcn_workload-5db6bd203d3e4f6b.d: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs

/root/repo/target/debug/deps/pcn_workload-5db6bd203d3e4f6b: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs

crates/workload/src/lib.rs:
crates/workload/src/builder.rs:
crates/workload/src/funds.rs:
crates/workload/src/scenario.rs:
crates/workload/src/topology.rs:
crates/workload/src/transactions.rs:
