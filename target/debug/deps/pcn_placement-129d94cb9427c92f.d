/root/repo/target/debug/deps/pcn_placement-129d94cb9427c92f.d: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs

/root/repo/target/debug/deps/libpcn_placement-129d94cb9427c92f.rlib: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs

/root/repo/target/debug/deps/libpcn_placement-129d94cb9427c92f.rmeta: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs

crates/placement/src/lib.rs:
crates/placement/src/assignment.rs:
crates/placement/src/exact.rs:
crates/placement/src/instance.rs:
crates/placement/src/milp_form.rs:
crates/placement/src/plan.rs:
crates/placement/src/solver.rs:
crates/placement/src/supermodular.rs:
