/root/repo/target/debug/deps/pcn_types-880c5ad254ad897c.d: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs

/root/repo/target/debug/deps/pcn_types-880c5ad254ad897c: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/amount.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/time.rs:
