/root/repo/target/debug/deps/milp-883c628f021d5857.d: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs Cargo.toml

/root/repo/target/debug/deps/libmilp-883c628f021d5857.rmeta: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs Cargo.toml

crates/milp/src/lib.rs:
crates/milp/src/branch_bound.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
