/root/repo/target/debug/deps/ablation-9dd11000bd62721f.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-9dd11000bd62721f: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
