/root/repo/target/debug/deps/pcn_routing-49791227d6016732.d: crates/routing/src/lib.rs crates/routing/src/channel.rs crates/routing/src/engine/mod.rs crates/routing/src/engine/arrivals.rs crates/routing/src/engine/control.rs crates/routing/src/engine/lifecycle.rs crates/routing/src/paths.rs crates/routing/src/prices.rs crates/routing/src/rate.rs crates/routing/src/scheduler.rs crates/routing/src/scheme.rs crates/routing/src/stats.rs crates/routing/src/tu.rs crates/routing/src/window.rs

/root/repo/target/debug/deps/libpcn_routing-49791227d6016732.rlib: crates/routing/src/lib.rs crates/routing/src/channel.rs crates/routing/src/engine/mod.rs crates/routing/src/engine/arrivals.rs crates/routing/src/engine/control.rs crates/routing/src/engine/lifecycle.rs crates/routing/src/paths.rs crates/routing/src/prices.rs crates/routing/src/rate.rs crates/routing/src/scheduler.rs crates/routing/src/scheme.rs crates/routing/src/stats.rs crates/routing/src/tu.rs crates/routing/src/window.rs

/root/repo/target/debug/deps/libpcn_routing-49791227d6016732.rmeta: crates/routing/src/lib.rs crates/routing/src/channel.rs crates/routing/src/engine/mod.rs crates/routing/src/engine/arrivals.rs crates/routing/src/engine/control.rs crates/routing/src/engine/lifecycle.rs crates/routing/src/paths.rs crates/routing/src/prices.rs crates/routing/src/rate.rs crates/routing/src/scheduler.rs crates/routing/src/scheme.rs crates/routing/src/stats.rs crates/routing/src/tu.rs crates/routing/src/window.rs

crates/routing/src/lib.rs:
crates/routing/src/channel.rs:
crates/routing/src/engine/mod.rs:
crates/routing/src/engine/arrivals.rs:
crates/routing/src/engine/control.rs:
crates/routing/src/engine/lifecycle.rs:
crates/routing/src/paths.rs:
crates/routing/src/prices.rs:
crates/routing/src/rate.rs:
crates/routing/src/scheduler.rs:
crates/routing/src/scheme.rs:
crates/routing/src/stats.rs:
crates/routing/src/tu.rs:
crates/routing/src/window.rs:
