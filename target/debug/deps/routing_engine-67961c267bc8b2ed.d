/root/repo/target/debug/deps/routing_engine-67961c267bc8b2ed.d: crates/bench/benches/routing_engine.rs Cargo.toml

/root/repo/target/debug/deps/librouting_engine-67961c267bc8b2ed.rmeta: crates/bench/benches/routing_engine.rs Cargo.toml

crates/bench/benches/routing_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
