/root/repo/target/debug/deps/splicer-6c8d7b917ca4932d.d: src/lib.rs

/root/repo/target/debug/deps/libsplicer-6c8d7b917ca4932d.rlib: src/lib.rs

/root/repo/target/debug/deps/libsplicer-6c8d7b917ca4932d.rmeta: src/lib.rs

src/lib.rs:
