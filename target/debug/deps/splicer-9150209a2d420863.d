/root/repo/target/debug/deps/splicer-9150209a2d420863.d: src/lib.rs

/root/repo/target/debug/deps/libsplicer-9150209a2d420863.rmeta: src/lib.rs

src/lib.rs:
