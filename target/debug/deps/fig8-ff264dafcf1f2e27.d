/root/repo/target/debug/deps/fig8-ff264dafcf1f2e27.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-ff264dafcf1f2e27: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
