/root/repo/target/debug/deps/milp-e4087cda82967457.d: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

/root/repo/target/debug/deps/libmilp-e4087cda82967457.rmeta: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

crates/milp/src/lib.rs:
crates/milp/src/branch_bound.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solution.rs:
