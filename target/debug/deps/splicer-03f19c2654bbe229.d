/root/repo/target/debug/deps/splicer-03f19c2654bbe229.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsplicer-03f19c2654bbe229.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
