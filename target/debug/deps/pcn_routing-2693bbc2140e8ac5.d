/root/repo/target/debug/deps/pcn_routing-2693bbc2140e8ac5.d: crates/routing/src/lib.rs crates/routing/src/channel.rs crates/routing/src/engine/mod.rs crates/routing/src/engine/arrivals.rs crates/routing/src/engine/control.rs crates/routing/src/engine/lifecycle.rs crates/routing/src/paths.rs crates/routing/src/prices.rs crates/routing/src/rate.rs crates/routing/src/scheduler.rs crates/routing/src/scheme.rs crates/routing/src/stats.rs crates/routing/src/tu.rs crates/routing/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libpcn_routing-2693bbc2140e8ac5.rmeta: crates/routing/src/lib.rs crates/routing/src/channel.rs crates/routing/src/engine/mod.rs crates/routing/src/engine/arrivals.rs crates/routing/src/engine/control.rs crates/routing/src/engine/lifecycle.rs crates/routing/src/paths.rs crates/routing/src/prices.rs crates/routing/src/rate.rs crates/routing/src/scheduler.rs crates/routing/src/scheme.rs crates/routing/src/stats.rs crates/routing/src/tu.rs crates/routing/src/window.rs Cargo.toml

crates/routing/src/lib.rs:
crates/routing/src/channel.rs:
crates/routing/src/engine/mod.rs:
crates/routing/src/engine/arrivals.rs:
crates/routing/src/engine/control.rs:
crates/routing/src/engine/lifecycle.rs:
crates/routing/src/paths.rs:
crates/routing/src/prices.rs:
crates/routing/src/rate.rs:
crates/routing/src/scheduler.rs:
crates/routing/src/scheme.rs:
crates/routing/src/stats.rs:
crates/routing/src/tu.rs:
crates/routing/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
