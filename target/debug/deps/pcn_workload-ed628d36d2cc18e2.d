/root/repo/target/debug/deps/pcn_workload-ed628d36d2cc18e2.d: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs

/root/repo/target/debug/deps/libpcn_workload-ed628d36d2cc18e2.rlib: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs

/root/repo/target/debug/deps/libpcn_workload-ed628d36d2cc18e2.rmeta: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs

crates/workload/src/lib.rs:
crates/workload/src/builder.rs:
crates/workload/src/funds.rs:
crates/workload/src/scenario.rs:
crates/workload/src/topology.rs:
crates/workload/src/transactions.rs:
