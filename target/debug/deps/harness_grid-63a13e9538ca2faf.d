/root/repo/target/debug/deps/harness_grid-63a13e9538ca2faf.d: crates/bench/benches/harness_grid.rs Cargo.toml

/root/repo/target/debug/deps/libharness_grid-63a13e9538ca2faf.rmeta: crates/bench/benches/harness_grid.rs Cargo.toml

crates/bench/benches/harness_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
