/root/repo/target/debug/deps/simplex-b33a84adbc7993f2.d: crates/bench/benches/simplex.rs Cargo.toml

/root/repo/target/debug/deps/libsimplex-b33a84adbc7993f2.rmeta: crates/bench/benches/simplex.rs Cargo.toml

crates/bench/benches/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
