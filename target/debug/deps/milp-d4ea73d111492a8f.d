/root/repo/target/debug/deps/milp-d4ea73d111492a8f.d: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

/root/repo/target/debug/deps/libmilp-d4ea73d111492a8f.rlib: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

/root/repo/target/debug/deps/libmilp-d4ea73d111492a8f.rmeta: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

crates/milp/src/lib.rs:
crates/milp/src/branch_bound.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solution.rs:
