/root/repo/target/debug/deps/pcn_sim-e56d02b8f503637f.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs

/root/repo/target/debug/deps/pcn_sim-e56d02b8f503637f: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
