/root/repo/target/debug/deps/splicer-681310bbf4718510.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsplicer-681310bbf4718510.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
