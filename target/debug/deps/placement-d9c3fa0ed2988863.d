/root/repo/target/debug/deps/placement-d9c3fa0ed2988863.d: crates/bench/benches/placement.rs Cargo.toml

/root/repo/target/debug/deps/libplacement-d9c3fa0ed2988863.rmeta: crates/bench/benches/placement.rs Cargo.toml

crates/bench/benches/placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
