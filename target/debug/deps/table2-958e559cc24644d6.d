/root/repo/target/debug/deps/table2-958e559cc24644d6.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-958e559cc24644d6: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
