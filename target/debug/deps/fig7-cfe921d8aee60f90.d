/root/repo/target/debug/deps/fig7-cfe921d8aee60f90.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-cfe921d8aee60f90: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
