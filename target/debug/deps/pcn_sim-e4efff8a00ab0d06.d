/root/repo/target/debug/deps/pcn_sim-e4efff8a00ab0d06.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs

/root/repo/target/debug/deps/libpcn_sim-e4efff8a00ab0d06.rlib: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs

/root/repo/target/debug/deps/libpcn_sim-e4efff8a00ab0d06.rmeta: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
