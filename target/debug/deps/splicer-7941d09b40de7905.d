/root/repo/target/debug/deps/splicer-7941d09b40de7905.d: src/lib.rs

/root/repo/target/debug/deps/splicer-7941d09b40de7905: src/lib.rs

src/lib.rs:
