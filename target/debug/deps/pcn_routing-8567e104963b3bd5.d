/root/repo/target/debug/deps/pcn_routing-8567e104963b3bd5.d: crates/routing/src/lib.rs crates/routing/src/channel.rs crates/routing/src/engine/mod.rs crates/routing/src/engine/arrivals.rs crates/routing/src/engine/control.rs crates/routing/src/engine/lifecycle.rs crates/routing/src/engine/tests.rs crates/routing/src/paths.rs crates/routing/src/prices.rs crates/routing/src/rate.rs crates/routing/src/scheduler.rs crates/routing/src/scheme.rs crates/routing/src/stats.rs crates/routing/src/tu.rs crates/routing/src/window.rs

/root/repo/target/debug/deps/pcn_routing-8567e104963b3bd5: crates/routing/src/lib.rs crates/routing/src/channel.rs crates/routing/src/engine/mod.rs crates/routing/src/engine/arrivals.rs crates/routing/src/engine/control.rs crates/routing/src/engine/lifecycle.rs crates/routing/src/engine/tests.rs crates/routing/src/paths.rs crates/routing/src/prices.rs crates/routing/src/rate.rs crates/routing/src/scheduler.rs crates/routing/src/scheme.rs crates/routing/src/stats.rs crates/routing/src/tu.rs crates/routing/src/window.rs

crates/routing/src/lib.rs:
crates/routing/src/channel.rs:
crates/routing/src/engine/mod.rs:
crates/routing/src/engine/arrivals.rs:
crates/routing/src/engine/control.rs:
crates/routing/src/engine/lifecycle.rs:
crates/routing/src/engine/tests.rs:
crates/routing/src/paths.rs:
crates/routing/src/prices.rs:
crates/routing/src/rate.rs:
crates/routing/src/scheduler.rs:
crates/routing/src/scheme.rs:
crates/routing/src/stats.rs:
crates/routing/src/tu.rs:
crates/routing/src/window.rs:
