/root/repo/target/debug/deps/pcn_harness-9b13c26dce338f4c.d: crates/harness/src/lib.rs crates/harness/src/grid.rs crates/harness/src/run.rs Cargo.toml

/root/repo/target/debug/deps/libpcn_harness-9b13c26dce338f4c.rmeta: crates/harness/src/lib.rs crates/harness/src/grid.rs crates/harness/src/run.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/grid.rs:
crates/harness/src/run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
