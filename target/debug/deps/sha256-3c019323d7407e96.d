/root/repo/target/debug/deps/sha256-3c019323d7407e96.d: crates/bench/benches/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libsha256-3c019323d7407e96.rmeta: crates/bench/benches/sha256.rs Cargo.toml

crates/bench/benches/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
