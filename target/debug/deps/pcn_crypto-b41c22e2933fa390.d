/root/repo/target/debug/deps/pcn_crypto-b41c22e2933fa390.d: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs

/root/repo/target/debug/deps/pcn_crypto-b41c22e2933fa390: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs

crates/crypto/src/lib.rs:
crates/crypto/src/dkg.rs:
crates/crypto/src/envelope.rs:
crates/crypto/src/field.rs:
crates/crypto/src/htlc.rs:
crates/crypto/src/keys.rs:
crates/crypto/src/rng64.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/shamir.rs:
