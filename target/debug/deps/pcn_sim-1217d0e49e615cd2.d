/root/repo/target/debug/deps/pcn_sim-1217d0e49e615cd2.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libpcn_sim-1217d0e49e615cd2.rmeta: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
