/root/repo/target/debug/deps/deadlock_and_conservation-feea9050edb15ff3.d: tests/deadlock_and_conservation.rs

/root/repo/target/debug/deps/deadlock_and_conservation-feea9050edb15ff3: tests/deadlock_and_conservation.rs

tests/deadlock_and_conservation.rs:
