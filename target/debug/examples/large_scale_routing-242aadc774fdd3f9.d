/root/repo/target/debug/examples/large_scale_routing-242aadc774fdd3f9.d: examples/large_scale_routing.rs Cargo.toml

/root/repo/target/debug/examples/liblarge_scale_routing-242aadc774fdd3f9.rmeta: examples/large_scale_routing.rs Cargo.toml

examples/large_scale_routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
