/root/repo/target/debug/examples/large_scale_routing-25dc1f621635ea6a.d: examples/large_scale_routing.rs

/root/repo/target/debug/examples/large_scale_routing-25dc1f621635ea6a: examples/large_scale_routing.rs

examples/large_scale_routing.rs:
