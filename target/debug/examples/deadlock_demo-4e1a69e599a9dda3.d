/root/repo/target/debug/examples/deadlock_demo-4e1a69e599a9dda3.d: examples/deadlock_demo.rs

/root/repo/target/debug/examples/deadlock_demo-4e1a69e599a9dda3: examples/deadlock_demo.rs

examples/deadlock_demo.rs:
