/root/repo/target/debug/examples/quickstart-9babfefdd2fb9590.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9babfefdd2fb9590: examples/quickstart.rs

examples/quickstart.rs:
