/root/repo/target/debug/examples/placement_analysis-0c6922538259bffd.d: examples/placement_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libplacement_analysis-0c6922538259bffd.rmeta: examples/placement_analysis.rs Cargo.toml

examples/placement_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
