/root/repo/target/debug/examples/encrypted_workflow-5bc3441ce171a265.d: examples/encrypted_workflow.rs Cargo.toml

/root/repo/target/debug/examples/libencrypted_workflow-5bc3441ce171a265.rmeta: examples/encrypted_workflow.rs Cargo.toml

examples/encrypted_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
