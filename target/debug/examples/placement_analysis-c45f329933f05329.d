/root/repo/target/debug/examples/placement_analysis-c45f329933f05329.d: examples/placement_analysis.rs

/root/repo/target/debug/examples/placement_analysis-c45f329933f05329: examples/placement_analysis.rs

examples/placement_analysis.rs:
