/root/repo/target/debug/examples/deadlock_demo-bffff2f0afccc19f.d: examples/deadlock_demo.rs Cargo.toml

/root/repo/target/debug/examples/libdeadlock_demo-bffff2f0afccc19f.rmeta: examples/deadlock_demo.rs Cargo.toml

examples/deadlock_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
