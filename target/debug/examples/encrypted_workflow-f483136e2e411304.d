/root/repo/target/debug/examples/encrypted_workflow-f483136e2e411304.d: examples/encrypted_workflow.rs

/root/repo/target/debug/examples/encrypted_workflow-f483136e2e411304: examples/encrypted_workflow.rs

examples/encrypted_workflow.rs:
