/root/repo/target/release/deps/fig9-4b96fea77b3520f9.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-4b96fea77b3520f9: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
