/root/repo/target/release/deps/pcn_crypto-bbe2ce3c2ee772c0.d: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs

/root/repo/target/release/deps/libpcn_crypto-bbe2ce3c2ee772c0.rlib: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs

/root/repo/target/release/deps/libpcn_crypto-bbe2ce3c2ee772c0.rmeta: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs

crates/crypto/src/lib.rs:
crates/crypto/src/dkg.rs:
crates/crypto/src/envelope.rs:
crates/crypto/src/field.rs:
crates/crypto/src/htlc.rs:
crates/crypto/src/keys.rs:
crates/crypto/src/rng64.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/shamir.rs:
