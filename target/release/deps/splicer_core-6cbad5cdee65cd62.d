/root/repo/target/release/deps/splicer_core-6cbad5cdee65cd62.d: crates/core/src/lib.rs crates/core/src/epoch.rs crates/core/src/schemes.rs crates/core/src/system.rs crates/core/src/voting.rs crates/core/src/workflow.rs

/root/repo/target/release/deps/libsplicer_core-6cbad5cdee65cd62.rlib: crates/core/src/lib.rs crates/core/src/epoch.rs crates/core/src/schemes.rs crates/core/src/system.rs crates/core/src/voting.rs crates/core/src/workflow.rs

/root/repo/target/release/deps/libsplicer_core-6cbad5cdee65cd62.rmeta: crates/core/src/lib.rs crates/core/src/epoch.rs crates/core/src/schemes.rs crates/core/src/system.rs crates/core/src/voting.rs crates/core/src/workflow.rs

crates/core/src/lib.rs:
crates/core/src/epoch.rs:
crates/core/src/schemes.rs:
crates/core/src/system.rs:
crates/core/src/voting.rs:
crates/core/src/workflow.rs:
