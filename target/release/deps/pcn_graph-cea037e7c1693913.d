/root/repo/target/release/deps/pcn_graph-cea037e7c1693913.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/dijkstra.rs crates/graph/src/disjoint.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/maxflow.rs crates/graph/src/metrics.rs crates/graph/src/path.rs crates/graph/src/widest.rs crates/graph/src/yen.rs

/root/repo/target/release/deps/libpcn_graph-cea037e7c1693913.rlib: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/dijkstra.rs crates/graph/src/disjoint.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/maxflow.rs crates/graph/src/metrics.rs crates/graph/src/path.rs crates/graph/src/widest.rs crates/graph/src/yen.rs

/root/repo/target/release/deps/libpcn_graph-cea037e7c1693913.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/dijkstra.rs crates/graph/src/disjoint.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/maxflow.rs crates/graph/src/metrics.rs crates/graph/src/path.rs crates/graph/src/widest.rs crates/graph/src/yen.rs

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/dijkstra.rs:
crates/graph/src/disjoint.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/maxflow.rs:
crates/graph/src/metrics.rs:
crates/graph/src/path.rs:
crates/graph/src/widest.rs:
crates/graph/src/yen.rs:
