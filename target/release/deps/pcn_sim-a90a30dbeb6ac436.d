/root/repo/target/release/deps/pcn_sim-a90a30dbeb6ac436.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs

/root/repo/target/release/deps/libpcn_sim-a90a30dbeb6ac436.rlib: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs

/root/repo/target/release/deps/libpcn_sim-a90a30dbeb6ac436.rmeta: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
