/root/repo/target/release/deps/pcn_placement-9fc9a415cd0021ab.d: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs

/root/repo/target/release/deps/libpcn_placement-9fc9a415cd0021ab.rlib: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs

/root/repo/target/release/deps/libpcn_placement-9fc9a415cd0021ab.rmeta: crates/placement/src/lib.rs crates/placement/src/assignment.rs crates/placement/src/exact.rs crates/placement/src/instance.rs crates/placement/src/milp_form.rs crates/placement/src/plan.rs crates/placement/src/solver.rs crates/placement/src/supermodular.rs

crates/placement/src/lib.rs:
crates/placement/src/assignment.rs:
crates/placement/src/exact.rs:
crates/placement/src/instance.rs:
crates/placement/src/milp_form.rs:
crates/placement/src/plan.rs:
crates/placement/src/solver.rs:
crates/placement/src/supermodular.rs:
