/root/repo/target/release/deps/fig7-1d8daf5dfc09be42.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-1d8daf5dfc09be42: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
