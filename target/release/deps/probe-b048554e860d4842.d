/root/repo/target/release/deps/probe-b048554e860d4842.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-b048554e860d4842: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
