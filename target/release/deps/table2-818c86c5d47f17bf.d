/root/repo/target/release/deps/table2-818c86c5d47f17bf.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-818c86c5d47f17bf: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
