/root/repo/target/release/deps/pcn_crypto-c3b0f168c9ae69ca.d: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs

/root/repo/target/release/deps/libpcn_crypto-c3b0f168c9ae69ca.rlib: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs

/root/repo/target/release/deps/libpcn_crypto-c3b0f168c9ae69ca.rmeta: crates/crypto/src/lib.rs crates/crypto/src/dkg.rs crates/crypto/src/envelope.rs crates/crypto/src/field.rs crates/crypto/src/htlc.rs crates/crypto/src/keys.rs crates/crypto/src/rng64.rs crates/crypto/src/sha256.rs crates/crypto/src/shamir.rs

crates/crypto/src/lib.rs:
crates/crypto/src/dkg.rs:
crates/crypto/src/envelope.rs:
crates/crypto/src/field.rs:
crates/crypto/src/htlc.rs:
crates/crypto/src/keys.rs:
crates/crypto/src/rng64.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/shamir.rs:
