/root/repo/target/release/deps/pcn_harness-e1106a41089132dc.d: crates/harness/src/lib.rs crates/harness/src/grid.rs crates/harness/src/run.rs

/root/repo/target/release/deps/libpcn_harness-e1106a41089132dc.rlib: crates/harness/src/lib.rs crates/harness/src/grid.rs crates/harness/src/run.rs

/root/repo/target/release/deps/libpcn_harness-e1106a41089132dc.rmeta: crates/harness/src/lib.rs crates/harness/src/grid.rs crates/harness/src/run.rs

crates/harness/src/lib.rs:
crates/harness/src/grid.rs:
crates/harness/src/run.rs:
