/root/repo/target/release/deps/splicer_bench-867bdb8540b52847.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsplicer_bench-867bdb8540b52847.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsplicer_bench-867bdb8540b52847.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
