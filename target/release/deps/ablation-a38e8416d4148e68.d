/root/repo/target/release/deps/ablation-a38e8416d4148e68.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-a38e8416d4148e68: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
