/root/repo/target/release/deps/splicer-f0f64ff62c2401c4.d: src/lib.rs

/root/repo/target/release/deps/libsplicer-f0f64ff62c2401c4.rlib: src/lib.rs

/root/repo/target/release/deps/libsplicer-f0f64ff62c2401c4.rmeta: src/lib.rs

src/lib.rs:
