/root/repo/target/release/deps/table1-83785bf4ab69877b.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-83785bf4ab69877b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
