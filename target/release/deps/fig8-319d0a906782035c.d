/root/repo/target/release/deps/fig8-319d0a906782035c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-319d0a906782035c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
