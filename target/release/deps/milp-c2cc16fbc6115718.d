/root/repo/target/release/deps/milp-c2cc16fbc6115718.d: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

/root/repo/target/release/deps/libmilp-c2cc16fbc6115718.rlib: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

/root/repo/target/release/deps/libmilp-c2cc16fbc6115718.rmeta: crates/milp/src/lib.rs crates/milp/src/branch_bound.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solution.rs

crates/milp/src/lib.rs:
crates/milp/src/branch_bound.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solution.rs:
