/root/repo/target/release/deps/pcn_types-cf3f8cab47c0d898.d: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs

/root/repo/target/release/deps/libpcn_types-cf3f8cab47c0d898.rlib: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs

/root/repo/target/release/deps/libpcn_types-cf3f8cab47c0d898.rmeta: crates/types/src/lib.rs crates/types/src/amount.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/amount.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/time.rs:
