/root/repo/target/release/deps/pcn_workload-5c0af83c848b3065.d: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs

/root/repo/target/release/deps/libpcn_workload-5c0af83c848b3065.rlib: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs

/root/repo/target/release/deps/libpcn_workload-5c0af83c848b3065.rmeta: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/funds.rs crates/workload/src/scenario.rs crates/workload/src/topology.rs crates/workload/src/transactions.rs

crates/workload/src/lib.rs:
crates/workload/src/builder.rs:
crates/workload/src/funds.rs:
crates/workload/src/scenario.rs:
crates/workload/src/topology.rs:
crates/workload/src/transactions.rs:
