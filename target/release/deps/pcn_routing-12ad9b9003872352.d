/root/repo/target/release/deps/pcn_routing-12ad9b9003872352.d: crates/routing/src/lib.rs crates/routing/src/channel.rs crates/routing/src/engine/mod.rs crates/routing/src/engine/arrivals.rs crates/routing/src/engine/control.rs crates/routing/src/engine/lifecycle.rs crates/routing/src/paths.rs crates/routing/src/prices.rs crates/routing/src/rate.rs crates/routing/src/scheduler.rs crates/routing/src/scheme.rs crates/routing/src/stats.rs crates/routing/src/tu.rs crates/routing/src/window.rs

/root/repo/target/release/deps/libpcn_routing-12ad9b9003872352.rlib: crates/routing/src/lib.rs crates/routing/src/channel.rs crates/routing/src/engine/mod.rs crates/routing/src/engine/arrivals.rs crates/routing/src/engine/control.rs crates/routing/src/engine/lifecycle.rs crates/routing/src/paths.rs crates/routing/src/prices.rs crates/routing/src/rate.rs crates/routing/src/scheduler.rs crates/routing/src/scheme.rs crates/routing/src/stats.rs crates/routing/src/tu.rs crates/routing/src/window.rs

/root/repo/target/release/deps/libpcn_routing-12ad9b9003872352.rmeta: crates/routing/src/lib.rs crates/routing/src/channel.rs crates/routing/src/engine/mod.rs crates/routing/src/engine/arrivals.rs crates/routing/src/engine/control.rs crates/routing/src/engine/lifecycle.rs crates/routing/src/paths.rs crates/routing/src/prices.rs crates/routing/src/rate.rs crates/routing/src/scheduler.rs crates/routing/src/scheme.rs crates/routing/src/stats.rs crates/routing/src/tu.rs crates/routing/src/window.rs

crates/routing/src/lib.rs:
crates/routing/src/channel.rs:
crates/routing/src/engine/mod.rs:
crates/routing/src/engine/arrivals.rs:
crates/routing/src/engine/control.rs:
crates/routing/src/engine/lifecycle.rs:
crates/routing/src/paths.rs:
crates/routing/src/prices.rs:
crates/routing/src/rate.rs:
crates/routing/src/scheduler.rs:
crates/routing/src/scheme.rs:
crates/routing/src/stats.rs:
crates/routing/src/tu.rs:
crates/routing/src/window.rs:
