//! Dense two-phase primal simplex.
//!
//! Textbook tableau implementation with Bland's anti-cycling rule. The
//! model is first normalized: variables are shifted to lower bound zero,
//! finite upper bounds become explicit rows, `≥`/`=` rows get artificial
//! variables for phase 1. Designed for the small, dense placement MILP
//! relaxations — clarity over speed.

use pcn_types::{PcnError, Result};

use crate::model::{Cmp, Model, Sense};
use crate::solution::Solution;
use crate::EPS;

/// Solves the LP relaxation of `model`.
pub(crate) fn solve_lp(model: &Model) -> Result<Solution> {
    let n = model.vars.len();
    // Shift each variable by its lower bound: x = y + l, y >= 0.
    let shifts: Vec<f64> = model.vars.iter().map(|v| v.bounds.lower).collect();

    // Assemble rows: (coeffs over structural vars, cmp, rhs)
    let mut rows: Vec<(Vec<f64>, Cmp, f64)> = Vec::new();
    for c in &model.constraints {
        let mut coeffs = vec![0.0; n];
        let mut rhs = c.rhs;
        for &(v, a) in &c.terms {
            coeffs[v.0] = a;
            rhs -= a * shifts[v.0];
        }
        rows.push((coeffs, c.cmp, rhs));
    }
    // Finite upper bounds become y_j <= u_j - l_j rows.
    for (j, v) in model.vars.iter().enumerate() {
        if v.bounds.upper.is_finite() {
            let mut coeffs = vec![0.0; n];
            coeffs[j] = 1.0;
            rows.push((coeffs, Cmp::Le, v.bounds.upper - v.bounds.lower));
        }
    }

    // Objective in minimize form over shifted vars; constant from shifts.
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let obj: Vec<f64> = model.vars.iter().map(|v| sign * v.objective).collect();
    let obj_const: f64 = model
        .vars
        .iter()
        .zip(&shifts)
        .map(|(v, &l)| sign * v.objective * l)
        .sum();

    // Normalize rhs >= 0.
    for (coeffs, cmp, rhs) in rows.iter_mut() {
        if *rhs < 0.0 {
            for a in coeffs.iter_mut() {
                *a = -*a;
            }
            *rhs = -*rhs;
            *cmp = match *cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [structural | slacks | artificials | rhs]
    let mut num_slack = 0usize;
    let mut num_art = 0usize;
    for (_, cmp, _) in &rows {
        match cmp {
            Cmp::Le => num_slack += 1,
            Cmp::Ge => {
                num_slack += 1;
                num_art += 1;
            }
            Cmp::Eq => num_art += 1,
        }
    }
    let total = n + num_slack + num_art;
    let mut a = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut s_idx = n;
    let mut art_idx = n + num_slack;
    let mut art_cols = Vec::new();
    for (i, (coeffs, cmp, rhs)) in rows.iter().enumerate() {
        a[i][..n].copy_from_slice(coeffs);
        a[i][total] = *rhs;
        match cmp {
            Cmp::Le => {
                a[i][s_idx] = 1.0;
                basis[i] = s_idx;
                s_idx += 1;
            }
            Cmp::Ge => {
                a[i][s_idx] = -1.0;
                s_idx += 1;
                a[i][art_idx] = 1.0;
                basis[i] = art_idx;
                art_cols.push(art_idx);
                art_idx += 1;
            }
            Cmp::Eq => {
                a[i][art_idx] = 1.0;
                basis[i] = art_idx;
                art_cols.push(art_idx);
                art_idx += 1;
            }
        }
    }

    // ---- Phase 1: minimize sum of artificials ----
    if num_art > 0 {
        let mut cost = vec![0.0f64; total + 1];
        for &c in &art_cols {
            cost[c] = 1.0;
        }
        // Reduce cost row against the artificial basis.
        for (i, &b) in basis.iter().enumerate() {
            if cost[b] != 0.0 {
                let f = cost[b];
                for j in 0..=total {
                    cost[j] -= f * a[i][j];
                }
            }
        }
        run_simplex(&mut a, &mut cost, &mut basis, total)?;
        let phase1_obj = -cost[total];
        if phase1_obj > 1e-6 {
            return Err(PcnError::Infeasible(format!(
                "phase-1 objective {phase1_obj:.3e} > 0"
            )));
        }
        // Pivot artificials out of the basis where possible.
        for i in 0..m {
            if art_cols.contains(&basis[i]) {
                // find a non-artificial column with nonzero entry
                let pivot_col = (0..n + num_slack).find(|&j| a[i][j].abs() > EPS);
                if let Some(j) = pivot_col {
                    pivot(&mut a, &mut basis, i, j, total);
                }
                // else: redundant row; the artificial stays basic at 0,
                // harmless for phase 2 because its column is now blocked.
            }
        }
    }

    // ---- Phase 2 ----
    let mut cost = vec![0.0f64; total + 1];
    cost[..n].copy_from_slice(&obj);
    // Block artificial columns from re-entering.
    // (run_simplex never selects columns in `blocked`.)
    let blocked: Vec<bool> = {
        let mut b = vec![false; total];
        for &c in &art_cols {
            b[c] = true;
        }
        b
    };
    // Reduce cost row against the current basis.
    for (i, &b) in basis.iter().enumerate() {
        if b != usize::MAX && cost[b].abs() > 0.0 {
            let f = cost[b];
            for j in 0..=total {
                cost[j] -= f * a[i][j];
            }
        }
    }
    run_simplex_blocked(&mut a, &mut cost, &mut basis, total, &blocked)?;

    // Extract solution.
    let mut y = vec![0.0f64; total];
    for (i, &b) in basis.iter().enumerate() {
        if b != usize::MAX && b < total {
            y[b] = a[i][total];
        }
    }
    let values: Vec<f64> = (0..n).map(|j| y[j] + shifts[j]).collect();
    let raw_obj = -cost[total]; // minimized shifted objective value
    let objective = sign * (raw_obj + obj_const);
    Ok(Solution::new(values, objective))
}

fn run_simplex(
    a: &mut [Vec<f64>],
    cost: &mut [f64],
    basis: &mut [usize],
    total: usize,
) -> Result<()> {
    let blocked = vec![false; total];
    run_simplex_blocked(a, cost, basis, total, &blocked)
}

/// Primal simplex iterations with Bland's rule; `blocked` columns never
/// enter the basis.
fn run_simplex_blocked(
    a: &mut [Vec<f64>],
    cost: &mut [f64],
    basis: &mut [usize],
    total: usize,
    blocked: &[bool],
) -> Result<()> {
    let m = a.len();
    let max_iters = 50_000 + 200 * (m + total);
    for _ in 0..max_iters {
        // Bland: entering = lowest-index column with negative reduced cost.
        let entering = (0..total).find(|&j| !blocked[j] && cost[j] < -EPS);
        let Some(e) = entering else {
            return Ok(()); // optimal
        };
        // Ratio test: leaving = argmin rhs/a over positive a, Bland ties.
        let mut leave: Option<(usize, f64)> = None;
        for (i, row) in a.iter().enumerate() {
            if row[e] > EPS {
                let ratio = row[total] / row[e];
                match leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < lr - EPS || (ratio < lr + EPS && basis[i] < basis[li]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((l, _)) = leave else {
            return Err(PcnError::Unbounded(
                "no leaving row for entering column".into(),
            ));
        };
        pivot_with_cost(a, cost, basis, l, e, total);
    }
    Err(PcnError::SolverBudgetExceeded(
        "simplex iteration limit".into(),
    ))
}

#[allow(clippy::needless_range_loop)] // tableau rows/cols mirror the textbook notation
fn pivot(a: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let p = a[row][col];
    debug_assert!(p.abs() > EPS);
    for j in 0..=total {
        a[row][j] /= p;
    }
    for i in 0..a.len() {
        if i != row && a[i][col].abs() > 0.0 {
            let f = a[i][col];
            for j in 0..=total {
                a[i][j] -= f * a[row][j];
            }
        }
    }
    basis[row] = col;
}

fn pivot_with_cost(
    a: &mut [Vec<f64>],
    cost: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    total: usize,
) {
    pivot(a, basis, row, col, total);
    if cost[col].abs() > 0.0 {
        let f = cost[col];
        for j in 0..=total {
            cost[j] -= f * a[row][j];
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Bounds, Cmp, Model, Sense};
    use pcn_types::PcnError;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn dantzig_example() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 → (2, 6), obj 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", Bounds::non_negative(), 3.0);
        let y = m.add_var("y", Bounds::non_negative(), 5.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = m.solve().unwrap();
        approx(s.objective(), 36.0);
        approx(s.value(x), 2.0);
        approx(s.value(y), 6.0);
    }

    #[test]
    fn minimize_with_ge() {
        // min 2x + 3y s.t. x+y >= 10, x >= 2 → (8, 2)? No: y cheaper to
        // avoid; optimum puts everything on x: x=10,y=0 → 20? cost x=2 < 3,
        // so x=10, y=0, obj 20 (x>=2 inactive).
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", Bounds::non_negative(), 2.0);
        let y = m.add_var("y", Bounds::non_negative(), 3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        let s = m.solve().unwrap();
        approx(s.objective(), 20.0);
        approx(s.value(x), 10.0);
        approx(s.value(y), 0.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 → x=2, y=1, obj 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", Bounds::non_negative(), 1.0);
        let y = m.add_var("y", Bounds::non_negative(), 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Eq, 4.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
        let s = m.solve().unwrap();
        approx(s.value(x), 2.0);
        approx(s.value(y), 1.0);
        approx(s.objective(), 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", Bounds::non_negative(), 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert!(matches!(m.solve(), Err(PcnError::Infeasible(_))));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", Bounds::non_negative(), 1.0);
        m.add_constraint(vec![(x, -1.0)], Cmp::Le, 5.0);
        assert!(matches!(m.solve(), Err(PcnError::Unbounded(_))));
    }

    #[test]
    fn variable_bounds_respected() {
        // max x + y with x in [1, 3], y in [0, 2].
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", Bounds::range(1.0, 3.0), 1.0);
        let y = m.add_var("y", Bounds::range(0.0, 2.0), 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 100.0);
        let s = m.solve().unwrap();
        approx(s.value(x), 3.0);
        approx(s.value(y), 2.0);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with x in [-5, 5], x >= -3 ⇒ x = -3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", Bounds::range(-5.0, 5.0), 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, -3.0);
        let s = m.solve().unwrap();
        approx(s.value(x), -3.0);
        approx(s.objective(), -3.0);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x + y >= -2 with x,y >= 0 is vacuous; min x+y = 0.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", Bounds::non_negative(), 1.0);
        let y = m.add_var("y", Bounds::non_negative(), 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, -2.0);
        let s = m.solve().unwrap();
        approx(s.objective(), 0.0);
    }

    #[test]
    fn degenerate_pivots_terminate() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", Bounds::non_negative(), 1.0);
        let y = m.add_var("y", Bounds::non_negative(), 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(x, 2.0), (y, 1.0)], Cmp::Le, 2.0);
        let s = m.solve().unwrap();
        approx(s.objective(), 1.0);
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 2 stated twice (redundant row → artificial stuck at 0).
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", Bounds::non_negative(), 1.0);
        let y = m.add_var("y", Bounds::non_negative(), 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        m.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Eq, 4.0);
        let s = m.solve().unwrap();
        approx(s.value(x), 2.0);
        approx(s.objective(), 2.0);
    }

    #[test]
    fn transportation_problem() {
        // 2 plants (cap 20, 30) → 2 markets (demand 25, 25);
        // costs: p1→m1 1, p1→m2 4, p2→m1 3, p2→m2 2.
        // Optimum: p1→m1 20, p2→m1 5, p2→m2 25 ⇒ 20 + 15 + 50 = 85.
        let mut m = Model::new(Sense::Minimize);
        let x11 = m.add_var("x11", Bounds::non_negative(), 1.0);
        let x12 = m.add_var("x12", Bounds::non_negative(), 4.0);
        let x21 = m.add_var("x21", Bounds::non_negative(), 3.0);
        let x22 = m.add_var("x22", Bounds::non_negative(), 2.0);
        m.add_constraint(vec![(x11, 1.0), (x12, 1.0)], Cmp::Le, 20.0);
        m.add_constraint(vec![(x21, 1.0), (x22, 1.0)], Cmp::Le, 30.0);
        m.add_constraint(vec![(x11, 1.0), (x21, 1.0)], Cmp::Ge, 25.0);
        m.add_constraint(vec![(x12, 1.0), (x22, 1.0)], Cmp::Ge, 25.0);
        let s = m.solve().unwrap();
        approx(s.objective(), 85.0);
    }
}
