//! A small mixed-integer linear programming (MILP) solver.
//!
//! §IV-C of the paper converts the PCH placement problem into a MILP and
//! notes it "can be directly solved by existing commercial solvers" using
//! "a combination of the branch and bound method and the cutting-plane
//! method". This repository has no commercial solver, so this crate *is*
//! the solver: a dense two-phase primal simplex for the LP relaxation and a
//! best-first branch-and-bound for integrality. It is designed for the
//! paper's instance sizes (tens of binaries, hundreds of constraints), not
//! industrial scale.
//!
//! # Examples
//!
//! A tiny knapsack:
//!
//! ```
//! use milp::{Bounds, Cmp, Model, Sense};
//!
//! let mut m = Model::new(Sense::Maximize);
//! let a = m.add_var("a", Bounds::binary(), 60.0);
//! let b = m.add_var("b", Bounds::binary(), 100.0);
//! let c = m.add_var("c", Bounds::binary(), 120.0);
//! m.add_constraint(vec![(a, 10.0), (b, 20.0), (c, 30.0)], Cmp::Le, 50.0);
//! let sol = m.solve().unwrap();
//! assert_eq!(sol.objective().round(), 220.0); // b + c
//! assert_eq!(sol.value(a).round(), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod model;
mod simplex;
mod solution;

pub use branch_bound::BranchBoundConfig;
pub use model::{Bounds, Cmp, Model, Sense, VarId};
pub use solution::Solution;

/// Tolerance for feasibility/optimality comparisons.
pub(crate) const EPS: f64 = 1e-7;
/// Tolerance for declaring a relaxation value integral.
pub(crate) const INT_EPS: f64 = 1e-6;
