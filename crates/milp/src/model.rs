//! Model builder: variables, bounds, constraints, objective.

use pcn_types::{PcnError, Result};

use crate::solution::Solution;

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Comparison operator of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

/// Handle to a model variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Variable domain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bounds {
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) integer: bool,
}

impl Bounds {
    /// Continuous variable in `[lower, upper]` (`upper` may be
    /// `f64::INFINITY`).
    ///
    /// # Panics
    ///
    /// Panics if `lower` is not finite, or `lower > upper`.
    pub fn range(lower: f64, upper: f64) -> Bounds {
        assert!(lower.is_finite(), "lower bound must be finite");
        assert!(lower <= upper, "empty bound interval");
        Bounds {
            lower,
            upper,
            integer: false,
        }
    }

    /// Continuous non-negative variable `[0, ∞)`.
    pub fn non_negative() -> Bounds {
        Bounds::range(0.0, f64::INFINITY)
    }

    /// Binary variable `{0, 1}`.
    pub fn binary() -> Bounds {
        Bounds {
            lower: 0.0,
            upper: 1.0,
            integer: true,
        }
    }

    /// Integer variable in `[lower, upper]`.
    pub fn integer(lower: f64, upper: f64) -> Bounds {
        let mut b = Bounds::range(lower, upper);
        b.integer = true;
        b
    }
}

#[derive(Clone, Debug)]
pub(crate) struct Variable {
    pub(crate) name: String,
    pub(crate) bounds: Bounds,
    pub(crate) objective: f64,
}

#[derive(Clone, Debug)]
pub(crate) struct Constraint {
    pub(crate) terms: Vec<(VarId, f64)>,
    pub(crate) cmp: Cmp,
    pub(crate) rhs: f64,
}

/// A linear program / MILP under construction.
///
/// See the crate-level docs for a complete example.
#[derive(Clone, Debug)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model with the given optimization direction.
    pub fn new(sense: Sense) -> Model {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a variable with the given domain and objective coefficient.
    pub fn add_var(&mut self, name: impl Into<String>, bounds: Bounds, objective: f64) -> VarId {
        assert!(
            objective.is_finite(),
            "objective coefficient must be finite"
        );
        self.vars.push(Variable {
            name: name.into(),
            bounds,
            objective,
        });
        VarId(self.vars.len() - 1)
    }

    /// Adds a linear constraint `Σ coeff·var  cmp  rhs`.
    ///
    /// Duplicate variable entries are summed. Zero-coefficient terms are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics on unknown variables or non-finite coefficients/rhs.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut dense: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for (v, c) in terms {
            assert!(v.0 < self.vars.len(), "unknown variable in constraint");
            assert!(c.is_finite(), "constraint coefficient must be finite");
            *dense.entry(v.0).or_insert(0.0) += c;
        }
        let terms: Vec<(VarId, f64)> = dense
            .into_iter()
            .filter(|&(_, c)| c != 0.0)
            .map(|(i, c)| (VarId(i), c))
            .collect();
        self.constraints.push(Constraint { terms, cmp, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable (for diagnostics).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Whether any variable is integer-constrained.
    pub fn has_integers(&self) -> bool {
        self.vars.iter().any(|v| v.bounds.integer)
    }

    /// Solves the model: plain simplex when continuous, branch & bound with
    /// default configuration when integer variables are present.
    ///
    /// # Errors
    ///
    /// [`PcnError::Infeasible`] / [`PcnError::Unbounded`] as diagnosed, or
    /// [`PcnError::SolverBudgetExceeded`] if branch & bound hits its node
    /// limit.
    pub fn solve(&self) -> Result<Solution> {
        if self.has_integers() {
            crate::branch_bound::solve(self, &crate::BranchBoundConfig::default())
        } else {
            self.solve_relaxation()
        }
    }

    /// Solves with an explicit branch & bound configuration.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    pub fn solve_with(&self, config: &crate::BranchBoundConfig) -> Result<Solution> {
        if self.has_integers() {
            crate::branch_bound::solve(self, config)
        } else {
            self.solve_relaxation()
        }
    }

    /// Solves the LP relaxation (integrality dropped).
    ///
    /// # Errors
    ///
    /// [`PcnError::Infeasible`] or [`PcnError::Unbounded`].
    pub fn solve_relaxation(&self) -> Result<Solution> {
        if self.vars.is_empty() {
            return if self.constraints.iter().all(|c| {
                let lhs = 0.0;
                match c.cmp {
                    Cmp::Le => lhs <= c.rhs + crate::EPS,
                    Cmp::Ge => lhs >= c.rhs - crate::EPS,
                    Cmp::Eq => (lhs - c.rhs).abs() <= crate::EPS,
                }
            }) {
                Ok(Solution::new(Vec::new(), 0.0))
            } else {
                Err(PcnError::Infeasible(
                    "empty model with unmet constant constraint".into(),
                ))
            };
        }
        crate::simplex::solve_lp(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", Bounds::non_negative(), 1.0);
        let y = m.add_var("y", Bounds::range(0.0, 5.0), 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0), (x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.var_name(x), "x");
        // duplicate x terms summed
        assert_eq!(m.constraints[0].terms, vec![(x, 2.0), (y, 1.0)]);
        assert!(!m.has_integers());
    }

    #[test]
    fn binary_marks_integer() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var("b", Bounds::binary(), 1.0);
        assert!(m.has_integers());
    }

    #[test]
    #[should_panic(expected = "empty bound interval")]
    fn inverted_bounds_panic() {
        Bounds::range(2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_var_panics() {
        let mut m1 = Model::new(Sense::Minimize);
        let mut m2 = Model::new(Sense::Minimize);
        let _ = m1.add_var("x", Bounds::non_negative(), 1.0);
        let x1 = m1.add_var("y", Bounds::non_negative(), 1.0);
        m2.add_constraint(vec![(x1, 1.0)], Cmp::Le, 1.0);
    }

    #[test]
    fn zero_coefficients_dropped() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", Bounds::non_negative(), 1.0);
        m.add_constraint(vec![(x, 0.0)], Cmp::Le, 1.0);
        assert!(m.constraints[0].terms.is_empty());
    }

    #[test]
    fn empty_model_solves() {
        let m = Model::new(Sense::Minimize);
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective(), 0.0);
    }

    #[test]
    fn empty_model_infeasible_constant() {
        let mut m = Model::new(Sense::Minimize);
        m.add_constraint(vec![], Cmp::Ge, 1.0);
        assert!(matches!(m.solve(), Err(PcnError::Infeasible(_))));
    }
}
