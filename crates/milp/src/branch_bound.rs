//! Best-first branch & bound over the simplex relaxation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pcn_types::{PcnError, Result};

use crate::model::{Model, Sense};
use crate::solution::Solution;
use crate::INT_EPS;

/// Branch & bound configuration.
#[derive(Clone, Debug)]
pub struct BranchBoundConfig {
    /// Maximum number of explored nodes before giving up.
    pub max_nodes: usize,
    /// Absolute optimality gap at which a node is pruned against the
    /// incumbent.
    pub gap: f64,
}

impl Default for BranchBoundConfig {
    fn default() -> Self {
        BranchBoundConfig {
            max_nodes: 200_000,
            gap: 1e-7,
        }
    }
}

/// Ordered wrapper so the heap pops the best LP bound first.
#[derive(PartialEq)]
struct Bound(f64);

impl Eq for Bound {}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bound {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Node {
    /// (var index, lower, upper) overrides accumulated down the tree.
    bounds: Vec<(usize, f64, f64)>,
}

pub(crate) fn solve(model: &Model, config: &BranchBoundConfig) -> Result<Solution> {
    // We minimize internally; flip for maximization when comparing bounds.
    let minimize = model.sense == Sense::Minimize;
    let to_min = |obj: f64| if minimize { obj } else { -obj };

    let int_vars: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.bounds.integer)
        .map(|(i, _)| i)
        .collect();

    let mut heap: BinaryHeap<(Reverse<Bound>, usize)> = BinaryHeap::new();
    let mut nodes: Vec<Node> = vec![Node { bounds: Vec::new() }];
    let mut incumbent: Option<Solution> = None;
    let mut incumbent_min = f64::INFINITY;
    let mut explored = 0usize;
    let mut root_infeasible = true;

    // Evaluate root.
    match relax_with(model, &nodes[0].bounds) {
        Ok(sol) => {
            root_infeasible = false;
            heap.push((Reverse(Bound(to_min(sol.objective()))), 0));
        }
        Err(PcnError::Infeasible(_)) => {}
        Err(e) => return Err(e),
    }

    while let Some((Reverse(Bound(bound)), idx)) = heap.pop() {
        explored += 1;
        if explored > config.max_nodes {
            return Err(PcnError::SolverBudgetExceeded(format!(
                "branch & bound exceeded {} nodes",
                config.max_nodes
            )));
        }
        if bound >= incumbent_min - config.gap {
            continue; // pruned by bound
        }
        // Re-solve (cheap at our scale; avoids storing tableaux per node).
        let node_bounds = std::mem::take(&mut nodes[idx].bounds);
        let sol = match relax_with(model, &node_bounds) {
            Ok(s) => s,
            Err(PcnError::Infeasible(_)) => continue,
            Err(e) => return Err(e),
        };
        let obj_min = to_min(sol.objective());
        if obj_min >= incumbent_min - config.gap {
            continue;
        }
        // Find the most fractional integer variable.
        let mut branch: Option<(usize, f64)> = None;
        let mut best_frac = INT_EPS;
        for &j in &int_vars {
            let v = sol.value(crate::model::VarId(j));
            let frac = (v - v.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch = Some((j, v));
            }
        }
        match branch {
            None => {
                // Integral — new incumbent (round off tolerance noise).
                let mut values = sol.values().to_vec();
                for &j in &int_vars {
                    values[j] = values[j].round();
                }
                let objective = recompute_objective(model, &values);
                let omin = to_min(objective);
                if omin < incumbent_min - config.gap {
                    incumbent_min = omin;
                    incumbent = Some(Solution::new(values, objective));
                }
            }
            Some((j, v)) => {
                let floor = v.floor();
                for (lo, hi) in [(f64::NEG_INFINITY, floor), (floor + 1.0, f64::INFINITY)] {
                    let base_lo = model.vars[j].bounds.lower;
                    let base_hi = model.vars[j].bounds.upper;
                    let new_lo = base_lo.max(lo);
                    let new_hi = base_hi.min(hi);
                    // Apply previous overrides for j too.
                    let (mut cur_lo, mut cur_hi) = (new_lo, new_hi);
                    for &(vj, l, h) in &node_bounds {
                        if vj == j {
                            cur_lo = cur_lo.max(l);
                            cur_hi = cur_hi.min(h);
                        }
                    }
                    if cur_lo > cur_hi {
                        continue;
                    }
                    let mut child = node_bounds.clone();
                    child.push((j, cur_lo, cur_hi));
                    match relax_with(model, &child) {
                        Ok(child_sol) => {
                            let b = to_min(child_sol.objective());
                            if b < incumbent_min - config.gap {
                                nodes.push(Node { bounds: child });
                                heap.push((Reverse(Bound(b)), nodes.len() - 1));
                            }
                        }
                        Err(PcnError::Infeasible(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    incumbent.ok_or_else(|| {
        if root_infeasible {
            PcnError::Infeasible("LP relaxation infeasible".into())
        } else {
            PcnError::Infeasible("no integral solution in the feasible region".into())
        }
    })
}

fn relax_with(model: &Model, overrides: &[(usize, f64, f64)]) -> Result<Solution> {
    if overrides.is_empty() {
        return model.solve_relaxation();
    }
    let mut tightened = model.clone();
    for &(j, lo, hi) in overrides {
        let b = &mut tightened.vars[j].bounds;
        b.lower = b.lower.max(lo);
        b.upper = b.upper.min(hi);
        if b.lower > b.upper {
            return Err(PcnError::Infeasible("branch emptied a domain".into()));
        }
    }
    tightened.solve_relaxation()
}

fn recompute_objective(model: &Model, values: &[f64]) -> f64 {
    model
        .vars
        .iter()
        .zip(values)
        .map(|(v, &x)| v.objective * x)
        .sum()
}

#[cfg(test)]
mod tests {
    use crate::{Bounds, Cmp, Model, Sense};
    use pcn_types::PcnError;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn knapsack_small() {
        // weights 12,2,1,1,4 values 4,2,2,1,10 cap 15 → best 15
        let w = [12.0, 2.0, 1.0, 1.0, 4.0];
        let v = [4.0, 2.0, 2.0, 1.0, 10.0];
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..5)
            .map(|i| m.add_var(format!("x{i}"), Bounds::binary(), v[i]))
            .collect();
        m.add_constraint(
            xs.iter().zip(w).map(|(&x, wi)| (x, wi)).collect(),
            Cmp::Le,
            15.0,
        );
        let s = m.solve().unwrap();
        approx(s.objective(), 15.0);
    }

    #[test]
    fn integer_rounding_differs_from_lp() {
        // max x s.t. 2x <= 5; LP gives 2.5, MILP 2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", Bounds::integer(0.0, 10.0), 1.0);
        m.add_constraint(vec![(x, 2.0)], Cmp::Le, 5.0);
        let lp = m.solve_relaxation().unwrap();
        approx(lp.objective(), 2.5);
        let ip = m.solve().unwrap();
        approx(ip.objective(), 2.0);
        assert_eq!(ip.value_rounded(x), 2);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (i, j) mirror the assignment matrix
    fn assignment_problem_3x3() {
        // cost matrix; optimal assignment cost = 5 (1+2+2).
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut x = vec![vec![]; 3];
        for (i, xi) in x.iter_mut().enumerate() {
            for j in 0..3 {
                xi.push(m.add_var(format!("x{i}{j}"), Bounds::binary(), cost[i][j]));
            }
        }
        for i in 0..3 {
            m.add_constraint((0..3).map(|j| (x[i][j], 1.0)).collect(), Cmp::Eq, 1.0);
            m.add_constraint((0..3).map(|j| (x[j][i], 1.0)).collect(), Cmp::Eq, 1.0);
        }
        let s = m.solve().unwrap();
        approx(s.objective(), 5.0);
        // Check it is a permutation.
        for i in 0..3 {
            let row: i64 = (0..3).map(|j| s.value_rounded(x[i][j])).sum();
            assert_eq!(row, 1);
        }
    }

    #[test]
    fn infeasible_integrality() {
        // 2x = 3 has no integer solution (x integer in [0,5]).
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", Bounds::integer(0.0, 5.0), 1.0);
        m.add_constraint(vec![(x, 2.0)], Cmp::Eq, 3.0);
        assert!(matches!(m.solve(), Err(PcnError::Infeasible(_))));
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + y, x binary, y in [0, 1.5]; x + y <= 2 → x=1, y=1 → 3? y up
        // to 1.5 allowed: x=1,y=1 (constraint x+y<=2 binds y<=1) obj 3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", Bounds::binary(), 2.0);
        let y = m.add_var("y", Bounds::range(0.0, 1.5), 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 2.0);
        let s = m.solve().unwrap();
        approx(s.objective(), 3.0);
        assert_eq!(s.value_rounded(x), 1);
        approx(s.value(y), 1.0);
    }

    #[test]
    fn node_budget_respected() {
        // A 12-item knapsack with a 1-node budget must bail out.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..12)
            .map(|i| m.add_var(format!("x{i}"), Bounds::binary(), (i % 5 + 1) as f64))
            .collect();
        m.add_constraint(
            xs.iter()
                .enumerate()
                .map(|(i, &x)| (x, (i % 7 + 1) as f64))
                .collect(),
            Cmp::Le,
            9.5,
        );
        let cfg = crate::BranchBoundConfig {
            max_nodes: 1,
            gap: 1e-7,
        };
        match m.solve_with(&cfg) {
            Err(PcnError::SolverBudgetExceeded(_)) | Ok(_) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn milp_matches_bruteforce_on_random_knapsacks() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for round in 0..20 {
            let n = rng.random_range(3..9usize);
            let weights: Vec<f64> = (0..n).map(|_| rng.random_range(1..20) as f64).collect();
            let values: Vec<f64> = (0..n).map(|_| rng.random_range(1..30) as f64).collect();
            let cap = rng.random_range(10..40) as f64;
            let mut m = Model::new(Sense::Maximize);
            let xs: Vec<_> = (0..n)
                .map(|i| m.add_var(format!("x{i}"), Bounds::binary(), values[i]))
                .collect();
            m.add_constraint(
                xs.iter().zip(&weights).map(|(&x, &w)| (x, w)).collect(),
                Cmp::Le,
                cap,
            );
            let milp = m.solve().unwrap().objective();
            // brute force over 2^n subsets
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let (mut wsum, mut vsum) = (0.0, 0.0);
                for i in 0..n {
                    if mask & (1 << i) != 0 {
                        wsum += weights[i];
                        vsum += values[i];
                    }
                }
                if wsum <= cap {
                    best = best.max(vsum);
                }
            }
            assert!(
                (milp - best).abs() < 1e-6,
                "round {round}: {milp} vs {best}"
            );
        }
    }
}
