//! Solver output.

use crate::model::VarId;

/// A (locally) optimal assignment of model variables.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
}

impl Solution {
    pub(crate) fn new(values: Vec<f64>, objective: f64) -> Solution {
        Solution { values, objective }
    }

    /// Objective value at this solution (in the model's original sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved model.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// All variable values in declaration order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of `v` rounded to the nearest integer (useful for binaries).
    pub fn value_rounded(&self, v: VarId) -> i64 {
        self.values[v.0].round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution::new(vec![0.0, 0.9999999, 2.5], 7.25);
        assert_eq!(s.objective(), 7.25);
        assert_eq!(s.value(VarId(2)), 2.5);
        assert_eq!(s.value_rounded(VarId(1)), 1);
        assert_eq!(s.values().len(), 3);
    }
}
