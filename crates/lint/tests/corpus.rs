//! Fixture-corpus integration tests: prove each rule fires on real
//! violation shapes, each suppression form works, and the actual
//! workspace lints clean (the linter's own acceptance gate).

use std::path::{Path, PathBuf};

use splicer_lint::{lint_source, Rule};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

/// Lints a fixture as if it lived in a scanned semantic crate.
fn lint_fixture(name: &str) -> Vec<splicer_lint::Finding> {
    lint_source("crates/routing/src/fixture.rs", &fixture(name))
}

fn count(findings: &[splicer_lint::Finding], rule: Rule) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn r1_fires_on_every_iteration_shape() {
    let f = lint_fixture("r1_unordered_iter.rs");
    // keys, values, retain, drain, for-over-map, for-over-local-set,
    // struct-field values — and nothing from the lookup/BTreeMap decoys.
    assert_eq!(count(&f, Rule::UnorderedIter), 7, "{f:#?}");
    assert_eq!(f.len(), 7, "{f:#?}");
}

#[test]
fn r2_fires_on_every_ambient_source() {
    let f = lint_fixture("r2_ambient.rs");
    // Instant::now, SystemTime, std::env, thread_rng, from_entropy —
    // and nothing from the comment/string decoys.
    assert_eq!(count(&f, Rule::AmbientNondet), 5, "{f:#?}");
    assert_eq!(f.len(), 5, "{f:#?}");
}

#[test]
fn r2_wall_clock_site_is_allowlisted() {
    let f = lint_source(splicer_lint::R2_WALL_CLOCK_SITE, &fixture("r2_ambient.rs"));
    // Clocks pass at the allowlisted site; env/rng findings remain.
    assert_eq!(count(&f, Rule::AmbientNondet), 3, "{f:#?}");
    assert!(
        f.iter().all(|x| !x.message.contains("wall-clock")),
        "{f:#?}"
    );
}

#[test]
fn r3_fires_on_unbumped_state_writes() {
    let f = lint_fixture("r3_epoch.rs");
    assert_eq!(count(&f, Rule::EpochBump), 2, "{f:#?}");
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("lock_no_bump")));
    assert!(f.iter().any(|x| x.message.contains("sprout_no_bump")));
}

#[test]
fn r3_covers_landmark_table_rebuilds() {
    // The ALT landmark table's rebuild path is held to the same epoch
    // discipline as NetworkFunds and Graph: rewriting the hop rows
    // without keying them to a topology epoch is a finding.
    let f = lint_fixture("r3_landmarks.rs");
    assert_eq!(count(&f, Rule::EpochBump), 1, "{f:#?}");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("rebuild_no_key")));
}

#[test]
fn r4_fires_including_in_test_code() {
    let f = lint_fixture("r4_safety.rs");
    assert_eq!(count(&f, Rule::SafetyComment), 2, "{f:#?}");
    assert_eq!(f.len(), 2, "{f:#?}");
}

#[test]
fn rules_r1_to_r3_are_exempt_under_test_paths() {
    for fixture_name in ["r1_unordered_iter.rs", "r2_ambient.rs", "r3_epoch.rs"] {
        let f = lint_source("crates/routing/src/engine/tests.rs", &fixture(fixture_name));
        assert!(f.is_empty(), "{fixture_name}: {f:#?}");
        let f = lint_source("crates/routing/benches/loop.rs", &fixture(fixture_name));
        assert!(f.is_empty(), "{fixture_name}: {f:#?}");
    }
}

#[test]
fn every_suppression_form_silences_its_finding() {
    let f = lint_fixture("suppressed_ok.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn suppression_hygiene_is_enforced() {
    let f = lint_fixture("suppressed_bad.rs");
    // missing reason, unused allow, unknown rule — plus the unsuppressed
    // r1 finding the unknown-rule allow failed to cover.
    assert_eq!(count(&f, Rule::Suppression), 3, "{f:#?}");
    assert_eq!(count(&f, Rule::UnorderedIter), 1, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("without a reason")));
    assert!(f.iter().any(|x| x.message.contains("unused suppression")));
}

#[test]
fn workspace_lints_clean() {
    // The gate CI enforces, as a test: zero unsuppressed findings across
    // every scanned crate of the actual workspace.
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives at <root>/crates/lint")
        .to_path_buf();
    let (findings, files) = splicer_lint::lint_workspace(&root).expect("workspace readable");
    assert!(
        files > 50,
        "expected to scan the real workspace, saw {files} files"
    );
    assert!(
        findings.is_empty(),
        "workspace has unsuppressed findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
