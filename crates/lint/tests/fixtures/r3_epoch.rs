//! R3 fixture: epoch-contract violations on NetworkFunds and Graph.
//! Not compiled — lexed by `tests/corpus.rs` under a semantic-crate path.

impl NetworkFunds {
    pub fn lock_no_bump(&mut self, id: ChannelId, amount: Amount) {
        // finding: writes balance state, never mentions an epoch bump
        self.get_mut(id).lock(amount);
    }

    pub fn settle_ok(&mut self, id: ChannelId, amount: Amount) {
        self.get_mut(id).settle(amount);
        self.bump(id); // satisfied
    }

    pub fn rebalance_ok(&mut self, id: ChannelId) {
        let ch = self.get_mut(id);
        ch.bal_ab = ch.bal_ba;
        self.funds_epoch += 1; // satisfied: mentions an epoch
    }

    pub fn read_only(&self, id: ChannelId) -> Amount {
        self.get(id).bal_ab // &self — out of scope
    }
}

impl Mutate for Graph {
    fn sprout_no_bump(&mut self, v: NodeId) {
        // finding: touches adjacency, no epoch mention
        self.delta[v.index()].push(entry(v));
    }

    fn sprout_ok(&mut self, v: NodeId) {
        self.delta[v.index()].push(entry(v));
        self.topology_epoch += 1; // satisfied
    }
}

impl SomethingElse {
    fn unrelated(&mut self) {
        self.csr.clear(); // other types are out of scope
    }
}
