//! R2 fixture: every ambient-nondeterminism source the rule must catch.
//! Not compiled — lexed by `tests/corpus.rs` under a semantic-crate path.

fn clocks() {
    let _ = std::time::Instant::now(); // finding: Instant::now
    let _ = std::time::SystemTime::now(); // finding: SystemTime
}

fn environment() {
    let _ = std::env::var("SPLICER_SEED"); // finding: std::env
}

fn randomness() {
    let _ = thread_rng(); // finding: thread_rng
    let _ = SmallRng::from_entropy(); // finding: from_entropy
}

fn mentions_in_text_are_fine() {
    // Instant::now() in a comment is not a finding.
    let _doc = "neither is Instant::now() inside a string literal";
}
