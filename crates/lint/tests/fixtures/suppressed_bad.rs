//! Suppression-hygiene fixture: allows that are themselves findings.
//! Not compiled — lexed by `tests/corpus.rs`.

use std::collections::HashMap;

fn missing_reason(m: &HashMap<u64, u64>) -> u64 {
    // splicer-lint: allow(r1)
    m.values().sum()
}

fn unused_allow() {
    // splicer-lint: allow(r2) — nothing below actually reads a clock
    let _ = 1 + 1;
}

fn unknown_rule(m: &HashMap<u64, u64>) -> usize {
    // splicer-lint: allow(r9) — no such rule
    m.keys().count()
}
