//! Suppression fixture: every allow form that must silence a finding.
//! Not compiled — lexed by `tests/corpus.rs`. Lints clean.

use std::collections::HashMap;

fn above_line(m: &HashMap<u64, u64>) -> u64 {
    // splicer-lint: allow(r1) — summation folds out iteration order
    m.values().sum()
}

fn same_line(m: &HashMap<u64, u64>) -> usize {
    m.keys().count() // splicer-lint: allow(r1) — count is order-free
}

fn long_name_form(m: &HashMap<u64, u64>) -> u64 {
    // splicer-lint: allow(unordered-iter) — max is order-free
    m.values().copied().max().unwrap_or(0)
}

fn stacked(m: &HashMap<u64, u64>) {
    // splicer-lint: allow(r1) — order feeds a commutative fold only
    // splicer-lint: allow(r2) — diagnostic wall-clock, never semantic
    let _ = (m.values().count(), std::time::Instant::now());
}
