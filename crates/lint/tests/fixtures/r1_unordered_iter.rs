//! R1 fixture: every hash-container iteration shape the rule must catch.
//! Not compiled — lexed by `tests/corpus.rs` under a semantic-crate path.

use std::collections::{HashMap, HashSet};

struct Book {
    entries: HashMap<u64, u64>,
}

fn method_calls(m: &HashMap<u64, u64>, s: &mut HashSet<u64>) {
    let _ = m.keys().count(); // finding: keys()
    let _ = m.values().sum::<u64>(); // finding: values()
    s.retain(|&x| x > 0); // finding: retain()
    for x in s.drain() {
        // finding: drain()
        let _ = x;
    }
}

fn for_loops(m: &HashMap<u64, u64>) {
    for (k, v) in m {
        // finding: bare for over HashMap
        let _ = (k, v);
    }
    let mut local = std::collections::HashSet::new();
    local.insert(1u64);
    for t in &local {
        // finding: un-ascribed let binding tracked too
        let _ = t;
    }
}

impl Book {
    fn totals(&self) -> u64 {
        self.entries.values().sum() // finding: struct field binding
    }
}

fn lookups_are_fine(m: &HashMap<u64, u64>, s: &HashSet<u64>) {
    let _ = m.get(&1);
    let _ = s.contains(&2);
    let _ = m.len() + s.len();
}

fn ordered_containers_are_fine(b: &std::collections::BTreeMap<u64, u64>) {
    for (k, v) in b {
        let _ = (k, v);
    }
}
