//! R4 fixture: `unsafe` blocks, documented and not.
//! Not compiled — lexed by `tests/corpus.rs`.
//! (The word the rule looks for appears below only where the
//! fixture means it to.)

fn bare() {
    let x = unsafe { core::ptr::read(P) }; // finding: undocumented
    let _ = x;
}

fn documented() {
    // SAFETY: P points to a live, initialized value for the whole call.
    let x = unsafe { core::ptr::read(P) };
    let _ = x;
}

#[cfg(test)]
mod tests {
    fn in_tests_still_required() {
        let _ = unsafe { core::ptr::read(P) }; // finding: R4 has no test exemption
    }
}
