//! R3 fixture: epoch discipline on the ALT LandmarkTable rebuild path.
//! Not compiled — lexed by `tests/corpus.rs` under a semantic-crate path.

impl LandmarkTable {
    pub fn rebuild_no_key(&mut self, g: &Graph) {
        // finding: rewrites landmark rows without keying them to an epoch
        self.rows.clear();
        self.landmarks.push(seed);
    }

    pub fn rebuild_keyed_ok(&mut self, g: &Graph) {
        self.rows.clear();
        self.landmarks.push(seed);
        self.built_epoch = Some((g.node_count(), g.topology_epoch())); // satisfied
    }

    pub fn read_row(&self, lm: usize) -> Row {
        row_of(&self.rows, lm) // &self — out of scope
    }
}
