//! `splicer-lint` — workspace determinism linter.
//!
//! Enforces the epoch/determinism contract at the source level across
//! every non-vendor workspace crate. See [`rules`] for the four rules
//! (R1 unordered-iter, R2 ambient-nondet, R3 epoch-bump, R4
//! safety-comment) and the suppression grammar, [`lexer`] for the
//! hand-rolled token model that keeps rules from matching text inside
//! strings or doc comments.
//!
//! Dependency-free and hermetic: the linter reads sources with `std::fs`
//! only, has no build-time or runtime dependencies, and is itself
//! excluded from scanning (it legitimately touches `std::env`/`std::fs`).

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

pub use rules::{lint_source, Finding, Rule, R2_WALL_CLOCK_SITE};

use std::path::{Path, PathBuf};

/// Crates whose `src/` trees the linter scans. Deliberately a closed
/// list: vendor stubs, the bench shim, the root integration crate's
/// dependents, and the linter itself stay out of scope.
pub const SCANNED_CRATES: [&str; 10] = [
    "types",
    "sim",
    "graph",
    "crypto",
    "milp",
    "placement",
    "routing",
    "workload",
    "core",
    "harness",
];

/// Locates the workspace root: walks up from `start` looking for a
/// `Cargo.toml` containing a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for stable
/// report order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lints one file on disk. `root` is the workspace root used to form
/// the workspace-relative path in reports.
pub fn lint_file(root: &Path, path: &Path) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(rules::lint_source(&rel, &src))
}

/// Lints every scanned crate under `root`. Returns all findings plus
/// the number of files examined. Errors only on unreadable files that
/// exist; absent crates are skipped (the list is a superset contract).
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    for krate in SCANNED_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        rust_files(&src_dir, &mut files);
    }
    let n = files.len();
    for path in files {
        findings.extend(lint_file(root, &path)?);
    }
    Ok((findings, n))
}
