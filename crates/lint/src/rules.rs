//! The four determinism rules, the suppression grammar, and the
//! per-file analysis driver.
//!
//! Every headline result of this reproduction — cache hits bit-identical
//! to recomputation, sharded runs bit-identical to the serial engine,
//! grids bit-identical across worker counts — rests on the determinism
//! contract. These rules enforce it at the source level, deny-by-default:
//!
//! - **R1 `unordered-iter`** — no iteration over `HashMap`/`HashSet`
//!   (incl. `keys`/`values`/`drain`/`retain`) in semantic code. Std hash
//!   containers iterate in hasher-seed order, which varies per process:
//!   any escape of that order into channel ids, RNG draws, or event
//!   scheduling silently breaks bit-reproducibility *across* processes
//!   while the in-process pin tests keep passing.
//! - **R2 `ambient-nondet`** — no `Instant::now` / `SystemTime` /
//!   `std::env` / `thread_rng` / `from_entropy` outside the single
//!   allowlisted wall-clock site (`crates/routing/src/stats.rs`).
//! - **R3 `epoch-bump`** — any `&mut self` fn in `impl NetworkFunds`
//!   or `impl Graph` that writes balance/adjacency state must mention
//!   the corresponding epoch bump in its body (the cache-invalidation
//!   contract: state never moves without its epoch).
//! - **R4 `safety-comment`** — every `unsafe` is preceded by a
//!   `// SAFETY:` comment (applies to tests too: the counting-allocator
//!   shims are exactly where an unsound shortcut would hide).
//!
//! Suppressions are inline, per-site, and carry a mandatory reason:
//!
//! ```text
//! // splicer-lint: allow(r1) — hub set is sorted+deduped after collect
//! ```
//!
//! on the offending line or the comment lines directly above it. An
//! allow that suppresses nothing, or one without a reason, is itself a
//! finding — suppressions must stay honest.

use crate::lexer::{lex, Token, TokenKind};

/// Rule identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// R1: iteration over unordered containers in semantic code.
    UnorderedIter,
    /// R2: ambient nondeterminism (wall clock, env, OS entropy).
    AmbientNondet,
    /// R3: state write without the corresponding epoch bump.
    EpochBump,
    /// R4: `unsafe` without a `// SAFETY:` comment.
    SafetyComment,
    /// Meta: malformed or unused suppression.
    Suppression,
}

impl Rule {
    /// Canonical short code (what `allow(…)` takes).
    pub fn code(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "r1",
            Rule::AmbientNondet => "r2",
            Rule::EpochBump => "r3",
            Rule::SafetyComment => "r4",
            Rule::Suppression => "lint",
        }
    }

    /// Human name printed in reports and `--help`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered-iter",
            Rule::AmbientNondet => "ambient-nondet",
            Rule::EpochBump => "epoch-bump",
            Rule::SafetyComment => "safety-comment",
            Rule::Suppression => "suppression",
        }
    }

    fn from_allow_name(s: &str) -> Option<Rule> {
        match s {
            "r1" | "unordered-iter" => Some(Rule::UnorderedIter),
            "r2" | "ambient-nondet" => Some(Rule::AmbientNondet),
            "r3" | "epoch-bump" => Some(Rule::EpochBump),
            "r4" | "safety-comment" => Some(Rule::SafetyComment),
            _ => None,
        }
    }

    /// Whether findings of this rule are waived in test/bench code.
    /// R4 is not: safety comments matter everywhere `unsafe` appears.
    fn exempt_in_tests(self) -> bool {
        !matches!(self, Rule::SafetyComment)
    }
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: Rule,
    pub message: String,
}

impl core::fmt::Display for Finding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

/// The sole file whose wall-clock reads R2 allowlists: the `wall_timer`
/// helper every semantic wall-clock measurement funnels through.
pub const R2_WALL_CLOCK_SITE: &str = "crates/routing/src/stats.rs";

const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "retain_mut",
];

/// Whether a workspace-relative path is test/bench/example code.
pub fn is_test_path(rel: &str) -> bool {
    rel.ends_with("tests.rs")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

/// Lints one file. `rel` is the workspace-relative path used both for
/// reporting and for the R2 allowlist / test exemptions.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let analysis = FileAnalysis::new(rel, src, &tokens, &code);
    analysis.run()
}

struct Allow {
    rule: Rule,
    line: u32,
    col: u32,
    has_reason: bool,
    used: std::cell::Cell<bool>,
}

struct FileAnalysis<'a> {
    rel: &'a str,
    tokens: &'a [Token],
    code: &'a [&'a Token],
    /// Lines (1-based) containing at least one code token.
    code_lines: std::collections::BTreeSet<u32>,
    /// `#[cfg(test)]` item line ranges (inclusive).
    test_regions: Vec<(u32, u32)>,
    allows: Vec<Allow>,
    test_file: bool,
}

impl<'a> FileAnalysis<'a> {
    fn new(rel: &'a str, _src: &str, tokens: &'a [Token], code: &'a [&'a Token]) -> Self {
        let code_lines = code.iter().map(|t| t.line).collect();
        let test_regions = find_cfg_test_regions(code);
        let allows = parse_allows(tokens);
        FileAnalysis {
            rel,
            tokens,
            code,
            code_lines,
            test_regions,
            allows,
            test_file: is_test_path(rel),
        }
    }

    fn in_test_code(&self, line: u32) -> bool {
        self.test_file
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether an allow for `rule` covers `line`: same line, or the run
    /// of comment-only lines directly above it.
    fn suppressed(&self, rule: Rule, line: u32) -> bool {
        let mut hit = false;
        for a in &self.allows {
            if a.rule != rule {
                continue;
            }
            let covers = a.line == line || {
                // Comment-only lines a.line..line-1 link the allow to
                // the finding (stacked allows all apply).
                a.line < line && (a.line..line).all(|l| !self.code_lines.contains(&l))
            };
            if covers {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }

    fn run(self) -> Vec<Finding> {
        let mut raw: Vec<Finding> = Vec::new();
        self.rule_unordered_iter(&mut raw);
        self.rule_ambient_nondet(&mut raw);
        self.rule_epoch_bump(&mut raw);
        self.rule_safety_comment(&mut raw);

        let mut out: Vec<Finding> = Vec::new();
        for f in raw {
            if f.rule.exempt_in_tests() && self.in_test_code(f.line) {
                continue;
            }
            if !self.suppressed(f.rule, f.line) {
                out.push(f);
            }
        }
        // Suppression hygiene: no reason / unknown rule / unused.
        for a in &self.allows {
            if !a.has_reason {
                out.push(self.finding_at(
                    a.line,
                    a.col,
                    Rule::Suppression,
                    format!(
                        "allow({}) without a reason — suppressions must say why \
                         (`// splicer-lint: allow({}) — <reason>`)",
                        a.rule.code(),
                        a.rule.code()
                    ),
                ));
            } else if !a.used.get() {
                out.push(self.finding_at(
                    a.line,
                    a.col,
                    Rule::Suppression,
                    format!(
                        "unused suppression: allow({}) matches no finding on or \
                         below this line — remove it",
                        a.rule.code()
                    ),
                ));
            }
        }
        out.sort_by_key(|f| (f.line, f.col));
        out
    }

    fn finding_at(&self, line: u32, col: u32, rule: Rule, message: String) -> Finding {
        Finding {
            file: self.rel.to_string(),
            line,
            col,
            rule,
            message,
        }
    }

    // ----- R1: unordered-container iteration ---------------------------

    fn rule_unordered_iter(&self, out: &mut Vec<Finding>) {
        let bound = collect_hash_bindings(self.code);
        if bound.is_empty() {
            return;
        }
        let c = self.code;
        for i in 0..c.len() {
            let t = c[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let Some(container) = bound.get(t.text.as_str()) else {
                continue;
            };
            // `name . iter_method (`
            if i + 3 <= c.len()
                && c[i + 1].is_punct('.')
                && c[i + 2].kind == TokenKind::Ident
                && ITER_METHODS.contains(&c[i + 2].text.as_str())
                && c.get(i + 3).is_some_and(|t| t.is_punct('('))
            {
                out.push(self.finding_at(
                    t.line,
                    t.col,
                    Rule::UnorderedIter,
                    format!(
                        "iteration over unordered {container} `{}` via `.{}()` — hash order \
                         varies per process; use BTreeMap/BTreeSet or sort before iterating",
                        t.text,
                        c[i + 2].text
                    ),
                ));
            }
        }
        // `for … in <header containing a bound name> {`
        let mut i = 0;
        while i < c.len() {
            if c[i].is_ident("for") && c.get(i + 1).is_some_and(|t| !t.is_punct('<')) {
                // find `in` then the body `{` at depth 0
                let mut j = i + 1;
                let mut depth = 0i32;
                let mut in_pos = None;
                while j < c.len() {
                    match c[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "in" if depth == 0 && c[j].kind == TokenKind::Ident => {
                            in_pos = Some(j);
                            break;
                        }
                        "{" | ";" => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(start) = in_pos {
                    let mut k = start + 1;
                    let mut d = 0i32;
                    while k < c.len() {
                        let tk = c[k];
                        match tk.text.as_str() {
                            "(" | "[" => d += 1,
                            ")" | "]" => d -= 1,
                            "{" if d == 0 => break,
                            _ => {}
                        }
                        if tk.kind == TokenKind::Ident {
                            if let Some(container) = bound.get(tk.text.as_str()) {
                                // Method calls (`m.keys()`, `m.get(..)`) are the
                                // method rule's jurisdiction; indexing is a lookup.
                                let next_is_method = c.get(k + 1).is_some_and(|n| n.is_punct('.'));
                                let next_is_index = c.get(k + 1).is_some_and(|n| n.is_punct('['));
                                if !next_is_method && !next_is_index {
                                    out.push(self.finding_at(
                                        tk.line,
                                        tk.col,
                                        Rule::UnorderedIter,
                                        format!(
                                            "`for` loop iterates unordered {container} `{}` — \
                                             hash order varies per process; use \
                                             BTreeMap/BTreeSet or sort before iterating",
                                            tk.text
                                        ),
                                    ));
                                }
                            }
                        }
                        k += 1;
                    }
                    i = k;
                    continue;
                }
            }
            i += 1;
        }
    }

    // ----- R2: ambient nondeterminism ----------------------------------

    fn rule_ambient_nondet(&self, out: &mut Vec<Finding>) {
        let wall_clock_site = self.rel == R2_WALL_CLOCK_SITE;
        let c = self.code;
        for i in 0..c.len() {
            let t = c[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let seq2 = |a: &str, b: &str| {
                t.is_ident(a)
                    && c.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && c.get(i + 2).is_some_and(|x| x.is_punct(':'))
                    && c.get(i + 3).is_some_and(|x| x.is_ident(b))
            };
            let msg = if seq2("Instant", "now") {
                if wall_clock_site {
                    continue;
                }
                Some(
                    "wall-clock read (`Instant::now`) outside the allowlisted \
                     `wall_timer` site — route it through `pcn_routing::stats::wall_timer`",
                )
            } else if t.is_ident("SystemTime") {
                if wall_clock_site {
                    continue;
                }
                Some("wall-clock read (`SystemTime`) — semantic code must not observe real time")
            } else if seq2("std", "env") {
                Some(
                    "ambient environment read (`std::env`) — config must flow through \
                     scenario parameters, not the process environment",
                )
            } else if t.is_ident("thread_rng") {
                Some(
                    "OS-seeded RNG (`thread_rng`) — all randomness must derive from the \
                     scenario seed via SimRng/SplitMix64",
                )
            } else if t.is_ident("from_entropy") {
                Some(
                    "OS-entropy seeding (`from_entropy`) — all randomness must derive \
                     from the scenario seed via SimRng/SplitMix64",
                )
            } else {
                None
            };
            if let Some(m) = msg {
                out.push(self.finding_at(t.line, t.col, Rule::AmbientNondet, m.to_string()));
            }
        }
    }

    // ----- R3: epoch-contract guard ------------------------------------

    fn rule_epoch_bump(&self, out: &mut Vec<Finding>) {
        let c = self.code;
        let mut i = 0;
        while i < c.len() {
            if !c[i].is_ident("impl") {
                i += 1;
                continue;
            }
            // Header runs to the body `{` (or a `;`). The impl target is
            // the ident after `for` if present, else the first
            // non-generic ident.
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut target: Option<&str> = None;
            let mut after_for = false;
            while j < c.len() {
                let t = c[j];
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle <= 0 => break,
                    ";" => break,
                    _ => {
                        if t.kind == TokenKind::Ident && angle == 0 {
                            if t.text == "for" {
                                after_for = true;
                                target = None;
                            } else if target.is_none() || after_for {
                                target = Some(&t.text);
                                after_for = false;
                            }
                        }
                    }
                }
                j += 1;
            }
            if j >= c.len() || !c[j].is_punct('{') {
                i = j;
                continue;
            }
            let body_start = j;
            let body_end = match_brace(c, body_start);
            let guard = match target {
                Some("NetworkFunds") => Some(EpochGuard {
                    target: "NetworkFunds",
                    state: "balance",
                    triggers_ident: &["bal_ab", "bal_ba", "locked_ab", "locked_ba"],
                    triggers_method: &["lock", "settle", "refund", "push", "insert", "remove"],
                    satisfiers: &["bump", "compact"],
                }),
                Some("Graph") => Some(EpochGuard {
                    target: "Graph",
                    state: "adjacency",
                    triggers_ident: &["csr", "delta", "row_offsets", "edges", "live_deg"],
                    triggers_method: &[],
                    satisfiers: &["bump", "compact", "maybe_compact"],
                }),
                // The ALT landmark table caches per-landmark hop rows; a
                // rebuild that does not key the new rows to the graph's
                // topology epoch would serve stale lower bounds to later
                // searches — the same contract as the routing path cache.
                Some("LandmarkTable") => Some(EpochGuard {
                    target: "LandmarkTable",
                    state: "landmark-row",
                    triggers_ident: &["rows", "landmarks"],
                    triggers_method: &[],
                    satisfiers: &["ensure_fresh"],
                }),
                _ => None,
            };
            if let Some(guard) = guard {
                self.check_impl_fns(&guard, &c[body_start + 1..body_end], out);
            }
            i = body_end + 1;
        }
    }

    fn check_impl_fns(&self, guard: &EpochGuard, body: &[&Token], out: &mut Vec<Finding>) {
        let mut i = 0;
        while i < body.len() {
            if !body[i].is_ident("fn") {
                i += 1;
                continue;
            }
            let name_tok = body.get(i + 1);
            // Params: the balanced `( … )` after the name.
            let Some(popen) = body[i..]
                .iter()
                .position(|t| t.is_punct('('))
                .map(|p| p + i)
            else {
                break;
            };
            let pclose = match_paren(body, popen);
            let params = &body[popen + 1..pclose];
            let first_comma = params
                .iter()
                .position(|t| t.is_punct(','))
                .unwrap_or(params.len());
            let recv = &params[..first_comma];
            let mut_receiver =
                recv.iter().any(|t| t.is_ident("self")) && recv.iter().any(|t| t.is_ident("mut"));
            // Body: the balanced `{ … }` after the params (skip `-> T`).
            let Some(bopen) = body[pclose..]
                .iter()
                .position(|t| t.is_punct('{') || t.is_punct(';'))
                .map(|p| p + pclose)
            else {
                break;
            };
            if body[bopen].is_punct(';') {
                i = bopen + 1;
                continue;
            }
            let bclose = match_brace(body, bopen);
            if mut_receiver {
                let fn_body = &body[bopen + 1..bclose];
                let triggered = fn_body.iter().enumerate().any(|(k, t)| {
                    (t.kind == TokenKind::Ident && guard.triggers_ident.contains(&t.text.as_str()))
                        || (t.is_punct('.')
                            && fn_body.get(k + 1).is_some_and(|m| {
                                m.kind == TokenKind::Ident
                                    && guard.triggers_method.contains(&m.text.as_str())
                            })
                            && fn_body.get(k + 2).is_some_and(|p| p.is_punct('(')))
                });
                let satisfied = fn_body.iter().any(|t| {
                    t.kind == TokenKind::Ident
                        && (t.text.contains("epoch") || guard.satisfiers.contains(&t.text.as_str()))
                });
                if triggered && !satisfied {
                    let (line, col, name) = name_tok
                        .map(|t| (t.line, t.col, t.text.as_str()))
                        .unwrap_or((body[i].line, body[i].col, "?"));
                    out.push(self.finding_at(
                        line,
                        col,
                        Rule::EpochBump,
                        format!(
                            "`fn {name}` writes {} {} state without mentioning an epoch \
                             bump — stale cache entries would be served as fresh",
                            guard.target, guard.state
                        ),
                    ));
                }
            }
            i = bclose + 1;
        }
    }

    // ----- R4: SAFETY comments -----------------------------------------

    fn rule_safety_comment(&self, out: &mut Vec<Finding>) {
        // Comment lines carrying a SAFETY marker.
        let safety_lines: std::collections::BTreeSet<u32> = self
            .tokens
            .iter()
            .filter(|t| t.is_comment() && t.text.contains("SAFETY"))
            .map(|t| t.line)
            .collect();
        for t in self.code {
            if !t.is_ident("unsafe") {
                continue;
            }
            // Accept a SAFETY comment on the same line or within the 4
            // preceding lines (attribute lines may sit between).
            let ok = (t.line.saturating_sub(4)..=t.line).any(|l| safety_lines.contains(&l));
            if !ok {
                out.push(
                    self.finding_at(
                        t.line,
                        t.col,
                        Rule::SafetyComment,
                        "`unsafe` without a preceding `// SAFETY:` comment documenting the \
                     invariant that makes it sound"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

struct EpochGuard {
    target: &'static str,
    state: &'static str,
    triggers_ident: &'static [&'static str],
    triggers_method: &'static [&'static str],
    satisfiers: &'static [&'static str],
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(c: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in c.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    c.len().saturating_sub(1)
}

/// Index of the `)` matching the `(` at `open` (or the last token).
fn match_paren(c: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in c.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    c.len().saturating_sub(1)
}

/// Finds `#[cfg(test)]`-gated items and returns their line spans.
fn find_cfg_test_regions(c: &[&Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 6 < c.len() {
        let is_attr = c[i].is_punct('#')
            && c[i + 1].is_punct('[')
            && c[i + 2].is_ident("cfg")
            && c[i + 3].is_punct('(')
            && c[i + 4].is_ident("test")
            && c[i + 5].is_punct(')')
            && c[i + 6].is_punct(']');
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = c[i].line;
        // Skip to the gated item's end: first `;` at depth 0 (out-of-line
        // `mod tests;`) or the close of its first depth-0 `{ … }` block.
        let mut j = i + 7;
        let mut depth = 0i32;
        let mut end_line = start_line;
        while j < c.len() {
            let t = c[j];
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => {
                    end_line = t.line;
                    break;
                }
                "{" if depth == 0 => {
                    let close = match_brace(c, j);
                    end_line = c[close].line;
                    j = close;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        out.push((start_line, end_line));
        i = j + 1;
    }
    out
}

/// Names bound to hash containers in this file → which container.
///
/// Three binding shapes are tracked, uniformly, via token patterns:
/// type ascriptions (`name: HashMap<…>` in lets, struct fields, and fn
/// params), and un-ascribed lets whose initializer constructs one
/// (`= HashMap::new()`, `collect::<HashSet<_>>()`).
fn collect_hash_bindings<'t>(c: &[&'t Token]) -> std::collections::BTreeMap<&'t str, &'static str> {
    let mut bound = std::collections::BTreeMap::new();
    let container_of = |t: &Token| -> Option<&'static str> {
        if t.is_ident("HashMap") {
            Some("HashMap")
        } else if t.is_ident("HashSet") {
            Some("HashSet")
        } else {
            None
        }
    };
    for i in 0..c.len() {
        let t = c[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name : <type containing HashMap/HashSet>` — terminated by a
        // depth-0 `,`/`)`/`;`/`=`/`{`. The container ident leads its
        // type, so it always precedes any generic-argument comma.
        let ascribed = c.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && !c.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && !(i > 0 && c[i - 1].is_punct(':'));
        if ascribed {
            let mut depth = 0i32;
            for &x in c.iter().take(i + 40).skip(i + 2) {
                match x.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "," | ";" | "=" | "{" if depth == 0 => break,
                    _ => {}
                }
                if let Some(kind) = container_of(x) {
                    bound.insert(t.text.as_str(), kind);
                    break;
                }
            }
        }
        // `let [mut] name = <expr constructing a hash container> ;`
        if t.is_ident("let") {
            let mut k = i + 1;
            if c.get(k).is_some_and(|x| x.is_ident("mut")) {
                k += 1;
            }
            let Some(name) = c.get(k).filter(|x| x.kind == TokenKind::Ident) else {
                continue;
            };
            if !c.get(k + 1).is_some_and(|x| x.is_punct('=')) {
                continue;
            }
            let mut depth = 0i32;
            for j in k + 2..c.len() {
                let x = c[j];
                match x.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    _ => {}
                }
                if container_of(x).is_some()
                    && c.get(j + 1)
                        .is_some_and(|n| n.is_punct(':') || n.is_punct('<'))
                {
                    bound.insert(name.text.as_str(), container_of(x).unwrap());
                    break;
                }
            }
        }
    }
    bound
}

/// Parses `// splicer-lint: allow(<rule>) — <reason>` comments.
fn parse_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        let Some(pos) = t.text.find("splicer-lint:") else {
            continue;
        };
        let rest = t.text[pos + "splicer-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let (rule_name, after) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((name, after)) => (name.trim(), after),
            None => ("", rest),
        };
        let rule = Rule::from_allow_name(rule_name);
        // Reason: whatever follows the closing paren, minus separator
        // dashes/colons. Mandatory.
        let reason: String = after
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim()
            .to_string();
        match rule {
            Some(rule) => out.push(Allow {
                rule,
                line: t.line,
                col: t.col,
                has_reason: reason.chars().count() >= 3,
                used: std::cell::Cell::new(false),
            }),
            None => out.push(Allow {
                // Unknown rule names surface as never-satisfiable
                // suppression findings via the has_reason=false path.
                rule: Rule::Suppression,
                line: t.line,
                col: t.col,
                has_reason: false,
                used: std::cell::Cell::new(false),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        lint_source("crates/routing/src/fake.rs", src)
    }

    fn codes(src: &str) -> Vec<&'static str> {
        findings(src).iter().map(|f| f.rule.name()).collect()
    }

    #[test]
    fn r1_flags_hashmap_keys_and_for_loops() {
        let src = r#"
            fn f() {
                let mut m: HashMap<u32, u32> = HashMap::new();
                for k in m.keys() { use_it(k); }
                for (a, b) in &m { use_it(a); }
            }
        "#;
        let f = findings(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::UnorderedIter));
        assert_eq!(f[0].line, 4);
        assert_eq!(f[1].line, 5);
    }

    #[test]
    fn r1_tracks_unascribed_let_and_fields_and_params() {
        let src = r#"
            struct S { entries: HashSet<u32> }
            fn g(m: &HashMap<u32, u32>, v: &Vec<u32>) {
                let mut targets = std::collections::HashSet::new();
                targets.insert(1);
                for t in &targets { eat(t); }
                m.values().count();
                for x in v.iter() { eat(x); }
            }
            impl S {
                fn h(&mut self) { self.entries.retain(|_| true); }
            }
        "#;
        let f = findings(src);
        let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![6, 7, 11], "{f:?}");
    }

    #[test]
    fn r1_allows_membership_and_lookup() {
        let src = r#"
            fn f(m: &HashMap<u32, u32>, s: &HashSet<u32>) {
                if s.contains(&1) { go(); }
                let v = m.get(&2);
                for x in 0..10 { if s.contains(&x) { go(); } }
                let y = m[&3];
            }
        "#;
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn r1_ignores_strings_comments_and_tests() {
        let src = r#"
            /// Iterates `m.keys()` — doc text, not code.
            fn f() { let s = "m.keys() in a string"; }
            #[cfg(test)]
            mod tests {
                fn t(m: &HashMap<u32, u32>) { for k in m.keys() { eat(k); } }
            }
        "#;
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn r2_flags_all_ambient_sources() {
        let src = r#"
            fn f() {
                let t = std::time::Instant::now();
                let s = SystemTime::now();
                let e = std::env::var("X");
                let r = thread_rng();
                let k = Rng::from_entropy();
            }
        "#;
        assert_eq!(codes(src), vec!["ambient-nondet"; 5]);
    }

    #[test]
    fn r2_allowlists_the_wall_clock_site_for_clocks_only() {
        let src = "fn f() { let t = Instant::now(); let e = std::env::var(\"X\"); }";
        let f = lint_source(R2_WALL_CLOCK_SITE, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("std::env"));
    }

    #[test]
    fn r3_requires_epoch_bump_on_balance_writes() {
        let src = r#"
            impl NetworkFunds {
                pub fn lock(&mut self, id: u32) {
                    self.get_mut(id).lock(1);
                }
                pub fn settle(&mut self, id: u32) {
                    self.get_mut(id).settle(1);
                    self.bump(id);
                }
                pub fn balance(&self, id: u32) -> u64 { self.get(id) }
            }
        "#;
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::EpochBump);
        assert!(f[0].message.contains("fn lock"));
    }

    #[test]
    fn r3_covers_graph_adjacency_via_trait_impls_too() {
        let src = r#"
            impl Mutate for Graph {
                fn grow(&mut self) {
                    self.csr.push(1);
                }
                fn grow_tracked(&mut self) {
                    self.csr.push(1);
                    self.topology_epoch += 1;
                }
            }
            impl Other { fn x(&mut self) { self.csr.push(1); } }
        "#;
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("fn grow"));
    }

    #[test]
    fn r4_requires_safety_comments_even_in_tests() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn f() {
                    let x = unsafe { read() };
                    // SAFETY: the pointer is valid for the call.
                    let y = unsafe { read() };
                }
            }
        "#;
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::SafetyComment);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn suppression_with_reason_works_and_is_tracked() {
        let src = r#"
            fn f(m: &HashMap<u32, u32>) {
                // splicer-lint: allow(r1) — order folds into a sum, cannot escape
                for k in m.keys() { total += k; }
                let n = m.values().count(); // splicer-lint: allow(r1) — count only
            }
        "#;
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn suppression_without_reason_is_a_finding() {
        let src = r#"
            fn f(m: &HashMap<u32, u32>) {
                // splicer-lint: allow(r1)
                for k in m.keys() { total += k; }
            }
        "#;
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Suppression);
        assert!(f[0].message.contains("without a reason"));
    }

    #[test]
    fn unused_suppression_is_a_finding() {
        let src = "// splicer-lint: allow(r2) — nothing here actually needs this\nfn f() {}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("unused suppression"));
    }

    #[test]
    fn stacked_suppressions_all_apply() {
        let src = r#"
            fn f(m: &HashMap<u32, u32>) {
                // splicer-lint: allow(r1) — sum is order-insensitive
                // splicer-lint: allow(r2) — wall clock feeds a diagnostic-only field
                for k in m.keys() { total += k + now(std::env::var("X")); }
            }
        "#;
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn test_paths_are_exempt_except_r4() {
        let src = r#"
            fn f(m: &HashMap<u32, u32>) {
                for k in m.keys() { eat(k); }
                let t = std::time::Instant::now();
                let x = unsafe { read() };
            }
        "#;
        let f = lint_source("crates/routing/src/engine/tests.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::SafetyComment);
    }
}
