//! `splicer-lint` CLI.
//!
//! Exit codes: 0 = clean, 1 = unsuppressed findings, 2 = usage or I/O
//! error. Reports are rustc-style `file:line:col: error[rule]: message`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
splicer-lint — workspace determinism linter

Walks every non-vendor workspace crate and enforces the determinism
contract, deny-by-default:

  r1  unordered-iter   no iteration over HashMap/HashSet (incl. keys/
                       values/drain/retain) in semantic code; hash order
                       varies per process. Tests/benches exempt.
  r2  ambient-nondet   no Instant::now / SystemTime / std::env /
                       thread_rng / from_entropy outside the allowlisted
                       wall-clock site (crates/routing/src/stats.rs).
                       Tests/benches exempt.
  r3  epoch-bump       every &mut self fn on NetworkFunds/Graph that
                       writes balance/adjacency state must mention the
                       corresponding epoch bump in its body.
  r4  safety-comment   every `unsafe` is preceded by a `// SAFETY:`
                       comment. Applies everywhere, tests included.

Suppressions are inline, per-site, with a mandatory reason:

  // splicer-lint: allow(r1) — hub set is sorted+deduped after collect

on the offending line or the comment lines directly above it. Allows
without a reason, and allows that suppress nothing, are findings.

USAGE:
  splicer-lint [--root <dir>] [--help]

OPTIONS:
  --root <dir>   workspace root (default: auto-discovered from the
                 manifest dir or by walking up to a [workspace] manifest)
  -h, --help     print this rule list and exit
";

fn discover_root() -> Option<PathBuf> {
    // When run via `cargo run -p splicer-lint`, the manifest dir is
    // crates/lint — the workspace root is two levels up.
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(md);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").exists() {
                return Some(root.to_path_buf());
            }
        }
    }
    let cwd = std::env::current_dir().ok()?;
    splicer_lint::find_workspace_root(&cwd)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(discover_root) else {
        eprintln!("error: could not locate the workspace root (pass --root <dir>)");
        return ExitCode::from(2);
    };
    match splicer_lint::lint_workspace(&root) {
        Ok((findings, files)) => {
            if findings.is_empty() {
                println!("splicer-lint: {files} files clean");
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!(
                    "splicer-lint: {} finding(s) across {files} files — fix or add \
                     `// splicer-lint: allow(<rule>) — <reason>`",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
