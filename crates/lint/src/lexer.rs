//! A hand-rolled Rust lexer, just deep enough for token-level linting.
//!
//! The rules in [`crate::rules`] must match *tokens*, never text inside
//! string literals, doc comments, or commented-out code — otherwise a
//! doc example mentioning `HashMap::iter` would trip the determinism
//! lint. The lexer therefore classifies exactly the constructs that can
//! hide rule text from a naive regex:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments,
//! - string literals with escapes, byte strings, and raw strings
//!   (`r"…"`, `r#"…"#`, any hash depth),
//! - char literals vs lifetimes (`'a'` vs `'a`),
//! - numbers (so `0..n` does not swallow the range dots).
//!
//! Everything else is an identifier or a single-char punct. Comments are
//! kept as tokens — rule R4 and the suppression parser need them — and
//! rules skip them when matching code.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unsafe`, …).
    Ident,
    /// A lifetime (`'a`), without its ticks.
    Lifetime,
    /// Char literal, including quotes.
    CharLit,
    /// String / byte-string / raw-string literal, including quotes.
    StrLit,
    /// Numeric literal.
    Number,
    /// Single punctuation character.
    Punct,
    /// `// …` comment (incl. doc comments), without the newline.
    LineComment,
    /// `/* … */` comment, possibly nested.
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// Whether this token is a comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punct `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lexes `src` into tokens. Never fails: unterminated constructs are
/// closed at end of input (the linter must keep scanning a file a human
/// is mid-edit on, not panic).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == '"' {
                self.string(line, col, String::new());
            } else if c == '\'' {
                self.tick(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if c.is_alphabetic() || c == '_' {
                self.ident(line, col);
            } else {
                self.bump();
                self.push(TokenKind::Punct, c.to_string(), line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line, col);
    }

    /// A (possibly raw/byte) string literal. `prefix` holds an already
    /// consumed literal prefix (`r`, `b`, `br`, `rb`) when called from
    /// [`Lexer::ident`].
    fn string(&mut self, line: u32, col: u32, prefix: String) {
        let mut text = prefix.clone();
        let raw = prefix.contains('r');
        let mut hashes = 0usize;
        if raw {
            while self.peek(0) == Some('#') {
                hashes += 1;
                text.push('#');
                self.bump();
            }
        }
        if self.peek(0) != Some('"') {
            // `r#foo` raw identifier, not a string: re-lex as ident text.
            let mut t = text;
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    t.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Ident, t, line, col);
            return;
        }
        text.push('"');
        self.bump();
        while let Some(c) = self.peek(0) {
            if !raw && c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                text.push(c);
                self.bump();
                if raw {
                    // Need `hashes` trailing #s to actually close.
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        seen += 1;
                        text.push('#');
                        self.bump();
                    }
                    if seen < hashes {
                        continue; // a quote inside the raw string
                    }
                }
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::StrLit, text, line, col);
    }

    /// Disambiguates a lifetime (`'a`) from a char literal (`'a'`).
    fn tick(&mut self, line: u32, col: u32) {
        // A tick starts a lifetime iff it is followed by an ident char
        // that is NOT itself followed by a closing tick ('x' is a char).
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let is_lifetime =
            matches!(c1, Some(c) if c.is_alphabetic() || c == '_') && c2 != Some('\'');
        self.bump(); // the tick
        if is_lifetime {
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line, col);
            return;
        }
        // Char literal: consume one (possibly escaped) char, then the
        // closing tick. `'\u{1F600}'` needs the braced scan.
        let mut text = String::from("'");
        if self.peek(0) == Some('\\') {
            text.push('\\');
            self.bump();
            match self.bump() {
                Some('u') => {
                    text.push('u');
                    while let Some(c) = self.peek(0) {
                        text.push(c);
                        self.bump();
                        if c == '}' {
                            break;
                        }
                    }
                }
                Some(e) => text.push(e),
                None => {}
            }
        } else if let Some(c) = self.bump() {
            text.push(c);
        }
        if self.peek(0) == Some('\'') {
            text.push('\'');
            self.bump();
        }
        self.push(TokenKind::CharLit, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // One fractional part, but never a range: `1.5` yes, `1..n` no.
        if self.peek(0) == Some('.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.push(TokenKind::Number, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes hand off to the string lexer.
        if matches!(text.as_str(), "r" | "b" | "br" | "rb")
            && matches!(self.peek(0), Some('"') | Some('#'))
        {
            self.string(line, col, text);
            return;
        }
        self.push(TokenKind::Ident, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], (TokenKind::Ident, "a".into()));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("inner"));
        assert_eq!(toks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn strings_hide_rule_text() {
        // The HashMap/iter mentions live inside literals: no Ident tokens.
        let src = r##"let s = "HashMap.iter()"; let r = r#"targets.keys() "quoted""#;"##;
        let idents = code_idents(src);
        assert_eq!(idents, vec!["let", "s", "let", "r"]);
    }

    #[test]
    fn raw_string_hash_depths() {
        let toks = kinds(r###"r##"has "# inside"## after"###);
        assert_eq!(toks[0].0, TokenKind::StrLit);
        assert!(toks[0].1.contains("inside"));
        assert_eq!(toks[1], (TokenKind::Ident, "after".into()));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
    }

    #[test]
    fn unicode_escape_char() {
        let toks = kinds(r"let c = '\u{1F600}'; next");
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::CharLit));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "next".into()));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..n { let f = 1.5e3; let h = 0xFF; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, vec!["0", "1.5e3", "0xFF"]);
    }

    #[test]
    fn line_and_doc_comments() {
        let src = "/// doc HashMap iter\n//! inner\nfn x() {} // trailing";
        let comments: Vec<_> = lex(src).into_iter().filter(Token::is_comment).collect();
        assert_eq!(comments.len(), 3);
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[2].line, 3);
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
    }

    #[test]
    fn byte_string_is_a_literal() {
        let toks = kinds(r#"b"HashMap" x"#);
        assert_eq!(toks[0].0, TokenKind::StrLit);
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
    }
}
