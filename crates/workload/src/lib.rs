//! Evaluation workloads (§V-A).
//!
//! Three generators reproduce the paper's experiment inputs:
//!
//! * [`funds`] — channel sizes following the heavy-tailed Lightning
//!   distribution \[27\] (min 10 / median 152 / mean 403 tokens), fitted as
//!   a clamped log-normal.
//! * [`topology`] — Watts–Strogatz small-world channel graphs (generated
//!   "by ROLL based on the Watts–Strogatz model" in the paper) and the
//!   multi-star rewiring that turns a placement plan into Splicer's
//!   topology (Fig. 2b), plus the single-hub star of A2L (Fig. 2a).
//! * [`transactions`] — Poisson payment arrivals with log-normal values
//!   (credit-card-shaped \[28\]), Zipf-skewed recipients, and explicit
//!   one-directional circulation flows that "are guaranteed to cause some
//!   local deadlocks".
//!
//! [`scenario`] bundles them into the two evaluation scales: small
//! (100 nodes) and large (3000 nodes), and [`builder`] wraps every knob
//! in the chainable [`ScenarioBuilder`] DSL:
//!
//! ```
//! use pcn_workload::{ScenarioBuilder, SchemeChoice};
//!
//! let spec = ScenarioBuilder::tiny()
//!     .channel_scale(2.0)
//!     .scheme(SchemeChoice::Spider)
//!     .seed(7)
//!     .expect_no_deadlock()
//!     .build();
//! let world = spec.scenario(); // deterministic per seed
//! assert!(!world.payments.is_empty());
//! ```
//!
//! A spec is pure data: the `pcn-harness` crate executes specs (alone or
//! as parallel experiment grids) and checks their expectations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod builder;
pub mod funds;
pub mod scenario;
pub mod timeline;
pub mod topology;
pub mod transactions;

pub use adversary::{AdversaryBuilder, AdversarySpec};
pub use builder::{Expectations, ScenarioBuilder, ScenarioSpec, SchemeChoice};
pub use funds::ChannelFunds;
pub use pcn_routing::fault::RogueBehavior;
pub use scenario::{Scenario, ScenarioParams};
pub use timeline::{HubOutageSpec, TimelineBuilder, TimelineSpec};
pub use topology::PcnTopology;
pub use transactions::TxWorkload;
