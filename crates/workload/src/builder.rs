//! The scenario DSL: a chainable builder over every experiment knob.
//!
//! [`ScenarioBuilder`] subsumes the raw [`ScenarioParams`] presets and the
//! ad-hoc failure-injection tweaks tests used to apply by hand. A chain
//! produces a [`ScenarioSpec`] — pure data describing *what* to run
//! (world parameters, scheme, expectations) without running it; the
//! harness layer (`pcn-harness`) turns specs into engine runs and checks
//! the expectations.
//!
//! ```
//! use pcn_workload::{ScenarioBuilder, SchemeChoice};
//!
//! let spec = ScenarioBuilder::new()
//!     .nodes(120)
//!     .degree(8)
//!     .channel_scale(2.0)
//!     .scheme(SchemeChoice::Splicer)
//!     .arrivals_per_sec(20.0)
//!     .seed(7)
//!     .expect_no_deadlock()
//!     .build();
//! assert_eq!(spec.params.nodes, 120);
//! assert!(spec.expect.no_deadlock);
//! // The world itself materializes on demand, deterministically:
//! let scenario = spec.scenario();
//! assert_eq!(scenario.flat.graph.node_count(), 120);
//! ```

use pcn_types::SimDuration;

use crate::scenario::{Scenario, ScenarioParams};

/// Which routing scheme a spec runs (mapped to a concrete system by the
/// harness layer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeChoice {
    /// The paper's system: placement + multi-star rewiring + deadlock-free
    /// rate-based hub routing.
    Splicer,
    /// Spider \[9\]: source routing with rate/congestion control on the
    /// flat topology.
    Spider,
    /// Flash \[10\]: max-flow elephants, cached-path mice.
    Flash,
    /// Landmark routing \[6,29,30\].
    Landmark,
    /// A2L \[4\]: a single-hub star with cryptographic service cost.
    A2L,
    /// Naive shortest-path strawman (deadlock demos).
    ShortestPath,
}

impl SchemeChoice {
    /// The five schemes compared in Figs. 7–8, in the paper's order.
    pub const COMPARED: [SchemeChoice; 5] = [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
    ];

    /// Display name matching the run reports.
    pub fn name(self) -> &'static str {
        match self {
            SchemeChoice::Splicer => "Splicer",
            SchemeChoice::Spider => "Spider",
            SchemeChoice::Flash => "Flash",
            SchemeChoice::Landmark => "Landmark",
            SchemeChoice::A2L => "A2L",
            SchemeChoice::ShortestPath => "ShortestPath",
        }
    }
}

/// Post-run expectations attached to a spec (checked by the harness).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Expectations {
    /// No channel direction may end the run fully drained (the paper's
    /// deadlock symptom, Fig. 1), and the engine's stalled-cycle
    /// detector must never fire.
    pub no_deadlock: bool,
    /// Minimum transaction success ratio, if any.
    pub min_tsr: Option<f64>,
    /// Value conservation must hold at end of run (the engine's release
    /// check, `RunStats::conservation_violations == 0`) — the
    /// graceful-degradation floor under any adversary.
    pub value_conserved: bool,
    /// Minimum success ratio over *honest* traffic only (adversarial
    /// griefer/ring payments excluded), if any.
    pub honest_min_tsr: Option<f64>,
    /// Maximum adversarial stall injected into any honest TU's forward,
    /// in milliseconds, if bounded.
    pub bounded_stall_ms: Option<u64>,
}

/// A complete experiment description: world + scheme + expectations.
///
/// Pure data — building a spec runs nothing. Two identical specs always
/// materialize identical worlds and (through the harness) identical runs.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// World parameters (topology, funds, traffic, seed).
    pub params: ScenarioParams,
    /// The scheme to execute.
    pub scheme: SchemeChoice,
    /// Post-run expectations.
    pub expect: Expectations,
}

impl ScenarioSpec {
    /// Materializes the world. Deterministic per `params.seed`.
    pub fn scenario(&self) -> Scenario {
        Scenario::build(self.params.clone())
    }
}

/// Chainable builder over [`ScenarioParams`], scheme and expectations.
///
/// `new()` starts from the paper's small-scale defaults; [`Self::tiny`] /
/// [`Self::small`] / [`Self::large`] select the presets explicitly.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    params: ScenarioParams,
    scheme: SchemeChoice,
    expect: Expectations,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// Starts from the small-scale (100 node) preset and Splicer.
    pub fn new() -> ScenarioBuilder {
        ScenarioBuilder {
            params: ScenarioParams::small(),
            scheme: SchemeChoice::Splicer,
            expect: Expectations::default(),
        }
    }

    /// Starts from the miniature test preset (24 nodes, 10 s).
    pub fn tiny() -> ScenarioBuilder {
        ScenarioBuilder {
            params: ScenarioParams::tiny(),
            ..ScenarioBuilder::new()
        }
    }

    /// Starts from the paper's small scale (100 nodes).
    pub fn small() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// Starts from the paper's large scale (3000 nodes).
    pub fn large() -> ScenarioBuilder {
        ScenarioBuilder {
            params: ScenarioParams::large(),
            ..ScenarioBuilder::new()
        }
    }

    /// Starts from explicit parameters (migration path for existing code).
    pub fn from_params(params: ScenarioParams) -> ScenarioBuilder {
        ScenarioBuilder {
            params,
            ..ScenarioBuilder::new()
        }
    }

    /// Node count.
    pub fn nodes(mut self, n: usize) -> Self {
        self.params.nodes = n;
        self
    }

    /// Watts–Strogatz mean degree.
    pub fn degree(mut self, k: usize) -> Self {
        self.params.degree = k;
        self
    }

    /// Watts–Strogatz rewiring probability.
    pub fn rewire_beta(mut self, beta: f64) -> Self {
        self.params.beta = beta;
        self
    }

    /// Number of smooth-node candidates (|VSNC|).
    pub fn candidates(mut self, count: usize) -> Self {
        self.params.candidate_count = count;
        self
    }

    /// Workload duration.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.params.duration = d;
        self
    }

    /// Workload duration in whole seconds.
    pub fn duration_secs(self, secs: u64) -> Self {
        self.duration(SimDuration::from_secs(secs))
    }

    /// Channel-size scale factor (Fig. 7(a)/8(a) x-axis).
    pub fn channel_scale(mut self, scale: f64) -> Self {
        self.params.channel_scale = scale;
        self
    }

    /// Mean transaction value in tokens (Fig. 7(b)/8(b) x-axis).
    pub fn mean_tx_tokens(mut self, tokens: f64) -> Self {
        self.params.mean_tx_tokens = tokens;
        self
    }

    /// Aggregate transaction arrival rate (tx/sec).
    pub fn arrivals_per_sec(mut self, rate: f64) -> Self {
        self.params.arrivals_per_sec = rate;
        self
    }

    /// Hotspot traffic: `fraction` of transactions draw *both* endpoints
    /// from a Zipf(`skew`) over the clients, concentrating load on a few
    /// popular nodes (flash-crowd / merchant-rush workloads). A fraction
    /// of zero disables the model without perturbing the trace.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `[0, 1]` or `skew` is negative.
    pub fn hotspot(mut self, fraction: f64, skew: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "hotspot fraction must be in [0, 1]"
        );
        assert!(skew >= 0.0, "hotspot skew must be non-negative");
        self.params.hotspot_fraction = fraction;
        self.params.hotspot_skew = skew;
        self
    }

    /// Edits the dynamic-world timeline through a
    /// [`TimelineBuilder`](crate::timeline::TimelineBuilder) chain
    /// (repeated calls accumulate onto the same spec):
    ///
    /// ```
    /// use pcn_workload::ScenarioBuilder;
    ///
    /// let spec = ScenarioBuilder::tiny()
    ///     .timeline(|t| t.hub_outage(3.0, 0, 6.0).churn(0.5))
    ///     .build();
    /// assert_eq!(spec.params.timeline.hub_outages.len(), 1);
    /// ```
    pub fn timeline<F>(mut self, edit: F) -> Self
    where
        F: FnOnce(crate::timeline::TimelineBuilder) -> crate::timeline::TimelineBuilder,
    {
        let current = std::mem::take(&mut self.params.timeline);
        self.params.timeline = edit(crate::timeline::TimelineBuilder::from_spec(current)).build();
        self
    }

    /// Channel churn rate: one close + open pair per `1 / per_sec`
    /// seconds (the grid's churn-sweep knob; shorthand for
    /// `timeline(|t| t.churn(per_sec))`).
    pub fn churn_rate(self, per_sec: f64) -> Self {
        self.timeline(|t| t.churn(per_sec))
    }

    /// Edits the adversary through an
    /// [`AdversaryBuilder`](crate::adversary::AdversaryBuilder) chain
    /// (repeated calls accumulate onto the same spec):
    ///
    /// ```
    /// use pcn_workload::ScenarioBuilder;
    ///
    /// let spec = ScenarioBuilder::tiny()
    ///     .adversary(|a| a.griefers(0.1, 5_000).circular_demand(4, 2.0))
    ///     .build();
    /// assert_eq!(spec.params.adversary.griefer_fraction, 0.1);
    /// ```
    pub fn adversary<F>(mut self, edit: F) -> Self
    where
        F: FnOnce(crate::adversary::AdversaryBuilder) -> crate::adversary::AdversaryBuilder,
    {
        let current = std::mem::take(&mut self.params.adversary);
        self.params.adversary =
            edit(crate::adversary::AdversaryBuilder::from_spec(current)).build();
        self
    }

    /// Griefer attack: `fraction` of clients lock-and-stall for
    /// `hold_ms` (the grid's adversary-sweep knob; shorthand for
    /// `adversary(|a| a.griefers(fraction, hold_ms))`).
    pub fn griefers(self, fraction: f64, hold_ms: u64) -> Self {
        self.adversary(|a| a.griefers(fraction, hold_ms))
    }

    /// Engine shard count: `k > 1` runs the payment trace on `k`
    /// partitioned event loops ([`pcn_routing::ShardedEngine`]) whose
    /// merged result is bit-identical to the single engine — a pure
    /// cores-for-wall-clock trade. Clamped to at least 1.
    pub fn shards(mut self, k: u32) -> Self {
        self.params.shards = k.max(1);
        self
    }

    /// Root seed: every random decision in the run derives from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Scheme to execute.
    pub fn scheme(mut self, scheme: SchemeChoice) -> Self {
        self.scheme = scheme;
        self
    }

    /// Failure injection: multiply the arrival rate and mean value to
    /// overload the network (the threat-model tests' starvation knob).
    pub fn overload(mut self, factor: f64) -> Self {
        self.params.arrivals_per_sec *= factor;
        self.params.mean_tx_tokens *= factor.max(1.0).sqrt();
        self
    }

    /// Expect the run to end with zero fully-drained channel directions.
    pub fn expect_no_deadlock(mut self) -> Self {
        self.expect.no_deadlock = true;
        self
    }

    /// Expect a minimum transaction success ratio.
    pub fn expect_min_tsr(mut self, tsr: f64) -> Self {
        self.expect.min_tsr = Some(tsr);
        self
    }

    /// Expect value conservation to hold at end of run — the
    /// graceful-degradation floor no adversary may break.
    pub fn expect_value_conserved(mut self) -> Self {
        self.expect.value_conserved = true;
        self
    }

    /// Expect a minimum success ratio over honest traffic only
    /// (adversarial griefer/ring payments excluded from the ratio).
    pub fn expect_honest_min_tsr(mut self, tsr: f64) -> Self {
        self.expect.honest_min_tsr = Some(tsr);
        self
    }

    /// Expect no honest TU to be stalled by the adversary for more than
    /// `ms` milliseconds on any single forward.
    pub fn expect_bounded_stall(mut self, ms: u64) -> Self {
        self.expect.bounded_stall_ms = Some(ms);
        self
    }

    /// Finishes the chain into a pure-data spec.
    pub fn build(self) -> ScenarioSpec {
        ScenarioSpec {
            params: self.params,
            scheme: self.scheme,
            expect: self.expect,
        }
    }

    /// Shortcut: build the spec and materialize its world immediately.
    pub fn build_scenario(self) -> Scenario {
        self.build().scenario()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_small_preset() {
        let spec = ScenarioBuilder::new().build();
        assert_eq!(spec.params.nodes, ScenarioParams::small().nodes);
        assert_eq!(spec.scheme, SchemeChoice::Splicer);
        assert!(!spec.expect.no_deadlock);
    }

    #[test]
    fn chain_overrides_apply() {
        let spec = ScenarioBuilder::large()
            .nodes(3000)
            .degree(8)
            .channel_scale(2.0)
            .scheme(SchemeChoice::Spider)
            .arrivals_per_sec(120.0)
            .seed(7)
            .expect_no_deadlock()
            .build();
        assert_eq!(spec.params.nodes, 3000);
        assert_eq!(spec.params.channel_scale, 2.0);
        assert_eq!(spec.params.arrivals_per_sec, 120.0);
        assert_eq!(spec.params.seed, 7);
        assert_eq!(spec.scheme, SchemeChoice::Spider);
        assert!(spec.expect.no_deadlock);
    }

    #[test]
    fn tiny_builds_tiny_world() {
        let scenario = ScenarioBuilder::tiny().build_scenario();
        assert_eq!(scenario.flat.graph.node_count(), 24);
    }

    #[test]
    fn hotspot_knob_flows_into_the_trace() {
        let spec = ScenarioBuilder::tiny().hotspot(0.8, 2.0).build();
        assert_eq!(spec.params.hotspot_fraction, 0.8);
        assert_eq!(spec.params.hotspot_skew, 2.0);
        // A fully-hotspot trace must concentrate recipients more than the
        // stock trace on the same seed.
        let stock = ScenarioBuilder::tiny().build_scenario();
        let hot = ScenarioBuilder::tiny().hotspot(1.0, 2.0).build_scenario();
        let distinct = |s: &crate::Scenario| {
            let mut d: Vec<_> = s.payments.iter().map(|p| p.dest).collect();
            d.sort();
            d.dedup();
            d.len()
        };
        assert!(
            distinct(&hot) <= distinct(&stock),
            "hotspot must not widen the recipient set"
        );
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn hotspot_rejects_bad_fraction() {
        let _ = ScenarioBuilder::tiny().hotspot(1.5, 1.0);
    }

    #[test]
    fn overload_scales_traffic() {
        let base = ScenarioBuilder::tiny().build();
        let hot = ScenarioBuilder::tiny().overload(10.0).build();
        assert!(hot.params.arrivals_per_sec > base.params.arrivals_per_sec * 9.0);
        assert!(hot.params.mean_tx_tokens > base.params.mean_tx_tokens);
    }

    /// `from_params` → `build` must round-trip every field of
    /// `ScenarioParams` — the exhaustive destructure (no `..`) makes
    /// adding a params field without extending this pin a compile
    /// error, so new knobs (like the timeline) can never silently drop
    /// through the builder.
    #[test]
    fn from_params_build_round_trip_loses_no_field() {
        use crate::timeline::TimelineBuilder;
        use pcn_types::SimDuration;

        let mut input = crate::scenario::ScenarioParams::tiny();
        // Push every field off its preset value.
        input.nodes = 31;
        input.degree = 6;
        input.beta = 0.17;
        input.candidate_count = 5;
        input.duration = SimDuration::from_secs(21);
        input.channel_scale = 1.75;
        input.mean_tx_tokens = 9.5;
        input.arrivals_per_sec = 11.0;
        input.hotspot_fraction = 0.4;
        input.hotspot_skew = 1.9;
        input.timeline = TimelineBuilder::default()
            .rate_shift(2.0, 1.5)
            .hub_outage(3.0, 1, 7.0)
            .churn(0.25)
            .rebalance(5.0)
            .build();
        input.adversary = crate::adversary::AdversaryBuilder::default()
            .griefers(0.2, 6_000)
            .circular_demand(5, 1.5)
            .drop(0.1, 0.3)
            .delay(0.2, 90)
            .rogue_hub(0, crate::RogueBehavior::Stall)
            .build();
        input.shards = 4;
        input.seed = 4242;

        let crate::scenario::ScenarioParams {
            nodes,
            degree,
            beta,
            candidate_count,
            duration,
            channel_scale,
            mean_tx_tokens,
            arrivals_per_sec,
            hotspot_fraction,
            hotspot_skew,
            timeline,
            adversary,
            shards,
            seed,
        } = ScenarioBuilder::from_params(input.clone()).build().params;
        assert_eq!(nodes, input.nodes);
        assert_eq!(degree, input.degree);
        assert_eq!(beta, input.beta);
        assert_eq!(candidate_count, input.candidate_count);
        assert_eq!(duration, input.duration);
        assert_eq!(channel_scale, input.channel_scale);
        assert_eq!(mean_tx_tokens, input.mean_tx_tokens);
        assert_eq!(arrivals_per_sec, input.arrivals_per_sec);
        assert_eq!(hotspot_fraction, input.hotspot_fraction);
        assert_eq!(hotspot_skew, input.hotspot_skew);
        assert_eq!(timeline, input.timeline);
        assert_eq!(adversary, input.adversary);
        assert_eq!(shards, input.shards);
        assert_eq!(seed, input.seed);
    }

    #[test]
    fn adversary_chains_accumulate_and_flow_into_the_scenario() {
        let spec = ScenarioBuilder::tiny()
            .adversary(|a| a.griefers(0.25, 4_000))
            .adversary(|a| a.circular_demand(4, 1.0))
            .expect_value_conserved()
            .expect_honest_min_tsr(0.5)
            .expect_bounded_stall(500)
            .build();
        assert_eq!(spec.params.adversary.griefer_fraction, 0.25);
        assert_eq!(spec.params.adversary.ring_len, 4);
        assert!(spec.expect.value_conserved);
        assert_eq!(spec.expect.honest_min_tsr, Some(0.5));
        assert_eq!(spec.expect.bounded_stall_ms, Some(500));
        let world = spec.scenario();
        assert!(!world.faults.is_empty());
        assert!(!world.faults.ring_txs.is_empty());
        // An adversary-free builder still materializes an honest world.
        assert!(ScenarioBuilder::tiny().build_scenario().faults.is_empty());
    }

    #[test]
    fn shards_knob_clamps_to_one() {
        assert_eq!(ScenarioBuilder::tiny().shards(4).build().params.shards, 4);
        assert_eq!(ScenarioBuilder::tiny().shards(0).build().params.shards, 1);
        assert_eq!(ScenarioBuilder::tiny().build().params.shards, 1);
    }

    #[test]
    fn timeline_chains_accumulate_and_flow_into_the_scenario() {
        let spec = ScenarioBuilder::tiny()
            .timeline(|t| t.hub_outage(3.0, 0, 6.0))
            .timeline(|t| t.rate_shift(2.0, 2.0))
            .churn_rate(0.5)
            .build();
        assert_eq!(spec.params.timeline.hub_outages.len(), 1);
        assert_eq!(spec.params.timeline.rate_shifts.len(), 1);
        assert_eq!(spec.params.timeline.churn_per_sec, 0.5);
        let world = spec.scenario();
        assert!(
            world.timeline.len() >= 2 + 2 * 5,
            "outage + shift + 5 churn pairs over 10 s, got {}",
            world.timeline.len()
        );
        // A timeline-free builder still materializes a static world.
        assert!(ScenarioBuilder::tiny().build_scenario().timeline.is_empty());
    }

    #[test]
    fn specs_are_reproducible() {
        let a = ScenarioBuilder::tiny().seed(5).build().scenario();
        let b = ScenarioBuilder::tiny().seed(5).build().scenario();
        assert_eq!(a.payments.len(), b.payments.len());
        assert_eq!(a.generated_value(), b.generated_value());
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn compared_schemes_have_stable_names() {
        let names: Vec<&str> = SchemeChoice::COMPARED.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["Splicer", "Spider", "Flash", "Landmark", "A2L"]);
    }
}
