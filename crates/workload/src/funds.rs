//! Channel fund sampling (Lightning channel-size distribution).

use pcn_sim::dist::LogNormal;
use pcn_sim::SimRng;
use pcn_types::{constants, Amount};

/// Sampler for per-side channel funds.
///
/// Log-normal fitted to the real dataset's median (152 tokens) and mean
/// (403 tokens), clamped below at the dataset minimum (10 tokens), then
/// multiplied by an experiment-level `scale` (the x-axis of Fig. 7(a) /
/// 8(a)).
#[derive(Clone, Debug)]
pub struct ChannelFunds {
    dist: LogNormal,
    min: Amount,
    scale: f64,
}

impl ChannelFunds {
    /// The paper's fitted distribution at scale 1.0.
    pub fn lightning() -> ChannelFunds {
        ChannelFunds {
            dist: LogNormal::fit_median_mean(
                constants::MEDIAN_CHANNEL_TOKENS as f64,
                constants::MEAN_CHANNEL_TOKENS as f64,
            ),
            min: Amount::from_tokens(constants::MIN_CHANNEL_TOKENS),
            scale: 1.0,
        }
    }

    /// Returns a copy with all samples scaled by `scale` (> 0).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn scaled(mut self, scale: f64) -> ChannelFunds {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Draws one side's funds.
    pub fn sample(&self, rng: &mut SimRng) -> Amount {
        let raw = self.dist.sample(rng).max(self.min.to_tokens_f64());
        Amount::from_tokens_f64(raw * self.scale)
    }

    /// The configured scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_minimum() {
        let f = ChannelFunds::lightning();
        let mut rng = SimRng::seed(1);
        for _ in 0..5000 {
            assert!(f.sample(&mut rng) >= Amount::from_tokens(10));
        }
    }

    #[test]
    fn statistics_near_dataset() {
        let f = ChannelFunds::lightning();
        let mut rng = SimRng::seed(2);
        let mut samples: Vec<f64> = (0..100_000)
            .map(|_| f.sample(&mut rng).to_tokens_f64())
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((median - 152.0).abs() / 152.0 < 0.06, "median {median}");
        assert!((mean - 403.0).abs() / 403.0 < 0.12, "mean {mean}");
    }

    #[test]
    fn heavy_tail_present() {
        let f = ChannelFunds::lightning();
        let mut rng = SimRng::seed(3);
        let big = (0..50_000)
            .map(|_| f.sample(&mut rng).to_tokens_f64())
            .filter(|&v| v > 2_000.0)
            .count();
        assert!(big > 50, "tail too light: {big}");
    }

    #[test]
    fn scaling_multiplies() {
        let base = ChannelFunds::lightning();
        let scaled = ChannelFunds::lightning().scaled(4.0);
        let a = base.sample(&mut SimRng::seed(7));
        let b = scaled.sample(&mut SimRng::seed(7));
        // Millitoken rounding allows a hair of slack.
        assert!((b.to_tokens_f64() / a.to_tokens_f64() - 4.0).abs() < 1e-4);
        assert_eq!(scaled.scale(), 4.0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn bad_scale_panics() {
        let _ = ChannelFunds::lightning().scaled(0.0);
    }
}
