//! Scenario presets: the paper's two evaluation scales.

use pcn_routing::fault::FaultPlan;
use pcn_routing::tu::Payment;
use pcn_routing::world::WorldEvent;
use pcn_sim::SimRng;
use pcn_types::{NodeId, SimDuration};

use crate::adversary::AdversarySpec;
use crate::funds::ChannelFunds;
use crate::timeline::TimelineSpec;
use crate::topology::PcnTopology;
use crate::transactions::TxWorkload;

/// Knobs describing one experiment's world.
#[derive(Clone, Debug)]
pub struct ScenarioParams {
    /// Node count (100 small / 3000 large in the paper).
    pub nodes: usize,
    /// Watts–Strogatz mean degree.
    pub degree: usize,
    /// Watts–Strogatz rewiring probability.
    pub beta: f64,
    /// Number of smooth-node candidates (|VSNC|).
    pub candidate_count: usize,
    /// Workload duration.
    pub duration: SimDuration,
    /// Channel-size scale factor (Fig. 7(a)/8(a) x-axis).
    pub channel_scale: f64,
    /// Mean transaction value in tokens (Fig. 7(b)/8(b) x-axis).
    pub mean_tx_tokens: f64,
    /// Aggregate transaction arrival rate (tx/sec).
    pub arrivals_per_sec: f64,
    /// Fraction of transactions drawn from the Zipf-skewed *hotspot*
    /// traffic model (0 = off, the default; see
    /// [`crate::TxWorkload::hotspot_fraction`]).
    pub hotspot_fraction: f64,
    /// Zipf exponent of the hotspot endpoint choice (only read when
    /// `hotspot_fraction > 0`).
    pub hotspot_skew: f64,
    /// Dynamic-world timeline (rate shifts, hub outages, channel churn,
    /// rebalances); empty = the classic static world.
    pub timeline: TimelineSpec,
    /// Adversarial fault spec (griefers, circular demand, channel
    /// faults, rogue hubs); empty = every agent honest, the default.
    pub adversary: AdversarySpec,
    /// Engine shard count: 1 (the default) runs the plain single engine,
    /// `k > 1` runs `k` partitioned event loops merged deterministically
    /// ([`pcn_routing::ShardedEngine`]) — bit-identical results either
    /// way, this knob only trades cores for wall clock.
    pub shards: u32,
    /// Root seed.
    pub seed: u64,
}

impl ScenarioParams {
    /// The paper's small-scale setting (100 nodes).
    pub fn small() -> ScenarioParams {
        ScenarioParams {
            nodes: 100,
            degree: 8,
            beta: 0.3,
            candidate_count: 10,
            duration: SimDuration::from_secs(60),
            channel_scale: 1.0,
            mean_tx_tokens: 12.0,
            arrivals_per_sec: 25.0,
            hotspot_fraction: 0.0,
            hotspot_skew: 1.2,
            timeline: TimelineSpec::default(),
            adversary: AdversarySpec::default(),
            shards: 1,
            seed: 1,
        }
    }

    /// The paper's large-scale setting (3000 nodes).
    pub fn large() -> ScenarioParams {
        ScenarioParams {
            nodes: 3000,
            degree: 8,
            beta: 0.3,
            candidate_count: 40,
            duration: SimDuration::from_secs(60),
            channel_scale: 1.0,
            mean_tx_tokens: 12.0,
            arrivals_per_sec: 120.0,
            hotspot_fraction: 0.0,
            hotspot_skew: 1.2,
            timeline: TimelineSpec::default(),
            adversary: AdversarySpec::default(),
            shards: 1,
            seed: 1,
        }
    }

    /// A miniature setting for unit/integration tests (fast in debug).
    pub fn tiny() -> ScenarioParams {
        ScenarioParams {
            nodes: 24,
            degree: 4,
            beta: 0.3,
            candidate_count: 4,
            duration: SimDuration::from_secs(10),
            channel_scale: 1.0,
            mean_tx_tokens: 8.0,
            arrivals_per_sec: 6.0,
            hotspot_fraction: 0.0,
            hotspot_skew: 1.2,
            timeline: TimelineSpec::default(),
            adversary: AdversarySpec::default(),
            shards: 1,
            seed: 1,
        }
    }
}

/// A fully materialized world: flat topology, candidate/client split, and
/// the payment trace every scheme replays.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The parameters that built this scenario.
    pub params: ScenarioParams,
    /// Flat (pre-rewiring) topology used by source-routing schemes.
    pub flat: PcnTopology,
    /// Client nodes (senders/recipients).
    pub clients: Vec<NodeId>,
    /// Candidate smooth nodes (VSNC) — the best-connected nodes, as the
    /// multiwinner vote of §III-B would elect.
    pub candidates: Vec<NodeId>,
    /// The payment trace (sorted by arrival).
    pub payments: Vec<Payment>,
    /// The funds sampler (for rewirings that must stay comparable).
    pub sampler: ChannelFunds,
    /// Materialized world-event timeline (sorted by time; empty for
    /// static scenarios). Every scheme of this scenario replays the
    /// same event list — the engine resolves selectors against its own
    /// topology view.
    pub timeline: Vec<WorldEvent>,
    /// Materialized fault plan (empty for honest scenarios). Like the
    /// timeline, every scheme of this scenario installs the same plan —
    /// per-scheme resolution (rogue-hub ranks) happens inside the
    /// engine.
    pub faults: FaultPlan,
}

impl Scenario {
    /// Builds the world from parameters. Deterministic per seed.
    pub fn build(params: ScenarioParams) -> Scenario {
        let rng = SimRng::seed(params.seed);
        let sampler = ChannelFunds::lightning().scaled(params.channel_scale);
        let flat = PcnTopology::small_world(
            params.nodes,
            params.degree,
            params.beta,
            &sampler,
            &mut rng.fork("topology"),
        );
        // Candidates: the highest-degree nodes (ties by id) — a structural
        // stand-in for the excellence criterion of the multiwinner vote.
        let mut by_degree: Vec<NodeId> = flat.graph.nodes().collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(flat.graph.degree(v)), v));
        let candidates: Vec<NodeId> = by_degree
            .iter()
            .copied()
            .take(params.candidate_count)
            .collect();
        let clients: Vec<NodeId> = flat
            .graph
            .nodes()
            .filter(|v| !candidates.contains(v))
            .collect();
        let mut workload = TxWorkload::new(clients.clone());
        workload.mean_value_tokens = params.mean_tx_tokens;
        workload.arrivals_per_sec = params.arrivals_per_sec;
        workload.hotspot_fraction = params.hotspot_fraction;
        workload.hotspot_skew = params.hotspot_skew;
        // Rate shifts phase the arrival gaps; the trace embeds them so
        // every scheme replays identical phased traffic.
        workload.rate_phases = params.timeline.rate_shifts.clone();
        let mut payments = workload.generate(params.duration, &mut rng.fork("workload"));
        // The timeline draws from its own fork: a churnless spec leaves
        // every other stream — and therefore the whole trace — untouched.
        let timeline =
            params
                .timeline
                .materialize(params.duration, &sampler, &mut rng.fork("timeline"));
        // Likewise the adversary: an empty spec draws nothing, appends
        // nothing, and materializes the empty plan the engine refuses to
        // install — honest scenarios stay byte-identical.
        let faults = params.adversary.materialize(
            &clients,
            &mut payments,
            params.duration,
            params.mean_tx_tokens,
            workload.timeout,
            &mut rng.fork("adversary"),
        );
        Scenario {
            params,
            flat,
            clients,
            candidates,
            payments,
            sampler,
            timeline,
            faults,
        }
    }

    /// Total generated value (for normalization checks).
    pub fn generated_value(&self) -> pcn_types::Amount {
        self.payments.iter().map(|p| p.value).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scenario_builds() {
        let s = Scenario::build(ScenarioParams::tiny());
        assert_eq!(s.flat.graph.node_count(), 24);
        assert_eq!(s.candidates.len(), 4);
        assert_eq!(s.clients.len(), 20);
        assert!(!s.payments.is_empty());
        // Candidates are disjoint from clients.
        for c in &s.candidates {
            assert!(!s.clients.contains(c));
        }
        // All payment endpoints are clients.
        for p in &s.payments {
            assert!(s.clients.contains(&p.source));
            assert!(s.clients.contains(&p.dest));
        }
    }

    #[test]
    fn candidates_are_high_degree() {
        let s = Scenario::build(ScenarioParams::tiny());
        let min_candidate_degree = s
            .candidates
            .iter()
            .map(|&c| s.flat.graph.degree(c))
            .min()
            .unwrap();
        let max_client_degree = s
            .clients
            .iter()
            .map(|&c| s.flat.graph.degree(c))
            .max()
            .unwrap();
        assert!(min_candidate_degree >= max_client_degree.saturating_sub(1));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Scenario::build(ScenarioParams::tiny());
        let b = Scenario::build(ScenarioParams::tiny());
        assert_eq!(a.payments.len(), b.payments.len());
        assert_eq!(a.generated_value(), b.generated_value());
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn adversarial_scenario_extends_the_honest_trace_without_perturbing_it() {
        let honest = Scenario::build(ScenarioParams::tiny());
        assert!(honest.faults.is_empty());
        let mut params = ScenarioParams::tiny();
        params.adversary = crate::adversary::AdversaryBuilder::default()
            .griefers(0.1, 5_000)
            .circular_demand(4, 1.0)
            .build();
        let adv = Scenario::build(params);
        assert!(!adv.faults.is_empty());
        assert!(!adv.faults.griefer_txs.is_empty());
        assert!(!adv.faults.ring_txs.is_empty());
        // The adversary draws only from its own fork and appends ids past
        // the honest numbering: the honest sub-trace is byte-identical.
        let honest_in_adv: Vec<_> = adv
            .payments
            .iter()
            .filter(|p| p.id.index() < honest.payments.len())
            .cloned()
            .collect();
        assert_eq!(honest_in_adv, honest.payments);
        // The merged trace keeps the engine's preconditions.
        assert!(adv
            .payments
            .windows(2)
            .all(|w| w[0].created <= w[1].created));
        assert!(adv
            .payments
            .iter()
            .all(|p| p.id.index() < adv.payments.len()));
        // Ring endpoints are clients, like everything else.
        for p in adv.payments.iter().filter(|p| adv.faults.is_ring(p.id)) {
            assert!(adv.clients.contains(&p.source));
            assert!(adv.clients.contains(&p.dest));
        }
    }

    #[test]
    fn small_preset_matches_paper_scale() {
        let p = ScenarioParams::small();
        assert_eq!(p.nodes, 100);
        let p = ScenarioParams::large();
        assert_eq!(p.nodes, 3000);
    }
}
