//! The adversary DSL: pure-data descriptions of who attacks the run and
//! how.
//!
//! An [`AdversarySpec`] rides inside `ScenarioParams` exactly like the
//! timeline: it is compared, cloned and hashed into grid cells as plain
//! data, and two identical specs always materialize identical attacks.
//! Materialization ([`AdversarySpec::materialize`]) resolves the spec
//! against the built world — which clients grief, which payments form
//! the circular-demand ring — into the engine-facing
//! [`pcn_routing::FaultPlan`], drawing only from the
//! dedicated `"adversary"` RNG fork:
//!
//! * **Griefers** — a shuffled `fraction` of the clients turn griefer;
//!   every payment they source acquires hop locks normally and then
//!   stalls for `hold_ms`, pinning liquidity until the deadline →
//!   abort → refund lifecycle reclaims it.
//! * **Circular demand** — `ring_len` shuffled clients send value one
//!   direction around a ring at `rate` payments/sec, the Fig. 1
//!   deadlock mechanism scaled up. The ring payments are *appended to
//!   the honest trace* (dense ids, merge-sorted by arrival) so they
//!   route like any other payment; the attack is the demand pattern.
//! * **Channel faults** and **rogue hubs** pass through as plan knobs —
//!   their per-event decisions are pure hashes inside the engine.
//!
//! An empty spec draws no randomness and materializes the empty plan,
//! which the engine refuses to install: honest runs stay byte-identical
//! to a world without the fault layer.
//!
//! Build one through [`AdversaryBuilder`], usually via
//! `ScenarioBuilder::adversary`:
//!
//! ```
//! use pcn_workload::ScenarioBuilder;
//!
//! let spec = ScenarioBuilder::tiny()
//!     .adversary(|a| {
//!         a.griefers(0.1, 5_000)
//!             .circular_demand(4, 2.0)
//!             .drop(0.2, 0.5)
//!     })
//!     .expect_value_conserved()
//!     .build();
//! assert_eq!(spec.params.adversary.ring_len, 4);
//! let world = spec.scenario();
//! assert!(!world.faults.is_empty());
//! ```

use pcn_routing::fault::{FaultPlan, RogueBehavior};
use pcn_routing::tu::Payment;
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, SimDuration, SimTime, TxId};

/// Pure-data adversary description; a field of `ScenarioParams`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdversarySpec {
    /// Fraction of clients that turn griefer (0 = none, the default).
    pub griefer_fraction: f64,
    /// How long a griefed lock is held, in milliseconds (typically past
    /// the transaction timeout).
    pub griefer_hold_ms: u64,
    /// Circular-demand ring length in clients (0 = no ring).
    pub ring_len: usize,
    /// Ring circulation rate in payments/sec around the whole ring.
    pub ring_rate: f64,
    /// Value of each ring payment, in tokens (0 = the scenario's mean
    /// transaction value).
    pub ring_value_tokens: f64,
    /// Fraction of channels that drop-fault.
    pub drop_channel_frac: f64,
    /// Per-forward drop probability on a drop-faulty channel.
    pub drop_prob: f64,
    /// Fraction of channels that delay-fault.
    pub delay_channel_frac: f64,
    /// Maximum extra forwarding delay on a delay-faulty channel (ms).
    pub delay_jitter_ms: u64,
    /// Rogue hubs as `(rank, behavior)`; ranks resolve against each
    /// scheme's hub set like `HubOutageSpec::hub_rank`.
    pub rogue_hubs: Vec<(usize, RogueBehavior)>,
}

impl AdversarySpec {
    /// Whether the spec describes no attack at all.
    pub fn is_empty(&self) -> bool {
        self.griefer_fraction <= 0.0
            && (self.ring_len == 0 || self.ring_rate <= 0.0)
            && (self.drop_channel_frac <= 0.0 || self.drop_prob <= 0.0)
            && (self.delay_channel_frac <= 0.0 || self.delay_jitter_ms == 0)
            && self.rogue_hubs.is_empty()
    }

    /// Resolves the spec against the built world into the engine's
    /// [`FaultPlan`], appending the circular-demand ring payments to the
    /// honest trace (dense ids continuing the honest numbering,
    /// merge-sorted by arrival). Deterministic per `rng` seed; an empty
    /// spec draws no randomness and leaves `payments` untouched.
    pub fn materialize(
        &self,
        clients: &[NodeId],
        payments: &mut Vec<Payment>,
        duration: SimDuration,
        mean_tx_tokens: f64,
        timeout: SimDuration,
        rng: &mut SimRng,
    ) -> FaultPlan {
        if self.is_empty() {
            return FaultPlan::default();
        }
        let salt = rng.next_u64();
        // Griefer clients: a shuffled prefix of the client list. Every
        // payment the honest generator happened to source at one of them
        // becomes a griefer payment.
        let mut griefer_txs: Vec<TxId> = Vec::new();
        if self.griefer_fraction > 0.0 {
            let mut pool = clients.to_vec();
            rng.shuffle(&mut pool);
            let count = ((clients.len() as f64) * self.griefer_fraction).ceil() as usize;
            let mut griefers = pool[..count.min(pool.len())].to_vec();
            griefers.sort_unstable();
            griefer_txs = payments
                .iter()
                .filter(|p| griefers.binary_search(&p.source).is_ok())
                .map(|p| p.id)
                .collect();
            griefer_txs.sort_unstable();
        }
        // The circular-demand ring: extra payments circling ring_len
        // shuffled clients one direction at a uniform cadence.
        let mut ring_txs: Vec<TxId> = Vec::new();
        if self.ring_len >= 2 && self.ring_rate > 0.0 {
            let mut pool = clients.to_vec();
            rng.shuffle(&mut pool);
            let ring: Vec<NodeId> = pool.into_iter().take(self.ring_len).collect();
            assert!(
                ring.len() >= 2,
                "circular demand needs at least two clients"
            );
            let tokens = if self.ring_value_tokens > 0.0 {
                self.ring_value_tokens
            } else {
                mean_tx_tokens
            };
            let value = Amount::from_tokens_f64(tokens);
            let gap = SimDuration::from_secs_f64(1.0 / self.ring_rate);
            let end = SimTime::ZERO + duration;
            let mut next_id = payments.len() as u64;
            let mut now = SimTime::ZERO + gap;
            let mut k = 0usize;
            while now <= end {
                let source = ring[k % ring.len()];
                let dest = ring[(k + 1) % ring.len()];
                ring_txs.push(TxId::new(next_id));
                payments.push(Payment {
                    id: TxId::new(next_id),
                    source,
                    dest,
                    value,
                    created: now,
                    deadline: now + timeout,
                });
                next_id += 1;
                k += 1;
                now += gap;
            }
            // Merge the ring into arrival order; the stable sort keeps
            // same-instant honest payments ahead of ring traffic.
            payments.sort_by_key(|p| p.created);
        }
        FaultPlan {
            salt,
            griefer_txs,
            griefer_hold: SimDuration::from_millis(self.griefer_hold_ms),
            ring_txs,
            drop_channel_frac: self.drop_channel_frac,
            drop_prob: self.drop_prob,
            delay_channel_frac: self.delay_channel_frac,
            delay_jitter: SimDuration::from_millis(self.delay_jitter_ms),
            rogue_hubs: self.rogue_hubs.clone(),
        }
    }
}

/// Chainable builder over [`AdversarySpec`]; see the module example.
#[derive(Clone, Debug, Default)]
pub struct AdversaryBuilder {
    spec: AdversarySpec,
}

impl AdversaryBuilder {
    /// Starts from an existing spec (what `ScenarioBuilder::adversary`
    /// passes in, so repeated calls accumulate).
    pub fn from_spec(spec: AdversarySpec) -> AdversaryBuilder {
        AdversaryBuilder { spec }
    }

    /// A `fraction` of the clients turn griefer: their payments acquire
    /// hop locks normally, then stall for `hold_ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is not within `[0, 1]`.
    pub fn griefers(mut self, fraction: f64, hold_ms: u64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "griefer fraction must be in [0, 1]"
        );
        self.spec.griefer_fraction = fraction;
        self.spec.griefer_hold_ms = hold_ms;
        self
    }

    /// `ring_len` clients circulate value one direction at `rate`
    /// payments/sec — the deadlock probe.
    ///
    /// # Panics
    ///
    /// Panics when `ring_len` is 1 or `rate` is negative or not finite.
    pub fn circular_demand(mut self, ring_len: usize, rate: f64) -> Self {
        assert!(ring_len != 1, "a ring of one client cannot circulate");
        assert!(
            rate.is_finite() && rate >= 0.0,
            "ring rate must be non-negative"
        );
        self.spec.ring_len = ring_len;
        self.spec.ring_rate = rate;
        self
    }

    /// Overrides the per-payment ring value (defaults to the scenario's
    /// mean transaction value).
    ///
    /// # Panics
    ///
    /// Panics when `tokens` is negative or not finite.
    pub fn ring_value(mut self, tokens: f64) -> Self {
        assert!(
            tokens.is_finite() && tokens >= 0.0,
            "ring value must be non-negative"
        );
        self.spec.ring_value_tokens = tokens;
        self
    }

    /// A hash-selected `channel_frac` of the channels drops each forward
    /// with probability `prob`.
    ///
    /// # Panics
    ///
    /// Panics when either argument is not within `[0, 1]`.
    pub fn drop(mut self, channel_frac: f64, prob: f64) -> Self {
        assert!(
            channel_frac.is_finite() && (0.0..=1.0).contains(&channel_frac),
            "drop channel fraction must be in [0, 1]"
        );
        assert!(
            prob.is_finite() && (0.0..=1.0).contains(&prob),
            "drop probability must be in [0, 1]"
        );
        self.spec.drop_channel_frac = channel_frac;
        self.spec.drop_prob = prob;
        self
    }

    /// A hash-selected `channel_frac` of the channels delays each
    /// forward by a hash fraction of `jitter_ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics when `channel_frac` is not within `[0, 1]`.
    pub fn delay(mut self, channel_frac: f64, jitter_ms: u64) -> Self {
        assert!(
            channel_frac.is_finite() && (0.0..=1.0).contains(&channel_frac),
            "delay channel fraction must be in [0, 1]"
        );
        self.spec.delay_channel_frac = channel_frac;
        self.spec.delay_jitter_ms = jitter_ms;
        self
    }

    /// The `rank`-th hub of each scheme's hub set goes rogue with the
    /// given behavior (flat schemes have no hubs and ignore this).
    pub fn rogue_hub(mut self, rank: usize, behavior: RogueBehavior) -> Self {
        self.spec.rogue_hubs.push((rank, behavior));
        self
    }

    /// Finishes the chain into the pure-data spec.
    pub fn build(self) -> AdversarySpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clients(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    fn honest_trace(n: u64) -> Vec<Payment> {
        (0..n)
            .map(|i| {
                let created = SimTime::ZERO + SimDuration::from_millis(100 * i);
                Payment {
                    id: TxId::new(i),
                    source: NodeId::new((i % 8) as u32),
                    dest: NodeId::new(((i + 1) % 8) as u32),
                    value: Amount::from_tokens(5),
                    created,
                    deadline: created + SimDuration::from_secs(3),
                }
            })
            .collect()
    }

    #[test]
    fn empty_spec_materializes_nothing_and_draws_no_randomness() {
        let spec = AdversarySpec::default();
        assert!(spec.is_empty());
        let mut payments = honest_trace(10);
        let before = payments.clone();
        let mut rng = SimRng::seed(1);
        let plan = spec.materialize(
            &clients(8),
            &mut payments,
            SimDuration::from_secs(10),
            8.0,
            SimDuration::from_secs(3),
            &mut rng,
        );
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::default());
        assert_eq!(payments, before, "empty specs must not touch the trace");
        assert_eq!(
            rng.next_u64(),
            SimRng::seed(1).next_u64(),
            "materializing an empty adversary must not consume randomness"
        );
    }

    #[test]
    fn griefers_claim_a_proportional_slice_of_the_trace() {
        let spec = AdversaryBuilder::default().griefers(0.25, 5_000).build();
        let mut payments = honest_trace(64);
        let plan = spec.materialize(
            &clients(8),
            &mut payments,
            SimDuration::from_secs(10),
            8.0,
            SimDuration::from_secs(3),
            &mut SimRng::seed(2),
        );
        // 8 clients at 0.25 → 2 griefers; the round-robin trace sources
        // each client equally, so a quarter of the payments grief.
        assert_eq!(plan.griefer_txs.len(), 64 / 4);
        assert_eq!(plan.griefer_hold, SimDuration::from_secs(5));
        assert!(plan.griefer_txs.windows(2).all(|w| w[0] < w[1]));
        assert!(plan.ring_txs.is_empty());
        assert_eq!(payments.len(), 64, "griefing adds no payments");
    }

    #[test]
    fn circular_demand_appends_a_dense_sorted_ring() {
        let spec = AdversaryBuilder::default().circular_demand(4, 2.0).build();
        let mut payments = honest_trace(20);
        let plan = spec.materialize(
            &clients(8),
            &mut payments,
            SimDuration::from_secs(10),
            8.0,
            SimDuration::from_secs(3),
            &mut SimRng::seed(3),
        );
        // 2/sec over 10 s → 20 ring payments with ids 20..40.
        assert_eq!(plan.ring_txs.len(), 20);
        assert_eq!(payments.len(), 40);
        assert!(plan.ring_txs.iter().all(|tx| tx.index() >= 20));
        // Dense ids and sorted arrivals — the engine's preconditions.
        assert!(payments.iter().all(|p| p.id.index() < payments.len()));
        assert!(payments.windows(2).all(|w| w[0].created <= w[1].created));
        // The ring circulates one direction: every ring client sends to
        // exactly one successor.
        let mut next: std::collections::BTreeMap<NodeId, NodeId> = Default::default();
        for p in payments.iter().filter(|p| plan.is_ring(p.id)) {
            let prior = next.insert(p.source, p.dest);
            assert!(
                prior.is_none_or(|d| d == p.dest),
                "one successor per client"
            );
        }
        assert_eq!(next.len(), 4, "all four ring clients send");
    }

    #[test]
    fn materialization_is_deterministic_per_seed() {
        let spec = AdversaryBuilder::default()
            .griefers(0.3, 4_000)
            .circular_demand(3, 1.0)
            .drop(0.2, 0.5)
            .delay(0.2, 80)
            .rogue_hub(0, RogueBehavior::Stall)
            .build();
        let run = |seed: u64| {
            let mut payments = honest_trace(32);
            let plan = spec.materialize(
                &clients(12),
                &mut payments,
                SimDuration::from_secs(8),
                8.0,
                SimDuration::from_secs(3),
                &mut SimRng::seed(seed),
            );
            (plan, payments)
        };
        assert_eq!(run(7), run(7));
        let (a, _) = run(7);
        let (b, _) = run(8);
        assert_ne!(a, b, "distinct seeds must pick distinct victims");
    }

    #[test]
    fn spec_knobs_reach_the_plan() {
        let spec = AdversaryBuilder::default()
            .drop(0.2, 0.5)
            .delay(0.3, 120)
            .rogue_hub(1, RogueBehavior::Misorder)
            .build();
        let mut payments = honest_trace(4);
        let plan = spec.materialize(
            &clients(4),
            &mut payments,
            SimDuration::from_secs(1),
            8.0,
            SimDuration::from_secs(3),
            &mut SimRng::seed(4),
        );
        assert_eq!(plan.drop_channel_frac, 0.2);
        assert_eq!(plan.drop_prob, 0.5);
        assert_eq!(plan.delay_channel_frac, 0.3);
        assert_eq!(plan.delay_jitter, SimDuration::from_millis(120));
        assert_eq!(plan.rogue_hubs, vec![(1, RogueBehavior::Misorder)]);
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "griefer fraction")]
    fn out_of_range_griefer_fraction_rejected() {
        let _ = AdversaryBuilder::default().griefers(1.5, 1000);
    }

    #[test]
    #[should_panic(expected = "ring of one")]
    fn single_client_ring_rejected() {
        let _ = AdversaryBuilder::default().circular_demand(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn out_of_range_drop_probability_rejected() {
        let _ = AdversaryBuilder::default().drop(0.5, 2.0);
    }
}
