//! Transaction workload generation.
//!
//! §V-A: "The directional distribution of each transaction is generated on
//! our processed Lightning Network real-world dataset, and the transaction
//! value is generated in the same credit card dataset adopted by Spider.
//! Notice that we have confirmed that these transactions are guaranteed to
//! cause some local deadlocks and contain large-value transactions that
//! the Lightning Network cannot handle."
//!
//! We synthesize the same properties: Poisson arrivals, log-normal values
//! with a heavy tail (plus occasional "large-value" outliers above typical
//! channel capacity), Zipf-skewed recipient popularity, and a configurable
//! fraction of *circulation* traffic — fixed one-directional sender→
//! receiver pairs that drain relay channels exactly like Fig. 1.

use pcn_routing::tu::Payment;
use pcn_sim::dist::{Exponential, LogNormal, Zipf};
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, SimDuration, SimTime, TxId};

/// Transaction generator parameters.
#[derive(Clone, Debug)]
pub struct TxWorkload {
    /// Clients that can send/receive.
    pub clients: Vec<NodeId>,
    /// Aggregate arrival rate (transactions/second across the network).
    pub arrivals_per_sec: f64,
    /// Mean transaction value in tokens (x-axis of Fig. 7(b)/8(b)).
    pub mean_value_tokens: f64,
    /// Transaction timeout (3 s in the paper).
    pub timeout: SimDuration,
    /// Fraction of transactions drawn from fixed circulation *cycles*
    /// (deadlock pressure). Traffic flows around each cycle with
    /// asymmetric per-edge rates — exactly the Fig. 1 motif: the
    /// circulation keeps endpoints refilled, but the rate imbalance drains
    /// relay channels under naive routing.
    pub circulation_fraction: f64,
    /// Number of circulation cycles (each of length 3).
    pub circulation_pairs: usize,
    /// Fraction of transactions that are "large-value" (5–20× the mean;
    /// the payments "the Lightning Network cannot handle").
    pub large_value_fraction: f64,
    /// Zipf exponent for recipient popularity.
    pub zipf_exponent: f64,
    /// Fraction of transactions drawn from *hotspot* traffic: both
    /// endpoints Zipf-skewed over the client list, concentrating load on
    /// a few popular nodes (flash-crowd / merchant-rush workloads). Zero
    /// disables the model and — deliberately — consumes no randomness, so
    /// existing traces are byte-identical.
    pub hotspot_fraction: f64,
    /// Zipf exponent of the hotspot endpoint choice (higher = more
    /// concentrated; only read when `hotspot_fraction > 0`).
    pub hotspot_skew: f64,
    /// Arrival-rate phase boundaries `(at_secs, factor)`: from each
    /// boundary on, arrival gaps shrink by `factor` (piecewise-constant
    /// phased traffic — flash crowds, overnight lulls). Applied in
    /// ascending time order whatever the list order; an empty list (the
    /// default) is exactly the classic constant-rate generator,
    /// consuming the identical random stream.
    pub rate_phases: Vec<(f64, f64)>,
}

impl TxWorkload {
    /// Paper-flavoured defaults for a client set.
    pub fn new(clients: Vec<NodeId>) -> TxWorkload {
        TxWorkload {
            clients,
            arrivals_per_sec: 20.0,
            mean_value_tokens: 12.0,
            timeout: pcn_types::constants::TX_TIMEOUT,
            circulation_fraction: 0.35,
            circulation_pairs: 6,
            large_value_fraction: 0.05,
            zipf_exponent: 0.9,
            hotspot_fraction: 0.0,
            hotspot_skew: 1.2,
            rate_phases: Vec::new(),
        }
    }

    /// Generates the payment list for `duration`, sorted by arrival time.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two clients are supplied.
    pub fn generate(&self, duration: SimDuration, rng: &mut SimRng) -> Vec<Payment> {
        assert!(self.clients.len() >= 2, "need at least two clients");
        let mut arrival_rng = rng.fork("tx-arrivals");
        let mut pair_rng = rng.fork("tx-pairs");
        let mut value_rng = rng.fork("tx-values");

        // Heavy-tailed values: log-normal with σ = 1.0 scaled to the mean.
        let sigma = 1.0f64;
        let mu = self.mean_value_tokens.ln() - sigma * sigma / 2.0;
        let value_dist = LogNormal::new(mu, sigma);
        let gap = Exponential::new(self.arrivals_per_sec);
        let zipf = Zipf::new(self.clients.len(), self.zipf_exponent);
        let hotspot = Zipf::new(self.clients.len(), self.hotspot_skew.max(0.0));

        // Fixed circulation cycles a→b→c→a with asymmetric edge rates
        // (weights 3:2:1, like Fig. 1's 1/2/2 tokens-per-second example):
        // endpoints are refilled by the cycle, but relays see persistent
        // directional imbalance.
        let cycles: Vec<[NodeId; 3]> = (0..self.circulation_pairs)
            .map(|_| {
                let mut trio = [NodeId::new(0); 3];
                trio[0] = self.clients[pair_rng.index(self.clients.len())];
                for i in 1..3 {
                    loop {
                        let c = self.clients[pair_rng.index(self.clients.len())];
                        if !trio[..i].contains(&c) {
                            trio[i] = c;
                            break;
                        }
                    }
                }
                trio
            })
            .collect();
        // Cumulative edge weights 3:2:1 over the three cycle edges.
        let edge_cdf = [0.5, 0.8333333333333333, 1.0];

        let mut payments = Vec::new();
        let mut now = SimTime::ZERO;
        let end = SimTime::ZERO + duration;
        let mut id = 0u64;
        // Piecewise-constant rate phases: the factor active at `now`
        // divides the sampled gap. With no phases the factor stays 1.0
        // (exact identity division), so classic traces are unchanged.
        // Boundaries are walked in ascending time order regardless of
        // how the caller listed them (the engine sorts its markers by
        // time too — the two views of the timeline must agree).
        let mut phases = self.rate_phases.clone();
        phases.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut phase = 0usize;
        let mut rate_factor = 1.0f64;
        loop {
            while phase < phases.len() && now.as_secs_f64() >= phases[phase].0 {
                rate_factor = phases[phase].1;
                phase += 1;
            }
            now += SimDuration::from_secs_f64(gap.sample(&mut arrival_rng) / rate_factor);
            if now > end {
                break;
            }
            let (source, dest) = if !cycles.is_empty() && pair_rng.chance(self.circulation_fraction)
            {
                let cycle = cycles[pair_rng.index(cycles.len())];
                let u = pair_rng.f64();
                let edge = edge_cdf.iter().position(|&c| u <= c).unwrap_or(2);
                (cycle[edge], cycle[(edge + 1) % 3])
            } else if self.hotspot_fraction > 0.0 && pair_rng.chance(self.hotspot_fraction) {
                // Hotspot traffic: both endpoints Zipf-skewed, so a few
                // popular clients dominate sends *and* receives. The
                // short-circuit keeps the zero-fraction path free of rng
                // draws (existing traces stay byte-identical).
                let source = self.clients[hotspot.sample(&mut pair_rng)];
                let mut dest = self.clients[hotspot.sample(&mut pair_rng)];
                while dest == source {
                    dest = self.clients[hotspot.sample(&mut pair_rng)];
                }
                (source, dest)
            } else {
                let source = self.clients[pair_rng.index(self.clients.len())];
                let mut dest = self.clients[zipf.sample(&mut pair_rng)];
                while dest == source {
                    dest = self.clients[zipf.sample(&mut pair_rng)];
                }
                (source, dest)
            };
            let tokens = if value_rng.chance(self.large_value_fraction) {
                self.mean_value_tokens * (5.0 + 15.0 * value_rng.f64())
            } else {
                value_dist.sample(&mut value_rng).max(0.1)
            };
            payments.push(Payment {
                id: TxId::new(id),
                source,
                dest,
                value: Amount::from_tokens_f64(tokens),
                created: now,
                deadline: now + self.timeout,
            });
            id += 1;
        }
        payments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clients(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn arrivals_sorted_and_rate_correct() {
        let w = TxWorkload::new(clients(20));
        let mut rng = SimRng::seed(1);
        let payments = w.generate(SimDuration::from_secs(100), &mut rng);
        assert!(payments.windows(2).all(|p| p[0].created <= p[1].created));
        // ~20/s over 100 s → ~2000 transactions.
        assert!(
            (payments.len() as f64 - 2000.0).abs() < 250.0,
            "{} arrivals",
            payments.len()
        );
        for p in &payments {
            assert_ne!(p.source, p.dest);
            assert!(p.value > Amount::ZERO);
            assert_eq!(p.deadline, p.created + w.timeout);
        }
    }

    #[test]
    fn mean_value_tracks_parameter() {
        let mut w = TxWorkload::new(clients(10));
        w.mean_value_tokens = 30.0;
        w.large_value_fraction = 0.0;
        w.circulation_fraction = 0.0;
        let mut rng = SimRng::seed(2);
        let payments = w.generate(SimDuration::from_secs(400), &mut rng);
        let mean = payments
            .iter()
            .map(|p| p.value.to_tokens_f64())
            .sum::<f64>()
            / payments.len() as f64;
        assert!((mean - 30.0).abs() / 30.0 < 0.15, "mean {mean}");
    }

    #[test]
    fn circulation_pairs_repeat() {
        let mut w = TxWorkload::new(clients(50));
        w.circulation_fraction = 1.0;
        w.circulation_pairs = 3;
        let mut rng = SimRng::seed(3);
        let payments = w.generate(SimDuration::from_secs(50), &mut rng);
        let mut pairs: Vec<(NodeId, NodeId)> =
            payments.iter().map(|p| (p.source, p.dest)).collect();
        pairs.sort();
        pairs.dedup();
        assert!(pairs.len() <= 9, "{} distinct pairs", pairs.len());
    }

    #[test]
    fn large_values_present() {
        let mut w = TxWorkload::new(clients(10));
        w.large_value_fraction = 0.2;
        let mut rng = SimRng::seed(4);
        let payments = w.generate(SimDuration::from_secs(100), &mut rng);
        let huge = payments
            .iter()
            .filter(|p| p.value.to_tokens_f64() > 5.0 * w.mean_value_tokens)
            .count();
        assert!(huge > payments.len() / 20, "{huge} large-value payments");
    }

    #[test]
    fn hotspot_concentrates_endpoints() {
        let make = |fraction: f64, skew: f64| {
            let mut w = TxWorkload::new(clients(40));
            w.circulation_fraction = 0.0;
            w.hotspot_fraction = fraction;
            w.hotspot_skew = skew;
            w.generate(SimDuration::from_secs(200), &mut SimRng::seed(11))
        };
        // Top-5 sender share: heavily skewed hotspot traffic must
        // concentrate far more than the uniform-source baseline.
        let share = |payments: &[Payment]| {
            let mut counts = std::collections::HashMap::new();
            for p in payments {
                *counts.entry(p.source).or_insert(0usize) += 1;
            }
            let mut by_count: Vec<usize> = counts.into_values().collect();
            by_count.sort_by_key(|&c| std::cmp::Reverse(c));
            by_count.iter().take(5).sum::<usize>() as f64 / payments.len() as f64
        };
        let uniform = share(&make(0.0, 1.2));
        let hot = share(&make(1.0, 1.5));
        assert!(
            hot > uniform + 0.2,
            "hotspot top-5 sender share {hot:.2} vs uniform {uniform:.2}"
        );
    }

    #[test]
    fn disabled_hotspot_leaves_trace_byte_identical() {
        // hotspot_fraction = 0 must not consume randomness: the trace is
        // identical to one generated before the knob existed, whatever
        // the skew is set to.
        let gen = |skew: f64| {
            let mut w = TxWorkload::new(clients(12));
            w.hotspot_skew = skew;
            w.generate(SimDuration::from_secs(30), &mut SimRng::seed(13))
        };
        let a = gen(1.2);
        let b = gen(9.0);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.source == y.source
            && x.dest == y.dest
            && x.value == y.value
            && x.created == y.created));
    }

    #[test]
    fn rate_phases_shape_arrivals_without_perturbing_endpoints() {
        let make = |phases: Vec<(f64, f64)>| {
            let mut w = TxWorkload::new(clients(20));
            w.rate_phases = phases;
            w.generate(SimDuration::from_secs(90), &mut SimRng::seed(21))
        };
        let flat = make(Vec::new());
        // 3× arrivals in [30, 60), back to 1× after.
        let phased = make(vec![(30.0, 3.0), (60.0, 1.0)]);
        let count_in = |ps: &[Payment], lo: f64, hi: f64| {
            ps.iter()
                .filter(|p| {
                    let s = p.created.as_secs_f64();
                    s >= lo && s < hi
                })
                .count() as f64
        };
        let flat_mid = count_in(&flat, 30.0, 60.0);
        let hot_mid = count_in(&phased, 30.0, 60.0);
        assert!(
            hot_mid > 2.0 * flat_mid,
            "3× phase must roughly triple mid-window arrivals ({hot_mid} vs {flat_mid})"
        );
        // Phasing redistributes time only: the endpoint/value streams
        // draw from independent forks, so the i-th payment's pair and
        // value are unchanged.
        for (a, b) in flat.iter().zip(&phased) {
            assert_eq!((a.source, a.dest, a.value), (b.source, b.dest, b.value));
        }
        // An explicit no-op phase list is byte-identical to none.
        let noop = make(vec![(0.0, 1.0)]);
        assert_eq!(flat.len(), noop.len());
        assert!(flat.iter().zip(&noop).all(|(x, y)| x.created == y.created));
        // Declaration order is irrelevant: boundaries apply by time, so
        // an out-of-order list shapes the identical trace (the engine's
        // time-sorted RateShift markers and the generator must agree).
        let sorted = make(vec![(30.0, 3.0), (60.0, 1.0)]);
        let shuffled = make(vec![(60.0, 1.0), (30.0, 3.0)]);
        assert_eq!(sorted.len(), shuffled.len());
        assert!(sorted
            .iter()
            .zip(&shuffled)
            .all(|(x, y)| x.created == y.created));
    }

    #[test]
    fn deterministic_per_seed() {
        let w = TxWorkload::new(clients(10));
        let a = w.generate(SimDuration::from_secs(10), &mut SimRng::seed(5));
        let b = w.generate(SimDuration::from_secs(10), &mut SimRng::seed(5));
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.source == y.source && x.value == y.value));
    }

    #[test]
    #[should_panic(expected = "at least two clients")]
    fn one_client_panics() {
        let w = TxWorkload::new(clients(1));
        w.generate(SimDuration::from_secs(1), &mut SimRng::seed(6));
    }
}
