//! PCN topologies: flat small-world graphs and hub rewirings.

use std::collections::BTreeMap;

use pcn_graph::{watts_strogatz, Graph};
use pcn_routing::channel::NetworkFunds;
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId};

use crate::funds::ChannelFunds;

/// A topology plus its channel funding.
#[derive(Clone, Debug)]
pub struct PcnTopology {
    /// The channel graph.
    pub graph: Graph,
    /// Channel funds.
    pub funds: NetworkFunds,
}

impl PcnTopology {
    /// Flat Watts–Strogatz PCN: `n` nodes, mean degree `k`, rewiring
    /// probability `beta`, per-side funds from `sampler`.
    pub fn small_world(
        n: usize,
        k: usize,
        beta: f64,
        sampler: &ChannelFunds,
        rng: &mut SimRng,
    ) -> PcnTopology {
        let graph = watts_strogatz(n, k, beta, rng.as_rand());
        let mut fund_rng = rng.fork("channel-funds");
        let funds = NetworkFunds::from_graph(&graph, |_, _| sampler.sample(&mut fund_rng));
        PcnTopology { graph, funds }
    }

    /// Splicer's multi-star rewiring (Fig. 2b): every client gets exactly
    /// one channel to its assigned hub; hubs are pairwise connected with
    /// well-capitalized channels (`hub_fund_factor` × a distribution
    /// sample, reflecting that "hubs perform many routes, have larger
    /// capital").
    ///
    /// Node ids are preserved from the flat topology, so the same payment
    /// workload replays unchanged.
    ///
    /// # Panics
    ///
    /// Panics if a client's assigned hub is not in `hubs`.
    pub fn multi_star(
        n: usize,
        hubs: &[NodeId],
        assignment: &BTreeMap<NodeId, NodeId>,
        sampler: &ChannelFunds,
        hub_fund_factor: f64,
        rng: &mut SimRng,
    ) -> PcnTopology {
        // Default: a complete hub backbone.
        let mut mesh = Vec::new();
        for (i, &a) in hubs.iter().enumerate() {
            for &b in hubs.iter().skip(i + 1) {
                mesh.push((a, b));
            }
        }
        PcnTopology::multi_star_with_mesh(n, hubs, &mesh, assignment, sampler, hub_fund_factor, rng)
    }

    /// Multi-star rewiring with an explicit hub backbone `mesh` (pairs of
    /// hubs to connect). Use when the hub backbone should inherit the flat
    /// topology's sparsity instead of being a clique — path selection
    /// between hubs only matters on a non-trivial backbone.
    ///
    /// # Panics
    ///
    /// Panics if a mesh edge references a node outside `hubs`, or a
    /// client's assigned hub is not in `hubs`.
    pub fn multi_star_with_mesh(
        n: usize,
        hubs: &[NodeId],
        mesh: &[(NodeId, NodeId)],
        assignment: &BTreeMap<NodeId, NodeId>,
        sampler: &ChannelFunds,
        hub_fund_factor: f64,
        rng: &mut SimRng,
    ) -> PcnTopology {
        let mut graph = Graph::new(n);
        let mut fund_rng = rng.fork("rewire-funds");
        let mut sides: Vec<(Amount, Amount)> = Vec::new();
        // Hub backbone.
        for &(a, b) in mesh {
            assert!(
                hubs.contains(&a) && hubs.contains(&b),
                "mesh edge references a non-hub"
            );
            graph.add_edge(a, b);
            let f_a = sampler.sample(&mut fund_rng).scale_f64(hub_fund_factor);
            let f_b = sampler.sample(&mut fund_rng).scale_f64(hub_fund_factor);
            sides.push((f_a, f_b));
        }
        // Client spokes. The hub side of a client channel is also
        // hub-capitalized (it routes many clients' traffic).
        // BTreeMap iterates in client order — the same order the old
        // sort-before-iterate produced, so channel ids are unchanged.
        for (&client, &hub) in assignment.iter() {
            assert!(hubs.contains(&hub), "assignment references unknown hub");
            graph.add_edge(client, hub);
            let f_client = sampler.sample(&mut fund_rng);
            let f_hub = sampler.sample(&mut fund_rng).scale_f64(hub_fund_factor);
            sides.push((f_client, f_hub));
        }
        let funds = NetworkFunds::from_graph(&graph, |ch, side| {
            let (a, _) = graph.endpoints(ch).expect("dense ids");
            let (f_a, f_b) = sides[ch.index()];
            if side == a {
                f_a
            } else {
                f_b
            }
        });
        PcnTopology { graph, funds }
    }

    /// A2L's single-hub star (Fig. 2a): every client connects to `hub`.
    pub fn single_star(
        n: usize,
        hub: NodeId,
        clients: &[NodeId],
        sampler: &ChannelFunds,
        hub_fund_factor: f64,
        rng: &mut SimRng,
    ) -> PcnTopology {
        let assignment: BTreeMap<NodeId, NodeId> = clients.iter().map(|&c| (c, hub)).collect();
        PcnTopology::multi_star(n, &[hub], &assignment, sampler, hub_fund_factor, rng)
    }

    /// Total liquidity in the network.
    pub fn total_liquidity(&self) -> Amount {
        self.funds.grand_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn small_world_topology_funded() {
        let mut rng = SimRng::seed(1);
        let sampler = ChannelFunds::lightning();
        let topo = PcnTopology::small_world(100, 8, 0.3, &sampler, &mut rng);
        assert_eq!(topo.graph.node_count(), 100);
        assert!(pcn_graph::is_connected(&topo.graph));
        assert_eq!(topo.funds.len(), topo.graph.edge_count());
        assert!(topo.total_liquidity() > Amount::from_tokens(10_000));
        // Funds differ per side (sampled independently).
        let ch = pcn_types::ChannelId::new(0);
        let (a, b) = topo.graph.endpoints(ch).unwrap();
        assert_ne!(topo.funds.balance(ch, a), topo.funds.balance(ch, b));
    }

    #[test]
    fn deterministic_per_seed() {
        let sampler = ChannelFunds::lightning();
        let t1 = PcnTopology::small_world(50, 4, 0.2, &sampler, &mut SimRng::seed(9));
        let t2 = PcnTopology::small_world(50, 4, 0.2, &sampler, &mut SimRng::seed(9));
        assert_eq!(t1.graph.edge_count(), t2.graph.edge_count());
        assert_eq!(t1.total_liquidity(), t2.total_liquidity());
    }

    #[test]
    fn multi_star_structure() {
        let hubs = vec![n(0), n(1)];
        let assignment: BTreeMap<NodeId, NodeId> =
            [(n(2), n(0)), (n(3), n(0)), (n(4), n(1)), (n(5), n(1))]
                .into_iter()
                .collect();
        let sampler = ChannelFunds::lightning();
        let mut rng = SimRng::seed(2);
        let topo = PcnTopology::multi_star(6, &hubs, &assignment, &sampler, 20.0, &mut rng);
        // 1 hub-hub channel + 4 spokes.
        assert_eq!(topo.graph.edge_count(), 5);
        // Clients have degree 1, hubs have degree 1 (mesh) + 2 clients.
        assert_eq!(topo.graph.degree(n(2)), 1);
        assert_eq!(topo.graph.degree(n(0)), 3);
        assert!(pcn_graph::is_connected(&topo.graph));
        // Hub sides are much richer than client sides on spokes.
        let spoke = topo.graph.edge_between(n(2), n(0)).unwrap();
        let client_side = topo.funds.balance(spoke, n(2));
        let hub_side = topo.funds.balance(spoke, n(0));
        assert!(hub_side > client_side, "{hub_side} vs {client_side}");
    }

    #[test]
    fn single_star_is_a2l_shape() {
        let sampler = ChannelFunds::lightning();
        let mut rng = SimRng::seed(3);
        let clients: Vec<NodeId> = (1..10).map(n).collect();
        let topo = PcnTopology::single_star(10, n(0), &clients, &sampler, 20.0, &mut rng);
        assert_eq!(topo.graph.edge_count(), 9);
        assert_eq!(topo.graph.degree(n(0)), 9);
    }

    #[test]
    #[should_panic(expected = "unknown hub")]
    fn bad_assignment_panics() {
        let sampler = ChannelFunds::lightning();
        let mut rng = SimRng::seed(4);
        let assignment: BTreeMap<NodeId, NodeId> = [(n(2), n(9))].into_iter().collect();
        let _ = PcnTopology::multi_star(10, &[n(0)], &assignment, &sampler, 10.0, &mut rng);
    }
}
