//! The timeline DSL: pure-data descriptions of how a world changes
//! mid-run.
//!
//! A [`TimelineSpec`] rides inside `ScenarioParams` the way every other
//! world knob does — it is compared, cloned and hashed into grid cells
//! as plain data, and two identical specs always materialize identical
//! event lists. Materialization ([`TimelineSpec::materialize`]) resolves
//! the spec into the engine-facing [`WorldEvent`]s:
//!
//! * **Rate shifts** stay declarative — the trace generator consumes
//!   them as phased arrival gaps — but still appear in the event list as
//!   markers so the engine's `world_events_applied` counter reflects the
//!   full timeline.
//! * **Churn** expands into one `ChannelClose` + `ChannelOpen` pair per
//!   `1 / churn_per_sec` seconds, with selectors and funding drawn from
//!   a dedicated RNG fork (`"timeline"`): the payment trace is
//!   byte-identical with churn on or off, and a zero churn rate draws no
//!   randomness at all.
//! * **Hub outages** and **rebalances** map one-to-one.
//!
//! Build one through [`TimelineBuilder`], usually via
//! `ScenarioBuilder::timeline`:
//!
//! ```
//! use pcn_workload::ScenarioBuilder;
//!
//! let spec = ScenarioBuilder::tiny()
//!     .timeline(|t| {
//!         t.rate_shift(2.0, 1.5)
//!             .hub_outage(3.0, 0, 6.0)
//!             .churn(0.5)
//!             .rebalance(5.0)
//!     })
//!     .build();
//! assert_eq!(spec.params.timeline.churn_per_sec, 0.5);
//! let world = spec.scenario();
//! assert!(!world.timeline.is_empty());
//! ```

use pcn_routing::world::{RebalancePolicy, WorldEvent};
use pcn_sim::SimRng;
use pcn_types::{SimDuration, SimTime};

use crate::funds::ChannelFunds;

/// One planned hub outage (ranks resolve against the run's hub set).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HubOutageSpec {
    /// Outage start, seconds from run start.
    pub at_secs: f64,
    /// Rank of the victim hub within the scheme's hub set.
    pub hub_rank: usize,
    /// Recovery time, seconds from run start.
    pub recover_secs: f64,
}

/// Pure-data timeline description; a field of `ScenarioParams`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimelineSpec {
    /// Arrival-rate phase boundaries `(at_secs, factor)`, applied in
    /// order by the trace generator.
    pub rate_shifts: Vec<(f64, f64)>,
    /// Planned hub outages.
    pub hub_outages: Vec<HubOutageSpec>,
    /// Channel churn rate: one close + open pair per `1 / rate` seconds
    /// (0 = no churn, the default).
    pub churn_per_sec: f64,
    /// Liquidity rebalances `(at_secs, policy)`.
    pub rebalances: Vec<(f64, RebalancePolicy)>,
}

impl TimelineSpec {
    /// Whether the timeline holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.rate_shifts.is_empty()
            && self.hub_outages.is_empty()
            && self.churn_per_sec == 0.0
            && self.rebalances.is_empty()
    }

    /// Resolves the spec into the sorted engine-facing event list.
    /// Deterministic per `rng` seed; draws no randomness when
    /// `churn_per_sec` is zero (the churnless path is rng-neutral).
    pub fn materialize(
        &self,
        duration: SimDuration,
        sampler: &ChannelFunds,
        rng: &mut SimRng,
    ) -> Vec<WorldEvent> {
        let at = |secs: f64| SimTime::ZERO + SimDuration::from_secs_f64(secs);
        let mut events: Vec<WorldEvent> = Vec::new();
        for &(secs, factor) in &self.rate_shifts {
            events.push(WorldEvent::RateShift {
                at: at(secs),
                factor,
            });
        }
        for outage in &self.hub_outages {
            events.push(WorldEvent::HubOutage {
                at: at(outage.at_secs),
                hub_rank: outage.hub_rank,
                recover_at: at(outage.recover_secs),
            });
        }
        for &(secs, policy) in &self.rebalances {
            events.push(WorldEvent::Rebalance {
                at: at(secs),
                policy,
            });
        }
        if self.churn_per_sec > 0.0 {
            let ticks = (duration.as_secs_f64() * self.churn_per_sec).floor() as u64;
            for k in 1..=ticks {
                let t = at(k as f64 / self.churn_per_sec);
                events.push(WorldEvent::ChannelClose {
                    at: t,
                    selector: rng.next_u64(),
                });
                events.push(WorldEvent::ChannelOpen {
                    at: t,
                    a_sel: rng.next_u64(),
                    b_sel: rng.next_u64(),
                    funds_per_side: sampler.sample(rng),
                });
            }
        }
        // Stable by time: same-instant events keep spec order (shifts,
        // outages, rebalances, then churn pairs).
        events.sort_by_key(WorldEvent::at);
        events
    }
}

/// Chainable builder over [`TimelineSpec`]; see the module example.
#[derive(Clone, Debug, Default)]
pub struct TimelineBuilder {
    spec: TimelineSpec,
}

impl TimelineBuilder {
    /// Starts from an existing spec (what `ScenarioBuilder::timeline`
    /// passes in, so repeated calls accumulate).
    pub fn from_spec(spec: TimelineSpec) -> TimelineBuilder {
        TimelineBuilder { spec }
    }

    /// From `at_secs` on, arrivals run at `factor ×` the base rate.
    /// Shifts may be declared in any order; they always apply in
    /// ascending time order.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not finite and positive, or `at_secs` is
    /// not finite and non-negative.
    pub fn rate_shift(mut self, at_secs: f64, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "rate factor must be positive"
        );
        assert!(
            at_secs.is_finite() && at_secs >= 0.0,
            "rate shift time must be non-negative"
        );
        self.spec.rate_shifts.push((at_secs, factor));
        self
    }

    /// The `hub_rank`-th hub goes dark over `[at_secs, recover_secs)`.
    ///
    /// # Panics
    ///
    /// Panics when `recover_secs < at_secs`.
    pub fn hub_outage(mut self, at_secs: f64, hub_rank: usize, recover_secs: f64) -> Self {
        assert!(recover_secs >= at_secs, "recovery precedes the outage");
        self.spec.hub_outages.push(HubOutageSpec {
            at_secs,
            hub_rank,
            recover_secs,
        });
        self
    }

    /// One channel close + open pair per `1 / per_sec` seconds.
    ///
    /// # Panics
    ///
    /// Panics when `per_sec` is negative or not finite.
    pub fn churn(mut self, per_sec: f64) -> Self {
        assert!(
            per_sec.is_finite() && per_sec >= 0.0,
            "churn rate must be non-negative"
        );
        self.spec.churn_per_sec = per_sec;
        self
    }

    /// Equalizing liquidity reset at `at_secs`.
    pub fn rebalance(self, at_secs: f64) -> Self {
        self.rebalance_with(at_secs, RebalancePolicy::Equalize)
    }

    /// Liquidity reset at `at_secs` with an explicit policy.
    pub fn rebalance_with(mut self, at_secs: f64, policy: RebalancePolicy) -> Self {
        self.spec.rebalances.push((at_secs, policy));
        self
    }

    /// Finishes the chain into the pure-data spec.
    pub fn build(self) -> TimelineSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> ChannelFunds {
        ChannelFunds::lightning()
    }

    #[test]
    fn empty_spec_materializes_nothing_and_draws_no_randomness() {
        let spec = TimelineSpec::default();
        assert!(spec.is_empty());
        let mut rng = SimRng::seed(1);
        let events = spec.materialize(SimDuration::from_secs(60), &sampler(), &mut rng);
        assert!(events.is_empty());
        assert_eq!(
            rng.next_u64(),
            SimRng::seed(1).next_u64(),
            "materializing an empty timeline must not consume randomness"
        );
    }

    #[test]
    fn events_sort_by_time_and_cover_all_kinds() {
        let spec = TimelineBuilder::default()
            .rate_shift(5.0, 2.0)
            .hub_outage(1.0, 0, 8.0)
            .churn(0.5)
            .rebalance(3.0)
            .build();
        let events = spec.materialize(SimDuration::from_secs(10), &sampler(), &mut SimRng::seed(2));
        // 1 shift + 1 outage + 1 rebalance + 5 churn pairs (t = 2,4,…,10).
        assert_eq!(events.len(), 13);
        assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));
        assert!(events
            .iter()
            .any(|e| matches!(e, WorldEvent::RateShift { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, WorldEvent::HubOutage { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, WorldEvent::Rebalance { .. })));
        let closes = events
            .iter()
            .filter(|e| matches!(e, WorldEvent::ChannelClose { .. }))
            .count();
        let opens = events
            .iter()
            .filter(|e| matches!(e, WorldEvent::ChannelOpen { .. }))
            .count();
        assert_eq!((closes, opens), (5, 5));
    }

    #[test]
    fn materialization_is_deterministic_per_seed() {
        let spec = TimelineBuilder::default().churn(1.0).build();
        let a = spec.materialize(SimDuration::from_secs(7), &sampler(), &mut SimRng::seed(9));
        let b = spec.materialize(SimDuration::from_secs(7), &sampler(), &mut SimRng::seed(9));
        assert_eq!(a, b);
        let c = spec.materialize(SimDuration::from_secs(7), &sampler(), &mut SimRng::seed(10));
        assert_ne!(a, c, "distinct seeds must draw distinct selectors");
    }

    #[test]
    #[should_panic(expected = "recovery precedes the outage")]
    fn outage_recovering_before_start_rejected() {
        let _ = TimelineBuilder::default().hub_outage(5.0, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate factor")]
    fn bad_rate_factor_rejected() {
        let _ = TimelineBuilder::default().rate_shift(1.0, 0.0);
    }
}
