//! Executing a single [`ScenarioSpec`]: scheme dispatch and expectation
//! checking.

use pcn_workload::{Scenario, ScenarioSpec, SchemeChoice};
use splicer_core::{RunReport, SystemBuilder};

/// Tunables applied on top of a spec when the grid sweeps dimensions the
/// spec itself does not carry (placement weight, hub funding, τ, the
/// path-cache toggle).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunTuning {
    /// Placement tradeoff weight ω (None = builder default).
    pub omega: Option<f64>,
    /// Hub capitalization multiplier (None = builder default).
    pub hub_fund_factor: Option<f64>,
    /// Price/probe update interval τ in milliseconds (None = default).
    pub update_interval_ms: Option<u64>,
    /// Epoch-versioned path-cache toggle (None = engine default, on).
    /// Semantics-preserving either way; used for cache A/B cells and the
    /// determinism regression.
    pub path_cache: Option<bool>,
    /// Calendar-queue event scheduler toggle (None = engine default, on;
    /// `Some(false)` pins the run to the reference binary heap).
    /// Semantics-preserving either way — both backends pop the identical
    /// event sequence; used for the determinism regression and scheduler
    /// A/B cells.
    pub calendar_queue: Option<bool>,
    /// Goal-directed planning toggle (None = engine default, on).
    /// Bidirectional + ALT landmark searches and batched hub-leg trees;
    /// semantics-preserving either way modulo the planner-observability
    /// counters (`RunStats::without_planner_counters`). Used for the
    /// determinism regression and planner A/B cells.
    pub goal_directed: Option<bool>,
    /// Engine shard count (None = follow the spec's `params.shards`).
    /// `Some(k)` forces the sharded engine with `k` partitioned event
    /// loops — including `Some(1)`, which exercises the sharded
    /// machinery itself. Semantics-preserving for any `k`: the merged
    /// run is bit-identical to the single engine (the determinism
    /// regression pins this), so this axis only trades cores for wall
    /// clock.
    pub shards: Option<u32>,
}

/// Scheme-level overrides (the paper's Table II and ablation rows tweak
/// routing choices). Applied to **any** scheme's cell — Splicer and
/// baselines alike — so a sweep can, say, give Spider an EDF queue or
/// force a baseline onto KSP paths.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SchemeTuning {
    /// Path-selection strategy override.
    pub path_select: Option<pcn_routing::paths::PathSelect>,
    /// Path count override.
    pub num_paths: Option<usize>,
    /// Queue discipline override.
    pub discipline: Option<pcn_routing::scheduler::Discipline>,
    /// Balance-view override (stale-knowledge ablation).
    pub balance_view: Option<pcn_routing::paths::BalanceView>,
    /// Rate-control toggle (eq. 26 off in the ablation).
    pub rate_control: Option<bool>,
    /// Congestion-control toggle (queues/windows off in the ablation).
    pub congestion_control: Option<bool>,
}

impl SchemeTuning {
    fn apply(&self, s: &mut pcn_routing::SchemeConfig) {
        if let Some(ps) = self.path_select {
            s.path_select = ps;
        }
        if let Some(k) = self.num_paths {
            s.num_paths = k;
        }
        if let Some(d) = self.discipline {
            s.discipline = d;
        }
        if let Some(v) = self.balance_view {
            s.balance_view = v;
        }
        if let Some(rc) = self.rate_control {
            s.rate_control = rc;
        }
        if let Some(cc) = self.congestion_control {
            s.congestion_control = cc;
        }
    }

    fn is_noop(&self) -> bool {
        *self == SchemeTuning::default()
    }
}

/// Outcome of one spec execution: the report plus expectation violations.
#[derive(Clone, Debug)]
pub struct SpecOutcome {
    /// The engine run report.
    pub report: RunReport,
    /// Human-readable expectation violations (empty = all met).
    pub violations: Vec<String>,
}

impl SpecOutcome {
    /// Whether every expectation held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs a spec with default tuning.
///
/// # Panics
///
/// Panics when the Splicer placement problem is infeasible for the
/// spec's world (a configuration error, not a runtime condition).
pub fn run_spec(spec: &ScenarioSpec) -> SpecOutcome {
    run_spec_tuned(spec, &RunTuning::default(), &SchemeTuning::default())
}

/// Runs a spec with explicit tuning.
///
/// # Panics
///
/// Panics when the Splicer placement problem is infeasible.
pub fn run_spec_tuned(
    spec: &ScenarioSpec,
    tuning: &RunTuning,
    scheme_tuning: &SchemeTuning,
) -> SpecOutcome {
    run_on_scenario(spec.scenario(), spec, tuning, scheme_tuning)
}

/// Runs a spec against an already-materialized world (the grid's entry
/// point — lets one `Scenario` build serve every scheme of a variant).
/// `scenario` must be the materialization of `spec.params`.
///
/// # Panics
///
/// Panics when the Splicer placement problem is infeasible.
pub fn run_on_scenario(
    scenario: Scenario,
    spec: &ScenarioSpec,
    tuning: &RunTuning,
    scheme_tuning: &SchemeTuning,
) -> SpecOutcome {
    debug_assert_eq!(scenario.params.seed, spec.params.seed);
    let mut builder = SystemBuilder::new(scenario);
    if let Some(omega) = tuning.omega {
        builder = builder.omega(omega);
    }
    if let Some(factor) = tuning.hub_fund_factor {
        builder = builder.hub_fund_factor(factor);
    }
    if let Some(tau_ms) = tuning.update_interval_ms {
        builder = builder.engine_config(pcn_routing::EngineConfig {
            update_interval: pcn_types::SimDuration::from_millis(tau_ms),
            ..Default::default()
        });
    }
    let mut prepared = match spec.scheme {
        SchemeChoice::Splicer => builder.build_splicer().expect("feasible placement"),
        SchemeChoice::Spider => builder.build_spider(),
        SchemeChoice::Flash => builder.build_flash(),
        SchemeChoice::Landmark => builder.build_landmark(),
        SchemeChoice::A2L => builder.build_a2l(),
        SchemeChoice::ShortestPath => builder.build_shortest_path(),
    };
    if !scheme_tuning.is_noop() {
        prepared.tune_scheme(|s| scheme_tuning.apply(s));
    }
    if let Some(cache) = tuning.path_cache {
        prepared.tune_engine(|cfg| cfg.use_path_cache = cache);
    }
    if let Some(calendar) = tuning.calendar_queue {
        prepared.tune_engine(|cfg| cfg.use_calendar_queue = calendar);
    }
    if let Some(goal) = tuning.goal_directed {
        prepared.tune_engine(|cfg| cfg.use_goal_directed = goal);
    }
    if let Some(k) = tuning.shards {
        prepared.set_shards(k);
    }
    let report = prepared.run();
    let violations = check_expectations(spec, &report);
    SpecOutcome { report, violations }
}

fn check_expectations(spec: &ScenarioSpec, report: &RunReport) -> Vec<String> {
    let mut violations = Vec::new();
    if spec.expect.no_deadlock {
        if report.stats.drained_directions_end > 0 {
            violations.push(format!(
                "expected no deadlock, but {} channel directions ended drained",
                report.stats.drained_directions_end
            ));
        }
        if report.stats.deadlocks_detected > 0 {
            violations.push(format!(
                "expected no deadlock, but the detector fired {} time(s)",
                report.stats.deadlocks_detected
            ));
        }
    }
    if let Some(min_tsr) = spec.expect.min_tsr {
        let tsr = report.stats.tsr();
        if tsr < min_tsr {
            violations.push(format!("expected TSR ≥ {min_tsr:.3}, got {tsr:.3}"));
        }
    }
    if spec.expect.value_conserved && report.stats.conservation_violations > 0 {
        violations.push(format!(
            "expected value conservation, but {} check(s) failed",
            report.stats.conservation_violations
        ));
    }
    if let Some(min_tsr) = spec.expect.honest_min_tsr {
        let tsr = report.stats.honest_tsr();
        if tsr < min_tsr {
            violations.push(format!("expected honest TSR ≥ {min_tsr:.3}, got {tsr:.3}"));
        }
    }
    if let Some(ms) = spec.expect.bounded_stall_ms {
        let stall_us = report.stats.max_stall_us;
        if stall_us > ms.saturating_mul(1_000) {
            violations.push(format!(
                "expected honest stalls bounded by {ms} ms, got {stall_us} µs"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_workload::ScenarioBuilder;

    #[test]
    fn runs_a_tiny_spider_spec() {
        let spec = ScenarioBuilder::tiny().scheme(SchemeChoice::Spider).build();
        let outcome = run_spec(&spec);
        assert_eq!(outcome.report.scheme, "Spider");
        assert!(outcome.report.stats.generated > 0);
    }

    #[test]
    fn expectation_violation_reported() {
        // A starved world with a min-TSR of 1.0 must report a violation.
        let spec = ScenarioBuilder::tiny()
            .overload(10.0)
            .scheme(SchemeChoice::ShortestPath)
            .expect_min_tsr(1.0)
            .build();
        let outcome = run_spec(&spec);
        assert!(!outcome.passed(), "overload cannot reach TSR 1.0");
    }

    #[test]
    fn tuning_overrides_tau() {
        let spec = ScenarioBuilder::tiny().scheme(SchemeChoice::Spider).build();
        let tuning = RunTuning {
            update_interval_ms: Some(400),
            ..RunTuning::default()
        };
        let outcome = run_spec_tuned(&spec, &tuning, &SchemeTuning::default());
        assert!(outcome.report.stats.generated > 0);
    }
}
