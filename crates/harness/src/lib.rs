//! The parallel scenario harness: the third layer of the experiment
//! stack.
//!
//! The stack separates *what a world looks like* from *what to run on
//! it* from *how to execute at scale*:
//!
//! 1. `pcn-workload` — the [`ScenarioBuilder`](pcn_workload::ScenarioBuilder)
//!    DSL produces pure-data [`ScenarioSpec`](pcn_workload::ScenarioSpec)s.
//! 2. `splicer-core` — `SystemBuilder` turns a materialized scenario into
//!    prepared scheme runs.
//! 3. this crate — [`run_spec`] executes one spec and checks its
//!    expectations; [`ExperimentGrid`] cartesian-expands parameter axes ×
//!    schemes into cells and fans them across worker threads.
//!
//! Every cell is described by pure data ([`CellSpec`]), so results are
//! independent of worker count and scheduling: a 4-worker grid run, a
//! serial run, and a standalone [`ExperimentGrid::run_cell`] all produce
//! bit-identical [`RunStats`](pcn_routing::RunStats) for the same cell.
//!
//! Cells carry the engine's path-cache counters
//! (`RunStats::path_cache`: hits/misses/evictions plus invalidations
//! split by cause — topology/funds/price/footprint) and the
//! dynamic-world counters (`world_events_applied`,
//! `tus_expired_by_close`), so cache effectiveness and timeline
//! activity are visible per grid cell; [`RunTuning::path_cache`]
//! toggles the cache for A/B cells (semantics-preserving either way),
//! [`SchemeTuning`] overrides routing choices on *any* scheme's cell,
//! baselines included, and [`ExperimentGrid::sweep_churn_rate`] sweeps
//! the dynamic-world churn axis across schemes.
//!
//! The adversarial axis rides the same machinery:
//! [`ExperimentGrid::sweep_adversary`] grows the griefer population per
//! variant ([`Overrides::griefer_fraction`]), cells surface
//! `faults_injected` / `griefed_locks` / `deadlocks_detected` /
//! [`honest_tsr`](pcn_routing::RunStats::honest_tsr) through their
//! stats, and the spec-level expectation knobs
//! (`expect_value_conserved`, `expect_honest_min_tsr`,
//! `expect_bounded_stall`, `expect_no_deadlock`) are checked on every
//! cell after the run.
//!
//! ```
//! use pcn_harness::ExperimentGrid;
//! use pcn_workload::{ScenarioParams, SchemeChoice};
//!
//! let grid = ExperimentGrid::new(ScenarioParams::tiny())
//!     .schemes([SchemeChoice::Spider])
//!     .sweep_channel_scale(&[1.0, 2.0]);
//! let results = grid.run(2);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.stats.generated > 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod run;

pub use grid::{derive_seed, CellResult, CellSpec, ExperimentGrid, Overrides, SeedPolicy, Variant};
pub use run::{run_spec, run_spec_tuned, RunTuning, SchemeTuning, SpecOutcome};
