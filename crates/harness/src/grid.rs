//! Experiment grids: cartesian parameter sweeps fanned across worker
//! threads.
//!
//! A grid is `variants × schemes`. Each cell is fully described by pure
//! data (a [`CellSpec`]), so any cell can be re-run standalone —
//! single-threaded — and reproduce its grid result bit for bit. Workers
//! pull cells from a shared index and write results into a slot vector,
//! so the result order is the cell order regardless of worker count or
//! scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use pcn_routing::RunStats;
use pcn_workload::{Expectations, Scenario, ScenarioParams, ScenarioSpec, SchemeChoice};

use crate::run::{run_on_scenario, RunTuning, SchemeTuning};

/// Parameter overrides one variant applies on top of the grid's base.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Overrides {
    /// Channel-size scale factor.
    pub channel_scale: Option<f64>,
    /// Mean transaction value (tokens).
    pub mean_tx_tokens: Option<f64>,
    /// Arrival rate (tx/sec).
    pub arrivals_per_sec: Option<f64>,
    /// Channel-churn rate (close + open pairs per second) applied to the
    /// world's timeline — the dynamic-world sweep axis.
    pub churn_per_sec: Option<f64>,
    /// Fraction of clients that grief (lock hops, never settle) — the
    /// adversarial sweep axis. Writes `params.adversary.griefer_fraction`;
    /// if the spec carries no hold time yet, a default 5 s hold (beyond
    /// the 3 s TU timeout, so every griefed lock times out) is installed.
    pub griefer_fraction: Option<f64>,
    /// Root seed override (pins a variant to a fixed world).
    pub seed: Option<u64>,
    /// Expectation override (replaces the grid-wide expectations).
    pub expect: Option<Expectations>,
    /// Engine/builder tuning (ω, hub funding, τ).
    pub tuning: RunTuning,
    /// Splicer scheme tweaks (Table II / ablation rows).
    pub scheme: SchemeTuning,
}

impl Overrides {
    fn apply(&self, params: &mut ScenarioParams) {
        if let Some(cs) = self.channel_scale {
            params.channel_scale = cs;
        }
        if let Some(mean) = self.mean_tx_tokens {
            params.mean_tx_tokens = mean;
        }
        if let Some(rate) = self.arrivals_per_sec {
            params.arrivals_per_sec = rate;
        }
        if let Some(churn) = self.churn_per_sec {
            params.timeline.churn_per_sec = churn;
        }
        if let Some(fraction) = self.griefer_fraction {
            params.adversary.griefer_fraction = fraction;
            if params.adversary.griefer_hold_ms == 0 {
                params.adversary.griefer_hold_ms = 5_000;
            }
        }
        if let Some(seed) = self.seed {
            params.seed = seed;
        }
    }
}

/// One sweep point: a label, a plot-ready x value, and its overrides.
#[derive(Clone, Debug)]
pub struct Variant {
    /// Row label ("channel scale 2.0", "− rate control", …).
    pub label: String,
    /// The swept x value (axis position in the figures).
    pub x: f64,
    /// Overrides this point applies.
    pub overrides: Overrides,
}

/// How per-cell seeds derive from the grid's root seed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SeedPolicy {
    /// Every cell uses the base parameters' seed unchanged — all schemes
    /// and sweep points replay comparable worlds (the figures' setting).
    #[default]
    Shared,
    /// Each variant derives an independent seed from the root via
    /// SplitMix64, so sweep points are statistically independent while
    /// any cell remains reproducible from (root seed, variant index).
    PerVariant,
}

/// Deterministic per-variant seed derivation (SplitMix64 finalizer).
pub fn derive_seed(root: u64, index: u64) -> u64 {
    let mut z = root
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fully-resolved grid cell: everything needed to run it standalone.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Position in the grid's result vector.
    pub index: usize,
    /// Which variant produced this cell.
    pub variant_index: usize,
    /// Variant label.
    pub label: String,
    /// Sweep x value.
    pub x: f64,
    /// The scenario spec (world parameters + scheme + expectations).
    pub spec: ScenarioSpec,
    /// The variant's world slot, shared by its scheme cells: the first
    /// cell to run materializes `spec.scenario()` once and siblings reuse
    /// it, so variants still build in parallel across workers.
    pub scenario: Arc<OnceLock<Scenario>>,
    /// Builder/engine tuning.
    pub tuning: RunTuning,
    /// Splicer scheme tweaks.
    pub scheme_tuning: SchemeTuning,
}

/// One measured grid cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Position in the grid (same as the cell's index).
    pub index: usize,
    /// Which variant produced this cell.
    pub variant_index: usize,
    /// Variant label.
    pub label: String,
    /// Sweep x value.
    pub x: f64,
    /// Scheme name.
    pub scheme: String,
    /// Engine statistics.
    pub stats: RunStats,
    /// Hubs placed (Splicer cells).
    pub placement_hubs: Option<usize>,
    /// Expectation violations (empty = met).
    pub violations: Vec<String>,
}

/// A cartesian experiment grid: base parameters × variants × schemes.
#[derive(Clone, Debug)]
pub struct ExperimentGrid {
    base: ScenarioParams,
    base_overrides: Overrides,
    schemes: Vec<SchemeChoice>,
    variants: Vec<Variant>,
    seed_policy: SeedPolicy,
    expectations: Expectations,
}

impl ExperimentGrid {
    /// Creates a grid over base parameters. Starts with the five compared
    /// schemes and no variants.
    pub fn new(base: ScenarioParams) -> ExperimentGrid {
        ExperimentGrid {
            base,
            base_overrides: Overrides::default(),
            schemes: SchemeChoice::COMPARED.to_vec(),
            variants: Vec::new(),
            seed_policy: SeedPolicy::Shared,
            expectations: Expectations::default(),
        }
    }

    /// Sets expectations checked on every cell (a variant's
    /// `Overrides::expect` replaces them for that variant).
    pub fn expectations(mut self, expect: Expectations) -> Self {
        self.expectations = expect;
        self
    }

    /// Replaces the scheme axis.
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = SchemeChoice>) -> Self {
        self.schemes = schemes.into_iter().collect();
        self
    }

    /// Sets overrides applied to every cell (before variant overrides).
    pub fn base_overrides(mut self, overrides: Overrides) -> Self {
        self.base_overrides = overrides;
        self
    }

    /// Selects the per-cell seed policy.
    pub fn seed_policy(mut self, policy: SeedPolicy) -> Self {
        self.seed_policy = policy;
        self
    }

    /// Adds one explicit variant.
    pub fn variant(mut self, label: impl Into<String>, x: f64, overrides: Overrides) -> Self {
        self.variants.push(Variant {
            label: label.into(),
            x,
            overrides,
        });
        self
    }

    /// Adds a channel-scale sweep axis (Fig. 7(a)/8(a)).
    pub fn sweep_channel_scale(mut self, values: &[f64]) -> Self {
        for &v in values {
            self = self.variant(
                format!("channel scale {v}"),
                v,
                Overrides {
                    channel_scale: Some(v),
                    ..Overrides::default()
                },
            );
        }
        self
    }

    /// Adds a mean-transaction-size sweep axis (Fig. 7(b)/8(b)).
    pub fn sweep_mean_tx(mut self, values: &[f64]) -> Self {
        for &v in values {
            self = self.variant(
                format!("mean tx {v}"),
                v,
                Overrides {
                    mean_tx_tokens: Some(v),
                    ..Overrides::default()
                },
            );
        }
        self
    }

    /// Adds a channel-churn sweep axis: each point runs every scheme
    /// under `v` close + open pairs per second (0 = the static world),
    /// the dynamic-world counterpart of the channel-scale sweep.
    pub fn sweep_churn_rate(mut self, values: &[f64]) -> Self {
        for &v in values {
            self = self.variant(
                format!("churn {v}/s"),
                v,
                Overrides {
                    churn_per_sec: Some(v),
                    ..Overrides::default()
                },
            );
        }
        self
    }

    /// Adds an adversarial sweep axis: each point runs every scheme with
    /// fraction `v` of the clients griefing (0 = the honest world). The
    /// interesting read-outs are [`RunStats::honest_tsr`] and
    /// `griefed_locks` per cell — how gracefully each scheme degrades as
    /// the griefer population grows.
    pub fn sweep_adversary(mut self, values: &[f64]) -> Self {
        for &v in values {
            self = self.variant(
                format!("griefers {v}"),
                v,
                Overrides {
                    griefer_fraction: Some(v),
                    ..Overrides::default()
                },
            );
        }
        self
    }

    /// Adds an update-interval (τ) sweep axis (Fig. 7(c,d)/8(c,d)).
    pub fn sweep_tau_ms(mut self, values: &[u64]) -> Self {
        for &v in values {
            self = self.variant(
                format!("tau {v}ms"),
                v as f64,
                Overrides {
                    tuning: RunTuning {
                        update_interval_ms: Some(v),
                        ..RunTuning::default()
                    },
                    ..Overrides::default()
                },
            );
        }
        self
    }

    /// Adds an engine-shard sweep axis: each point runs every scheme on
    /// `k` partitioned event loops (1 = the plain engine forced through
    /// the sharded machinery). Results are bit-identical across the
    /// axis — what varies is wall clock, surfaced per cell via
    /// [`RunStats::payments_per_sec`].
    pub fn sweep_shards(mut self, values: &[u32]) -> Self {
        for &k in values {
            self = self.variant(
                format!("shards {k}"),
                f64::from(k),
                Overrides {
                    tuning: RunTuning {
                        shards: Some(k),
                        ..RunTuning::default()
                    },
                    ..Overrides::default()
                },
            );
        }
        self
    }

    /// Adds a placement-weight (ω) sweep axis (Fig. 9).
    pub fn sweep_omega(mut self, values: &[f64]) -> Self {
        for &v in values {
            self = self.variant(
                format!("omega {v}"),
                v,
                Overrides {
                    tuning: RunTuning {
                        omega: Some(v),
                        ..RunTuning::default()
                    },
                    ..Overrides::default()
                },
            );
        }
        self
    }

    /// Number of cells this grid expands to.
    pub fn len(&self) -> usize {
        self.variants.len() * self.schemes.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into fully-resolved cell specs,
    /// in result order (variants outer, schemes inner).
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::with_capacity(self.len());
        for (vi, variant) in self.variants.iter().enumerate() {
            let mut params = self.base.clone();
            self.base_overrides.apply(&mut params);
            variant.overrides.apply(&mut params);
            if self.seed_policy == SeedPolicy::PerVariant && variant.overrides.seed.is_none() {
                params.seed = derive_seed(self.base.seed, vi as u64);
            }
            let tuning = merge_tuning(&self.base_overrides.tuning, &variant.overrides.tuning);
            let scheme_tuning =
                merge_scheme(&self.base_overrides.scheme, &variant.overrides.scheme);
            let expect = variant
                .overrides
                .expect
                .or(self.base_overrides.expect)
                .unwrap_or(self.expectations);
            // One world build serves every scheme of the variant — the
            // apples-to-apples comparison the figures rely on, without
            // regenerating topology and trace per scheme. The slot fills
            // lazily so distinct variants still build concurrently.
            let scenario = Arc::new(OnceLock::new());
            for &scheme in &self.schemes {
                out.push(CellSpec {
                    index: out.len(),
                    variant_index: vi,
                    label: variant.label.clone(),
                    x: variant.x,
                    spec: ScenarioSpec {
                        params: params.clone(),
                        scheme,
                        expect,
                    },
                    scenario: Arc::clone(&scenario),
                    tuning,
                    scheme_tuning,
                });
            }
        }
        out
    }

    /// Runs one cell standalone (bit-identical to its in-grid result).
    pub fn run_cell(cell: &CellSpec) -> CellResult {
        let scenario = cell
            .scenario
            .get_or_init(|| Scenario::build(cell.spec.params.clone()))
            .clone();
        let outcome = run_on_scenario(scenario, &cell.spec, &cell.tuning, &cell.scheme_tuning);
        CellResult {
            index: cell.index,
            variant_index: cell.variant_index,
            label: cell.label.clone(),
            x: cell.x,
            scheme: outcome.report.scheme.clone(),
            placement_hubs: outcome.report.placement.as_ref().map(|p| p.hubs),
            stats: outcome.report.stats,
            violations: outcome.violations,
        }
    }

    /// Runs every cell across `workers` threads and returns results in
    /// cell order. `workers = 1` degenerates to a serial run; any worker
    /// count yields identical results because cells are independent and
    /// slotted by index.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a worker thread panics.
    pub fn run(&self, workers: usize) -> Vec<CellResult> {
        assert!(workers > 0, "need at least one worker");
        let cells = self.cells();
        if cells.is_empty() {
            return Vec::new();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; cells.len()]);
        let threads = workers.min(cells.len());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let result = Self::run_cell(cell);
                    slots.lock().expect("result lock")[i] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .expect("result lock")
            .into_iter()
            .map(|r| r.expect("every cell ran"))
            .collect()
    }
}

fn merge_tuning(base: &RunTuning, variant: &RunTuning) -> RunTuning {
    RunTuning {
        omega: variant.omega.or(base.omega),
        hub_fund_factor: variant.hub_fund_factor.or(base.hub_fund_factor),
        update_interval_ms: variant.update_interval_ms.or(base.update_interval_ms),
        path_cache: variant.path_cache.or(base.path_cache),
        calendar_queue: variant.calendar_queue.or(base.calendar_queue),
        goal_directed: variant.goal_directed.or(base.goal_directed),
        shards: variant.shards.or(base.shards),
    }
}

fn merge_scheme(base: &SchemeTuning, variant: &SchemeTuning) -> SchemeTuning {
    SchemeTuning {
        path_select: variant.path_select.or(base.path_select),
        num_paths: variant.num_paths.or(base.num_paths),
        discipline: variant.discipline.or(base.discipline),
        balance_view: variant.balance_view.or(base.balance_view),
        rate_control: variant.rate_control.or(base.rate_control),
        congestion_control: variant.congestion_control.or(base.congestion_control),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_workload::ScenarioParams;

    fn tiny_grid() -> ExperimentGrid {
        ExperimentGrid::new(ScenarioParams::tiny())
            .schemes([SchemeChoice::Spider, SchemeChoice::ShortestPath])
            .sweep_channel_scale(&[1.0, 2.0])
    }

    #[test]
    fn cartesian_expansion_order() {
        let cells = tiny_grid().cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].label, "channel scale 1");
        assert_eq!(cells[0].spec.scheme, SchemeChoice::Spider);
        assert_eq!(cells[1].spec.scheme, SchemeChoice::ShortestPath);
        assert_eq!(cells[2].label, "channel scale 2");
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let grid = tiny_grid();
        let serial = grid.run(1);
        let parallel = grid.run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.stats, b.stats, "cell {} diverged across workers", a.index);
        }
    }

    #[test]
    fn single_cell_reproduces_grid_result() {
        let grid = tiny_grid();
        let all = grid.run(2);
        let cells = grid.cells();
        let lone = ExperimentGrid::run_cell(&cells[3]);
        assert_eq!(lone.stats, all[3].stats);
    }

    #[test]
    fn per_variant_seeds_differ_but_are_stable() {
        let grid = tiny_grid().seed_policy(SeedPolicy::PerVariant);
        let cells = grid.cells();
        assert_ne!(cells[0].spec.params.seed, cells[2].spec.params.seed);
        let again = grid.cells();
        assert_eq!(cells[0].spec.params.seed, again[0].spec.params.seed);
    }

    #[test]
    fn expectations_flow_through_grid_cells() {
        let unreachable = Expectations {
            min_tsr: Some(1.1),
            no_deadlock: false,
            value_conserved: false,
            honest_min_tsr: None,
            bounded_stall_ms: None,
        };
        let results = ExperimentGrid::new(ScenarioParams::tiny())
            .schemes([SchemeChoice::ShortestPath])
            .expectations(unreachable)
            .sweep_channel_scale(&[1.0])
            .run(2);
        assert!(
            !results[0].violations.is_empty(),
            "TSR can never reach 1.1, the cell must report the violation"
        );
    }

    #[test]
    fn sibling_cells_share_one_world_slot() {
        let grid = ExperimentGrid::new(ScenarioParams::tiny())
            .schemes([SchemeChoice::Spider, SchemeChoice::ShortestPath])
            .sweep_channel_scale(&[1.0]);
        let cells = grid.cells();
        assert!(Arc::ptr_eq(&cells[0].scenario, &cells[1].scenario));
        let _ = ExperimentGrid::run_cell(&cells[0]);
        assert!(
            cells[0].scenario.get().is_some(),
            "first run fills the slot"
        );
    }

    #[test]
    fn scheme_tuning_applies_to_baseline_cells() {
        // Sweep a *tuned* Spider: forcing single-path KSP routing must
        // change the measured run versus stock Spider on the same world.
        let tuned = SchemeTuning {
            path_select: Some(pcn_routing::paths::PathSelect::Ksp),
            num_paths: Some(1),
            ..SchemeTuning::default()
        };
        let base = ScenarioParams::tiny();
        let stock = ExperimentGrid::new(base.clone())
            .schemes([SchemeChoice::Spider])
            .sweep_channel_scale(&[1.0])
            .run(1);
        let overridden = ExperimentGrid::new(base)
            .schemes([SchemeChoice::Spider])
            .base_overrides(Overrides {
                scheme: tuned,
                ..Overrides::default()
            })
            .sweep_channel_scale(&[1.0])
            .run(2);
        assert_eq!(stock.len(), 1);
        assert_eq!(overridden.len(), 1);
        assert_ne!(
            stock[0].stats, overridden[0].stats,
            "a single-KSP Spider must measure differently from stock Spider"
        );
    }

    #[test]
    fn cache_toggle_changes_only_cache_counters() {
        let base = ScenarioParams::tiny();
        let grid = |cache| {
            ExperimentGrid::new(base.clone())
                .schemes([SchemeChoice::Flash])
                .base_overrides(Overrides {
                    tuning: RunTuning {
                        path_cache: Some(cache),
                        ..RunTuning::default()
                    },
                    ..Overrides::default()
                })
                .sweep_channel_scale(&[1.0])
                .run(1)
        };
        let on = grid(true);
        let off = grid(false);
        assert!(on[0].stats.path_cache.hits > 0, "Flash mice must hit");
        assert_eq!(off[0].stats.path_cache.lookups(), 0);
        assert_eq!(
            on[0].stats.without_cache_counters(),
            off[0].stats.without_cache_counters(),
            "the cache must be invisible in the semantic stats"
        );
    }

    #[test]
    fn churn_sweep_flows_into_the_timeline() {
        let grid = ExperimentGrid::new(ScenarioParams::tiny())
            .schemes([SchemeChoice::Spider])
            .sweep_churn_rate(&[0.0, 1.0]);
        let cells = grid.cells();
        assert_eq!(cells[0].spec.params.timeline.churn_per_sec, 0.0);
        assert_eq!(cells[1].spec.params.timeline.churn_per_sec, 1.0);
        let results = grid.run(2);
        assert_eq!(results[0].stats.world_events_applied, 0, "static point");
        assert!(
            results[1].stats.world_events_applied >= 2 * 10,
            "1/s churn over the 10 s tiny world applies ≥20 events, got {}",
            results[1].stats.world_events_applied
        );
        assert_ne!(
            results[0].stats, results[1].stats,
            "churn must actually perturb the run"
        );
    }

    #[test]
    fn shard_sweep_is_bit_identical_across_the_axis() {
        let results = ExperimentGrid::new(ScenarioParams::tiny())
            .schemes([SchemeChoice::Spider])
            .sweep_shards(&[1, 2])
            .run(1);
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].stats.without_cache_counters(),
            results[1].stats.without_cache_counters(),
            "sharding must not change semantics"
        );
    }

    #[test]
    fn adversary_sweep_flows_into_the_spec_and_perturbs_the_run() {
        let grid = ExperimentGrid::new(ScenarioParams::tiny())
            .schemes([SchemeChoice::Spider])
            .sweep_adversary(&[0.0, 0.25]);
        let cells = grid.cells();
        assert_eq!(cells[0].spec.params.adversary.griefer_fraction, 0.0);
        assert_eq!(cells[1].spec.params.adversary.griefer_fraction, 0.25);
        assert_eq!(
            cells[1].spec.params.adversary.griefer_hold_ms, 5_000,
            "the sweep installs a default hold beyond the TU timeout"
        );
        let results = grid.run(2);
        assert_eq!(results[0].stats.griefed_locks, 0, "honest point");
        assert!(
            results[1].stats.griefed_locks > 0,
            "a quarter of the clients griefing must show up in the stats"
        );
        assert!(
            results[1].stats.honest_tsr() >= results[1].stats.tsr(),
            "griefer payments never complete, so honest TSR ≥ overall TSR"
        );
    }

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, 0));
    }
}
