//! Payment admission and route computation.
//!
//! Arrivals are serviced by a per-node FIFO CPU (the source device for
//! source-routing schemes, the responsible hub otherwise); the service
//! time scales with the topology size plus the scheme's cryptographic
//! overhead. Once computed, the path plan per `RouteVia` feeds the TU
//! lifecycle layer.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use pcn_graph::{max_flow_in, Path};
use pcn_types::{Amount, NodeId, SimDuration, SimTime, TxId};

use crate::cache::{CacheKey, EpochStamp, PathCache, PlanClass, Volatility};
use crate::paths::{select_paths_footprint, select_paths_in, BalanceView, PathSelect};
use crate::rate::RateController;
use crate::scheme::RouteVia;
use crate::tu::{split_demand, Payment};
use crate::window::WindowController;

use super::{Engine, Ev, FlowState, TxState};

/// Routes one plan query through the epoch-versioned cache (or straight
/// to `compute` when caching is off). A hit shares the cached
/// `Arc<[Path]>` — exactly what `compute` would have returned, per the
/// epoch contract — without deep-cloning the plan. `funds` rides along
/// so a capacity eviction can footprint-check candidate victims.
fn cached_or<F>(
    cache: &mut PathCache,
    use_cache: bool,
    key: CacheKey,
    now: EpochStamp,
    funds: &crate::channel::NetworkFunds,
    volatility: Volatility,
    compute: F,
) -> Arc<[Path]>
where
    F: FnOnce() -> Vec<Path>,
{
    if use_cache {
        cache.get_or_compute_with(key, now, volatility, Some(funds), compute)
    } else {
        compute().into()
    }
}

/// An empty plan.
fn no_paths() -> Arc<[Path]> {
    Vec::new().into()
}

/// Routes one path-selection query through the freshness regime its
/// balance view calls for: live views go through the footprint-scoped
/// entry point (funds movement on unrelated channels keeps them fresh),
/// capacity-only views through a topology-stamped entry, and with
/// caching off the query computes directly. Shared by the `Direct` plan
/// and the inter-hub middle leg.
///
/// On the footprint-scoped path, goal-directed searches run with
/// funds-independent (`TopologyOnly`) pruning only — the backward-probe
/// ball is priced under the current funds and could hide channels a
/// later funds move can flip, under-recording the dependency set (see
/// the `pcn_graph` accel module docs). Results stay bit-identical.
#[allow(clippy::too_many_arguments)] // the routing tuple is the paper's Table II axes
fn cached_select(
    cache: &mut PathCache,
    use_cache: bool,
    key: CacheKey,
    now: EpochStamp,
    graph: &pcn_graph::Graph,
    workspace: &mut pcn_graph::SearchWorkspace,
    funds: &crate::channel::NetworkFunds,
    src: NodeId,
    dst: NodeId,
    k: usize,
    strategy: PathSelect,
    view: BalanceView,
    min_w: Amount,
    accel: bool,
) -> Arc<[Path]> {
    if !use_cache {
        return select_paths_in(
            graph, workspace, funds, src, dst, k, strategy, view, min_w, accel,
        )
        .into();
    }
    match view {
        BalanceView::Live => cache.get_or_compute_scoped(key, now, funds, |fp| {
            select_paths_footprint(
                graph, workspace, funds, src, dst, k, strategy, view, min_w, accel, fp,
            )
        }),
        BalanceView::CapacityOnly => {
            cache.get_or_compute_with(key, now, Volatility::CapacityOnly, Some(funds), || {
                select_paths_in(
                    graph, workspace, funds, src, dst, k, strategy, view, min_w, accel,
                )
            })
        }
    }
}

/// Whether a scheme's shared-plan computation runs unit-cost searches
/// that can consult the ALT landmark table (and therefore whether the
/// table is kept fresh for its runs at all).
fn uses_alt(scheme: &crate::scheme::SchemeConfig) -> bool {
    match &scheme.route_via {
        RouteVia::Direct | RouteVia::Hubs { .. } => matches!(
            scheme.path_select,
            PathSelect::Ksp | PathSelect::Eds | PathSelect::Heuristic
        ),
        RouteVia::FlashMaxFlow { .. } => true,
        RouteVia::Landmarks { .. } | RouteVia::SingleHub { .. } => false,
    }
}

/// Whether this payment's plan goes through a goal-directed computation
/// when `EngineConfig::use_goal_directed` is on. Purely a function of
/// the scheme and the payment — identical on every replica of a sharded
/// run, with or without the cache — so `goal_directed_plans` stays a
/// semantic counter.
fn plan_uses_accel(scheme: &crate::scheme::SchemeConfig, p: &Payment) -> bool {
    match &scheme.route_via {
        RouteVia::Direct | RouteVia::Hubs { .. } => matches!(
            scheme.path_select,
            PathSelect::Ksp | PathSelect::Eds | PathSelect::Heuristic
        ),
        RouteVia::Landmarks { .. } => true,
        RouteVia::FlashMaxFlow { elephant_threshold } => p.value <= *elephant_threshold,
        RouteVia::SingleHub { .. } => false,
    }
}

impl Engine {
    pub(super) fn on_arrival(&mut self, now: SimTime) {
        let payment = self.payments.pop_front().expect("arrival without payment");
        debug_assert_eq!(payment.created, now);
        if let Some(next) = self.payments.front() {
            self.events.schedule_at(next.created, Ev::Arrival);
        }
        self.stats.generated += 1;
        self.stats.generated_value += payment.value;
        if !self
            .fault
            .as_ref()
            .is_some_and(|f| f.plan.is_adversarial(payment.id))
        {
            // Honest runs count everything here, so honest_tsr == tsr.
            self.stats.honest_generated += 1;
        }
        let tx = payment.id;
        // Route computation is serviced at the source (source routing) or
        // at the responsible hub, modelled as a FIFO per-node CPU.
        let compute_node = self.compute_node(&payment);
        let per_edge = if self.scheme.compute_at_source {
            self.scheme.compute.client_secs_per_edge
        } else {
            self.scheme.compute.hub_secs_per_edge
        };
        // Open channels only: closed tombstones keep their dense ids but
        // are invisible to route computation, so they must not inflate
        // its modeled cost as churn accumulates.
        let service = SimDuration::from_secs_f64(per_edge * self.graph.open_edge_count() as f64)
            + self.scheme.compute.crypto_overhead;
        let start = self.node_busy[compute_node.index()].max(now);
        let done = start + service;
        self.node_busy[compute_node.index()] = done;
        self.events.schedule_at(done, Ev::ComputeDone(tx));
        self.events.schedule_at(payment.deadline, Ev::Deadline(tx));
        self.txs.insert(
            tx,
            TxState {
                payment,
                flow: None,
                backlog: VecDeque::new(),
                delivered: Amount::ZERO,
                resolved: false,
                next_path: 0,
            },
        );
        self.active.push(tx);
    }

    pub(super) fn compute_node(&self, p: &Payment) -> NodeId {
        match &self.scheme.route_via {
            RouteVia::Hubs { assignment } => assignment.get(&p.source).copied().unwrap_or(p.source),
            RouteVia::SingleHub { hub } => *hub,
            _ => p.source,
        }
    }

    pub(super) fn on_compute_done(&mut self, now: SimTime, tx: TxId) {
        let Some(state) = self.txs.get(tx) else {
            return;
        };
        if state.resolved {
            return;
        }
        let payment = state.payment.clone();
        let paths = self.plan_paths(&payment);
        if paths.is_empty() {
            self.stats.unroutable += 1;
            self.fail_tx(tx);
            return;
        }
        let k = paths.len();
        let rates = self.scheme.rate_control.then(|| {
            RateController::new(
                k,
                self.cfg.initial_rate,
                self.cfg.min_rate,
                self.cfg.max_rate,
                self.cfg.alpha,
            )
        });
        let windows =
            WindowController::new(k, self.cfg.initial_window, self.cfg.beta, self.cfg.gamma);
        let backlog: VecDeque<Amount> =
            split_demand(payment.value, self.cfg.min_tu, self.cfg.max_tu).into();
        let state = self.txs.get_mut(tx).expect("checked above");
        let mut flow = FlowState {
            outstanding: vec![0; k],
            paths,
            rates,
            windows,
            admit_mask: 0,
        };
        for i in 0..k {
            flow.refresh_admit(i);
        }
        state.flow = Some(flow);
        state.backlog = backlog;
        if self.scheme.rate_control {
            for i in 0..k {
                self.events.schedule_at(now, Ev::Inject(tx, i));
            }
        } else {
            // Blast every TU immediately, round-robin over the paths.
            while self.send_next_tu(now, tx, None) {}
        }
    }

    /// Computes the payment's plan, routing ownership through the shard
    /// link when this engine is a replica of a sharded run: the owning
    /// shard computes the shared plan and publishes it, every other
    /// replica receives that exact plan in event order, and the
    /// per-payment finish ([`Engine::plan_finish`]) runs locally on all
    /// replicas so their RNG streams stay in lockstep.
    pub(super) fn plan_paths(&mut self, p: &Payment) -> Arc<[Path]> {
        let accel = self.cfg.use_goal_directed && plan_uses_accel(&self.scheme, p);
        if accel {
            self.stats.goal_directed_plans += 1;
        }
        if self.cfg.use_goal_directed && uses_alt(&self.scheme) {
            // Before the ownership branch on purpose: every replica of a
            // sharded run rebuilds (epoch mismatch) or no-ops (fresh, two
            // integer compares) in lockstep, keeping `landmark_rebuilds`
            // semantic across shard counts.
            self.workspace.prepare_landmarks(&self.graph);
        }
        let route = self
            .shard
            .as_ref()
            .map(|link| (link.me(), link.owner_of(self.compute_node(p))));
        let shared = match route {
            None => self.plan_shared(p, accel),
            Some((me, owner)) if owner == me => {
                let plan = self.plan_shared(p, accel);
                self.shard
                    .as_ref()
                    .expect("link checked above")
                    .publish(p.id, &plan);
                plan
            }
            Some((_, owner)) => self
                .shard
                .as_ref()
                .expect("link checked above")
                .recv(owner, p.id),
        };
        self.plan_finish(p, shared)
    }

    /// Completes a shared plan into the per-payment plan. For Flash mice
    /// the shared plan is the pooled KSP candidate set and the final
    /// single-path draw happens here, on this engine's RNG — in a
    /// sharded run every replica draws locally from its
    /// identically-advancing stream, so handing off the pre-draw pool
    /// keeps all RNG states synchronized. Every other scheme passes
    /// through unchanged.
    fn plan_finish(&mut self, p: &Payment, shared: Arc<[Path]>) -> Arc<[Path]> {
        if let RouteVia::FlashMaxFlow { elephant_threshold } = &self.scheme.route_via {
            if p.value <= *elephant_threshold && !shared.is_empty() {
                return vec![shared[self.rng.index(shared.len())].clone()].into();
            }
        }
        shared
    }

    /// The shard-shareable part of planning: everything up to (but not
    /// including) the per-payment RNG finish. This is what a sharded
    /// run's owning replica hands off to its peers.
    fn plan_shared(&mut self, p: &Payment, accel: bool) -> Arc<[Path]> {
        let k = self.scheme.num_paths.max(1);
        let strategy = self.scheme.path_select;
        let view = self.scheme.balance_view;
        let min_w = self.cfg.min_tu;
        let use_cache = self.cfg.use_path_cache;
        let Engine {
            scheme,
            graph,
            funds,
            prices,
            path_cache,
            workspace,
            ..
        } = self;
        let now = EpochStamp {
            topology: graph.topology_epoch(),
            funds: funds.funds_epoch(),
            prices: prices.price_epoch(),
        };
        match &scheme.route_via {
            RouteVia::Direct => cached_select(
                path_cache,
                use_cache,
                CacheKey::plan(p.source, p.dest),
                now,
                graph,
                workspace,
                funds,
                p.source,
                p.dest,
                k,
                strategy,
                view,
                min_w,
                accel,
            ),
            RouteVia::Hubs { assignment } => {
                let Some(&hub_s) = assignment.get(&p.source) else {
                    return no_paths();
                };
                let Some(&hub_r) = assignment.get(&p.dest) else {
                    return no_paths();
                };
                // The plan decomposes into legs with very different
                // volatility: the head (source→hub_s) and tail
                // (hub_r→dest) access legs are pure topology lookups,
                // while the hub_s→hub_r middle is a live-balance search
                // with a bounded channel footprint. Caching the legs
                // separately lets every payment crossing the same hub
                // pair share them; composition (and the middle's
                // client-avoidance filter, which depends on the payment's
                // endpoints) happens per payment. The composed plan is
                // bit-identical to the old monolithic computation.
                let head = cached_or(
                    path_cache,
                    use_cache,
                    CacheKey::hub_leg(p.source, hub_s),
                    now,
                    funds,
                    Volatility::CapacityOnly,
                    || {
                        graph
                            .edge_between(p.source, hub_s)
                            .map(|ch| vec![Path::new(vec![p.source, hub_s], vec![ch])])
                            .unwrap_or_default()
                    },
                );
                let tail = cached_or(
                    path_cache,
                    use_cache,
                    CacheKey::hub_leg(hub_r, p.dest),
                    now,
                    funds,
                    Volatility::CapacityOnly,
                    || {
                        graph
                            .edge_between(hub_r, p.dest)
                            .map(|ch| vec![Path::new(vec![hub_r, p.dest], vec![ch])])
                            .unwrap_or_default()
                    },
                );
                let (Some(head), Some(tail)) = (head.first(), tail.first()) else {
                    return no_paths();
                };
                if hub_s == hub_r {
                    // Same-hub fast path: both clients hang off one hub,
                    // the plan is the joined access legs — topology-only,
                    // never invalidated by funds movement.
                    return vec![head.clone().join(tail.clone())].into();
                }
                let middles = cached_select(
                    path_cache,
                    use_cache,
                    CacheKey::hub_middle(hub_s, hub_r),
                    now,
                    graph,
                    workspace,
                    funds,
                    hub_s,
                    hub_r,
                    k,
                    strategy,
                    view,
                    min_w,
                    accel,
                );
                middles
                    .iter()
                    .filter(|m| {
                        // A middle path must not route through either client.
                        m.nodes()[1..m.nodes().len() - 1]
                            .iter()
                            .all(|&n| n != p.source && n != p.dest)
                    })
                    .map(|m| head.clone().join(m.clone()).join(tail.clone()))
                    .collect::<Vec<Path>>()
                    .into()
            }
            RouteVia::Landmarks { landmarks } => cached_or(
                path_cache,
                use_cache,
                CacheKey::plan(p.source, p.dest),
                now,
                funds,
                // The landmark legs price edges off channel *totals* only,
                // independent of the declared balance view.
                Volatility::CapacityOnly,
                || {
                    // Both toggle arms build each route as
                    // `source → landmark` joined with the **reverse** of
                    // the canonical `dest → landmark` leg, so flipping
                    // `use_goal_directed` is bit-identical: the batched
                    // trees below read off exactly those two searches.
                    let cost =
                        |e: pcn_graph::EdgeRef| (funds.total(e.id) > Amount::ZERO).then_some(1.0);
                    let mut legs: Vec<(Option<Path>, Option<Path>)> = Vec::new();
                    if accel {
                        // One tree from the source plus one from the
                        // destination replace the 2·k single-pair
                        // searches of the per-pair baseline.
                        let (up_tree, down_tree) = pcn_graph::shortest_path_two_trees_in(
                            graph, workspace, p.source, p.dest, cost,
                        );
                        for &lm in landmarks.iter().take(k) {
                            if lm == p.source || lm == p.dest {
                                continue;
                            }
                            legs.push((
                                up_tree.path_to(lm),
                                down_tree.path_to(lm).map(Path::reversed),
                            ));
                        }
                    } else {
                        for &lm in landmarks.iter().take(k) {
                            if lm == p.source || lm == p.dest {
                                continue;
                            }
                            let up = graph
                                .shortest_path_in(workspace, p.source, lm, cost)
                                .map(|(_, path)| path);
                            let down = graph
                                .shortest_path_in(workspace, p.dest, lm, cost)
                                .map(|(_, path)| path.reversed());
                            legs.push((up, down));
                        }
                    }
                    let mut out = Vec::new();
                    for (up, down) in legs {
                        if let (Some(u), Some(d)) = (up, down) {
                            // Loops through the landmark are allowed by the
                            // scheme but a hop may not revisit the same channel.
                            let joined = u.join(d);
                            let mut chans: Vec<_> = joined.channels().to_vec();
                            chans.sort();
                            chans.dedup();
                            if chans.len() == joined.channels().len() {
                                out.push(joined);
                            }
                        }
                    }
                    // Two landmarks can yield the same joined route; keep
                    // the first occurrence of each node sequence (a global
                    // dedup — adjacent-only dedup let duplicates through
                    // and the scheme double-sent over one route).
                    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();
                    out.retain(|path| seen.insert(path.nodes().to_vec()));
                    out
                },
            ),
            RouteVia::SingleHub { hub } => {
                let hub = *hub;
                cached_or(
                    path_cache,
                    use_cache,
                    CacheKey::plan(p.source, p.dest),
                    now,
                    funds,
                    // Pure topology lookups: only a rewiring can stale this.
                    Volatility::CapacityOnly,
                    || {
                        let Some(first) = graph.edge_between(p.source, hub) else {
                            return Vec::new();
                        };
                        let Some(second) = graph.edge_between(hub, p.dest) else {
                            return Vec::new();
                        };
                        vec![Path::new(vec![p.source, hub, p.dest], vec![first, second])]
                    },
                )
            }
            RouteVia::FlashMaxFlow { elephant_threshold } => {
                if p.value > *elephant_threshold {
                    cached_or(
                        path_cache,
                        use_cache,
                        CacheKey {
                            source: p.source,
                            dest: p.dest,
                            class: PlanClass::Elephant,
                        },
                        now,
                        funds,
                        // Max flow over channel totals: capacity-only.
                        Volatility::CapacityOnly,
                        || {
                            let res = max_flow_in(graph, workspace, p.source, p.dest, |e| {
                                Some(funds.total(e.id).millitokens())
                            });
                            let mut paths: Vec<(u64, Path)> = res
                                .paths
                                .into_iter()
                                .map(|fp| (fp.amount, fp.path))
                                .collect();
                            paths.sort_by_key(|p| std::cmp::Reverse(p.0));
                            paths.into_iter().take(k).map(|(_, p)| p).collect()
                        },
                    )
                } else {
                    // The pooled plan is shared via `Arc`; `plan_finish`
                    // draws the one per-payment path from it.
                    cached_or(
                        path_cache,
                        use_cache,
                        CacheKey {
                            source: p.source,
                            dest: p.dest,
                            class: PlanClass::MicePool,
                        },
                        now,
                        funds,
                        Volatility::CapacityOnly,
                        || {
                            select_paths_in(
                                graph,
                                workspace,
                                funds,
                                p.source,
                                p.dest,
                                k,
                                PathSelect::Ksp,
                                BalanceView::CapacityOnly,
                                min_w,
                                accel,
                            )
                        },
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{payments_from_tuples, Engine, EngineConfig};
    use crate::channel::NetworkFunds;
    use crate::scheme::SchemeConfig;
    use pcn_sim::SimRng;
    use pcn_types::{Amount, NodeId, SimDuration, SimTime};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// The hub's route-computation CPU is a FIFO: simultaneous arrivals
    /// are serviced back to back, so `node_busy` accumulates one service
    /// interval per payment (untestable inside the monolith — `node_busy`
    /// was buried 300 lines from the arrival handler).
    #[test]
    fn hub_compute_queue_serializes_simultaneous_arrivals() {
        let g = pcn_graph::star(5); // hub 0
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let crypto = SimDuration::from_millis(100);
        let scheme = SchemeConfig::a2l(n(0), crypto);
        let mut engine = Engine::new(g, funds, scheme, EngineConfig::default(), SimRng::seed(1));
        // Three payments arriving at t=0 through the same hub.
        let payments = payments_from_tuples(
            &[(0, 1, 2, 1), (0, 2, 3, 1), (0, 3, 4, 1)],
            SimDuration::from_secs(3),
        );
        engine.payments = payments.into();
        engine.on_arrival(SimTime::ZERO);
        engine.on_arrival(SimTime::ZERO);
        engine.on_arrival(SimTime::ZERO);
        // Per-edge compute cost is scheme-dependent; the crypto overhead
        // alone lower-bounds three back-to-back service slots.
        let busy_until = engine.node_busy[0];
        assert!(
            busy_until >= SimTime::ZERO + crypto + crypto + crypto,
            "hub CPU must serialize: busy until {busy_until:?}"
        );
        // All three tx admitted and tracked.
        assert_eq!(engine.stats.generated, 3);
        assert_eq!(engine.txs.len(), 3);
        assert_eq!(engine.active.len(), 3);
    }

    /// Source-routing schemes compute at the source: two sources never
    /// contend for the same CPU.
    #[test]
    fn source_compute_queues_are_independent() {
        let mut g = pcn_graph::Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(3));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(2),
        );
        let payments =
            payments_from_tuples(&[(0, 0, 3, 1), (0, 1, 3, 1)], SimDuration::from_secs(3));
        engine.payments = payments.into();
        engine.on_arrival(SimTime::ZERO);
        engine.on_arrival(SimTime::ZERO);
        // Distinct sources: each CPU served exactly one payment, so both
        // become free at the same instant instead of stacking.
        assert_eq!(engine.node_busy[0], engine.node_busy[1]);
        assert!(engine.node_busy[0] > SimTime::ZERO);
        assert_eq!(engine.node_busy[2], SimTime::ZERO);
    }

    /// Repeated plan queries for the same (source, dest) hit the cache
    /// while no watched epoch moves, and cached plans equal recomputed
    /// ones (the semantics-preservation contract, engine-level).
    #[test]
    fn repeated_plans_hit_cache_and_match_recomputation() {
        let mut g = pcn_graph::Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(3));
        g.add_edge(n(0), n(3));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(7),
        );
        let payments =
            payments_from_tuples(&[(0, 0, 3, 1), (0, 0, 3, 2)], SimDuration::from_secs(3));
        let first = engine.plan_paths(&payments[0]);
        let second = engine.plan_paths(&payments[1]);
        assert!(!first.is_empty());
        assert_eq!(
            first.iter().map(|p| p.nodes().to_vec()).collect::<Vec<_>>(),
            second
                .iter()
                .map(|p| p.nodes().to_vec())
                .collect::<Vec<_>>(),
        );
        let stats = engine.path_cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        // Disabling the cache recomputes the identical plan.
        engine.cfg.use_path_cache = false;
        let recomputed = engine.plan_paths(&payments[0]);
        assert_eq!(
            first.iter().map(|p| p.nodes().to_vec()).collect::<Vec<_>>(),
            recomputed
                .iter()
                .map(|p| p.nodes().to_vec())
                .collect::<Vec<_>>(),
        );
        assert_eq!(engine.path_cache.stats().lookups(), 2, "bypass, no lookup");
    }

    /// Same-hub Splicer plans are pure topology lookups: the cached
    /// access legs must survive any funds movement (they used to be
    /// cached `Live` and invalidated on every balance change).
    #[test]
    fn same_hub_plans_survive_funds_movement() {
        let g = pcn_graph::star(4); // hub 0
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let assignment: std::collections::BTreeMap<NodeId, NodeId> =
            [(n(1), n(0)), (n(2), n(0)), (n(3), n(0))]
                .into_iter()
                .collect();
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::splicer(assignment),
            EngineConfig::default(),
            SimRng::seed(8),
        );
        let payments =
            payments_from_tuples(&[(0, 1, 2, 1), (0, 1, 2, 1)], SimDuration::from_secs(3));
        let first = engine.plan_paths(&payments[0]);
        assert_eq!(first.len(), 1, "1 → hub 0 → 2");
        // Funds move on the plan's own channel: the plan reads topology
        // only, so both cached legs stay fresh.
        engine
            .funds
            .lock(pcn_types::ChannelId::new(0), n(0), Amount::from_tokens(1))
            .unwrap();
        let second = engine.plan_paths(&payments[1]);
        assert_eq!(first[0].nodes(), second[0].nodes());
        let stats = engine.path_cache.stats();
        assert_eq!(stats.misses, 2, "head and tail leg, first sight");
        assert_eq!(stats.hits, 2, "both legs served from cache");
        assert_eq!(stats.invalidations(), 0, "funds movement must not stale");
    }

    /// The live inter-hub middle leg carries its channel footprint:
    /// funds movement on unrelated channels keeps it fresh; movement on
    /// a footprint channel invalidates it (and only it — the topology
    /// legs still hit).
    #[test]
    fn hub_middle_leg_invalidates_only_on_footprint_channels() {
        let mut g = pcn_graph::Graph::new(6);
        g.add_edge(n(2), n(0)); // ch0: head (client 2 → hub 0)
        g.add_edge(n(0), n(1)); // ch1: middle (hub 0 → hub 1)
        g.add_edge(n(1), n(3)); // ch2: tail (hub 1 → client 3)
        let island = g.add_edge(n(4), n(5)); // ch3: unreachable from 0
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let assignment: std::collections::BTreeMap<NodeId, NodeId> =
            [(n(2), n(0)), (n(3), n(1))].into_iter().collect();
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::splicer(assignment),
            EngineConfig::default(),
            SimRng::seed(8),
        );
        let payments = payments_from_tuples(
            &[(0, 2, 3, 1), (0, 2, 3, 1), (0, 2, 3, 1)],
            SimDuration::from_secs(3),
        );
        let first = engine.plan_paths(&payments[0]);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].nodes(), [n(2), n(0), n(1), n(3)]);
        assert_eq!(engine.path_cache.stats().misses, 3, "head, middle, tail");
        // Unrelated movement: the global funds epoch advances but no
        // footprint channel does — all three legs hit.
        engine
            .funds
            .lock(island, n(4), Amount::from_tokens(1))
            .unwrap();
        let second = engine.plan_paths(&payments[1]);
        assert_eq!(first[0].nodes(), second[0].nodes());
        let stats = engine.path_cache.stats();
        assert_eq!((stats.hits, stats.invalidations()), (3, 0));
        // Movement on the middle's own channel: only the middle leg is
        // recomputed.
        engine
            .funds
            .lock(pcn_types::ChannelId::new(1), n(0), Amount::from_tokens(1))
            .unwrap();
        let third = engine.plan_paths(&payments[2]);
        assert_eq!(first[0].nodes(), third[0].nodes());
        let stats = engine.path_cache.stats();
        assert_eq!(stats.hits, 5, "head and tail still fresh");
        assert_eq!(stats.invalidations(), 1, "middle leg recomputed");
    }

    /// Flash's mice pool is cached per (source, dest) and the per-payment
    /// random pick still draws from the engine RNG (cache on or off).
    #[test]
    fn flash_mice_pool_cached_across_payments() {
        let mut g = pcn_graph::Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(3));
        g.add_edge(n(0), n(2));
        g.add_edge(n(2), n(3));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::flash(Amount::from_tokens(50)),
            EngineConfig::default(),
            SimRng::seed(9),
        );
        let payments = payments_from_tuples(
            &[(0, 0, 3, 1), (0, 0, 3, 1), (0, 0, 3, 1)],
            SimDuration::from_secs(3),
        );
        for p in &payments {
            let plan = engine.plan_paths(p);
            assert_eq!(plan.len(), 1, "mice take a single pooled path");
        }
        let stats = engine.path_cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }

    /// Two landmarks can relay the identical joined route with a
    /// different route between them: the plan must dedup globally, not
    /// just adjacently, or the scheme double-sends over one route.
    #[test]
    fn landmark_plans_contain_no_duplicate_paths() {
        // Line 0-1-2-3 plus detour 0-4-3. Landmarks [1, 4, 2]: landmarks
        // 1 and 2 both yield 0-1-2-3, separated by 4's 0-4-3 — adjacent
        // dedup used to let the duplicate through.
        let mut g = pcn_graph::Graph::new(5);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(3));
        g.add_edge(n(0), n(4));
        g.add_edge(n(4), n(3));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::landmark(vec![n(1), n(4), n(2)]),
            EngineConfig::default(),
            SimRng::seed(4),
        );
        let payments = payments_from_tuples(&[(0, 0, 3, 1)], SimDuration::from_secs(3));
        let plan = engine.plan_paths(&payments[0]);
        assert_eq!(plan.len(), 2, "0-1-2-3 (once) and 0-4-3");
        let mut node_seqs: Vec<_> = plan.iter().map(|p| p.nodes().to_vec()).collect();
        node_seqs.sort();
        node_seqs.dedup();
        assert_eq!(node_seqs.len(), plan.len(), "no duplicate routes");
    }

    /// Unroutable payments are counted and failed at plan time.
    #[test]
    fn plan_paths_empty_for_disconnected_destination() {
        let mut g = pcn_graph::Graph::new(3);
        g.add_edge(n(0), n(1)); // node 2 isolated
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(3),
        );
        let payments = payments_from_tuples(&[(0, 0, 2, 1)], SimDuration::from_secs(3));
        let p = payments[0].clone();
        engine.payments = payments.into();
        assert!(engine.plan_paths(&p).is_empty());
    }
}
