//! K partitioned event loops with a deterministic handoff merge.
//!
//! [`ShardedEngine`] runs `K` engine replicas on `K` threads and merges
//! their results into one [`RunStats`] that is **bit-identical to a
//! single-engine run, regardless of K or thread scheduling**. This
//! module documents the exact contract, because it is the foundation
//! every later scaling item builds on.
//!
//! # The determinism contract
//!
//! The lockstep discipline is taken to its limit: instead of advancing
//! shards in conservative time-window epochs and exchanging boundary
//! state, **every shard executes the complete `(time, lane, seq)` event
//! sequence over a full replica of the world** — graph, funds, prices,
//! queues, TU arenas, RNG. State-mutating events (hop traversal,
//! settlement, price ticks, world-timeline mutations) are the cheap,
//! allocation-free part of the loop (PR 4); replaying them everywhere
//! means no shard can ever receive a message from its past, because
//! every shard already *is* the past — epoch synchronization with a
//! zero-width window.
//!
//! What is partitioned is the expensive part: **route computation**.
//! Each payment's plan is computed only by the shard that owns its
//! compute node under the hub-cut [`Partition`] (see [`crate::shard`]
//! for the partitioning invariant). The owner publishes the computed
//! plan as a handoff message on a per-shard-pair FIFO channel; every
//! other replica, on reaching the same `ComputeDone` event in its own
//! sequence, blocks until that exact plan arrives (the payment id is
//! asserted on receipt, so any ordering drift aborts loudly instead of
//! silently diverging). This is semantics-preserving for the same
//! reason the path cache is: a plan is a deterministic function of the
//! replicated `(topology, funds, prices)` state at the planning
//! instant, so "computed here" and "received from the owner" are
//! bit-identical. The single RNG draw in planning (the Flash mice
//! pick) stays *local*: the owner hands off the pre-draw candidate
//! pool and every replica draws from its own identically-advancing
//! stream, keeping all K RNG states in lockstep.
//!
//! Deadlock-freedom follows from the strict total order: if any shard
//! were blocked forever, consider the earliest event position where
//! that happens — its plan's owner is not blocked before that position
//! (it is the earliest), so the owner reaches it and publishes.
//! Handoff sends never block (unbounded channels), completing the
//! induction.
//!
//! # What merging means
//!
//! Because replicas are bit-identical, every shard produces the same
//! semantic [`RunStats`] — asserted, not assumed, after every run. The
//! merged result is that shared payload with the per-shard
//! [`PathCacheStats`] summed per cause (each shard only caches the
//! plans it owns) and `wall_secs` taken as the max across threads. At
//! K=1 the sum is the identity, so a K=1 sharded run is bit-identical
//! to the plain [`Engine`] *including* cache counters — the
//! determinism suite pins this for all six schemes.
//!
//! # Where the speedup comes from
//!
//! Route computation dominates exactly when the cache cannot absorb it:
//! uncached A/B runs, churn-heavy dynamic worlds, and large topologies
//! where searches are expensive. In those regimes each shard computes
//! ~1/K of the plans and the replicated bookkeeping is cheap, so
//! throughput scales with cores (`benches/shard_scale.rs`). In
//! fully-cache-warmed static regimes planning is already ~free and
//! sharding buys little — by design: the contract is "bit-identical
//! always, faster where it matters".

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use pcn_graph::{Graph, Path};
use pcn_sim::SimRng;
use pcn_types::{NodeId, TxId};

use crate::cache::PathCacheStats;
use crate::channel::NetworkFunds;
use crate::scheme::SchemeConfig;
use crate::shard::Partition;
use crate::stats::RunStats;
use crate::tu::Payment;
use crate::world::WorldEvent;

use super::{Engine, EngineConfig};

/// A plan handoff: the owning shard's computed (pre-finish) plan for
/// one payment.
type PlanMsg = (TxId, Arc<[Path]>);

/// One shard's view of the handoff mesh: a sender to every peer and a
/// FIFO inbox from every peer. Installed into the replica's [`Engine`];
/// `plan_paths` routes through it.
pub(crate) struct ShardLink {
    me: u32,
    partition: Partition,
    /// `peers[j]`: sender on the `me → j` channel (`None` for `j == me`).
    peers: Vec<Option<Sender<PlanMsg>>>,
    /// `inbox[j]`: receiver on the `j → me` channel (`None` for `j == me`).
    inbox: Vec<Option<Receiver<PlanMsg>>>,
}

impl ShardLink {
    /// This shard's index.
    pub(super) fn me(&self) -> u32 {
        self.me
    }

    /// The shard owning route computation for `compute_node`.
    pub(super) fn owner_of(&self, compute_node: NodeId) -> u32 {
        self.partition.shard_of(compute_node)
    }

    /// Publishes an owned plan to every peer shard. Never blocks
    /// (unbounded channels) — the deadlock-freedom induction needs this.
    pub(super) fn publish(&self, tx: TxId, plan: &Arc<[Path]>) {
        for sender in self.peers.iter().flatten() {
            sender
                .send((tx, Arc::clone(plan)))
                .expect("peer shard hung up mid-run — a replica thread panicked");
        }
    }

    /// Receives the next plan from `owner`'s FIFO. The handoff order is
    /// the event total order restricted to `owner`'s payments, so the
    /// head of the queue must be exactly `tx` — anything else means the
    /// replicas' event sequences diverged, which voids the determinism
    /// contract and must abort.
    pub(super) fn recv(&self, owner: u32, tx: TxId) -> Arc<[Path]> {
        let rx = self.inbox[owner as usize]
            .as_ref()
            .expect("no handoff channel from owning shard");
        let (got, plan) = rx
            .recv()
            .expect("owning shard hung up mid-run — a replica thread panicked");
        assert_eq!(
            got, tx,
            "handoff order drift: shard {} expected the plan for tx {tx:?} \
             but the owner (shard {owner}) published tx {got:?} — replica \
             event sequences diverged",
            self.me
        );
        plan
    }
}

/// K engine replicas executing one run in parallel, planning routes
/// only for the payments they own (see the module docs for the
/// contract).
pub struct ShardedEngine {
    engines: Vec<Engine>,
}

impl ShardedEngine {
    /// Creates `k` replica engines (clamped to at least 1) wired into a
    /// pairwise handoff mesh. Every replica starts from a clone of the
    /// same world and the same RNG state.
    pub fn new(
        graph: Graph,
        funds: NetworkFunds,
        scheme: SchemeConfig,
        cfg: EngineConfig,
        rng: SimRng,
        k: u32,
    ) -> ShardedEngine {
        let k = k.max(1) as usize;
        let partition = Partition::new(&scheme.route_via, graph.node_count(), k as u32);
        // Pairwise channel mesh: senders[from][to] / inboxes[to][from].
        let mut senders: Vec<Vec<Option<Sender<PlanMsg>>>> =
            (0..k).map(|_| (0..k).map(|_| None).collect()).collect();
        let mut inboxes: Vec<Vec<Option<Receiver<PlanMsg>>>> =
            (0..k).map(|_| (0..k).map(|_| None).collect()).collect();
        for from in 0..k {
            for to in 0..k {
                if from != to {
                    let (tx, rx) = channel();
                    senders[from][to] = Some(tx);
                    inboxes[to][from] = Some(rx);
                }
            }
        }
        let engines = senders
            .into_iter()
            .zip(inboxes)
            .enumerate()
            .map(|(me, (peers, inbox))| {
                let mut engine = Engine::new(
                    graph.clone(),
                    funds.clone(),
                    scheme.clone(),
                    cfg.clone(),
                    rng.clone(),
                );
                engine.shard = Some(ShardLink {
                    me: me as u32,
                    partition: partition.clone(),
                    peers,
                    inbox,
                });
                engine
            })
            .collect();
        ShardedEngine { engines }
    }

    /// Installs the same dynamic-world timeline into every replica —
    /// world events are state mutations, and state is replicated.
    pub fn with_timeline(self, events: Vec<WorldEvent>) -> ShardedEngine {
        ShardedEngine {
            engines: self
                .engines
                .into_iter()
                .map(|e| e.with_timeline(events.clone()))
                .collect(),
        }
    }

    /// Installs the same [`FaultPlan`](crate::fault::FaultPlan) into every
    /// replica. Fault decisions are pure hashes of replicated state (plan
    /// salt, payment id, hop, retry, channel) — never the engine RNG — so
    /// every replica injects the identical faults and the per-replica
    /// stats-equality assertion in the merge continues to hold under
    /// attack.
    pub fn with_faults(self, plan: crate::fault::FaultPlan) -> ShardedEngine {
        ShardedEngine {
            engines: self
                .engines
                .into_iter()
                .map(|e| e.with_faults(plan.clone()))
                .collect(),
        }
    }

    /// Runs all replicas to completion and merges their statistics.
    /// Same payment-list requirements as [`Engine::run`].
    ///
    /// # Panics
    ///
    /// Panics if any replica's semantic statistics diverge from shard
    /// 0's — the determinism contract is asserted on every run, never
    /// assumed.
    pub fn run(mut self, payments: Vec<Payment>) -> RunStats {
        let per_shard: Vec<RunStats> = if self.engines.len() == 1 {
            // One shard has no peers to talk to: run on this thread.
            vec![self.engines.pop().expect("k >= 1").run(payments)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .engines
                    .into_iter()
                    .map(|engine| {
                        let shard_payments = payments.clone();
                        scope.spawn(move || engine.run(shard_payments))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard replica panicked"))
                    .collect()
            })
        };
        merge_replicas(per_shard)
    }
}

/// Merges per-replica statistics: asserts the semantic payloads are
/// identical, sums cache counters per cause, takes the max wall clock.
fn merge_replicas(per_shard: Vec<RunStats>) -> RunStats {
    let base = per_shard[0].without_cache_counters();
    for (i, stats) in per_shard.iter().enumerate().skip(1) {
        assert!(
            stats.without_cache_counters() == base,
            "shard {i} diverged from shard 0 — replicated execution must \
             be bit-identical:\n  shard 0: {base}\n  shard {i}: {stats}"
        );
    }
    let mut merged = per_shard[0].clone();
    // Settles are per-replica work (a replica only computes the plans it
    // owns), so the run total is the sum. The semantic planner counters
    // (`goal_directed_plans`, `landmark_rebuilds`) are replica-equal —
    // enforced by the assert above — and ride along from shard 0.
    merged.nodes_settled = per_shard.iter().map(|s| s.nodes_settled).sum();
    merged.path_cache = per_shard
        .iter()
        .fold(PathCacheStats::default(), |mut acc, s| {
            acc.absorb(&s.path_cache);
            acc
        });
    merged.wall_secs = per_shard.iter().map(|s| s.wall_secs).fold(0.0, f64::max);
    merged
}
