//! Whole-engine behavioural tests: every scheme end to end on small
//! topologies. Submodule-level unit tests live next to their layer
//! (`arrivals`, `lifecycle`, `control`).

use super::*;
use crate::scheme::SchemeConfig;
use std::collections::BTreeMap;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Line topology 0-1-2-3 with healthy funds.
fn line_setup() -> (Graph, NetworkFunds) {
    let mut g = Graph::new(4);
    for i in 0..3 {
        g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
    }
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
    (g, funds)
}

fn run_scheme(scheme: SchemeConfig, payments: Vec<Payment>) -> RunStats {
    let (g, funds) = line_setup();
    let engine = Engine::new(g, funds, scheme, EngineConfig::default(), SimRng::seed(1));
    engine.run(payments)
}

#[test]
fn single_payment_completes_spider() {
    let payments = payments_from_tuples(&[(0, 0, 3, 5)], SimDuration::from_secs(3));
    let stats = run_scheme(SchemeConfig::spider(), payments);
    assert_eq!(stats.generated, 1);
    assert_eq!(stats.completed, 1, "{stats}");
    assert_eq!(stats.completed_value, Amount::from_tokens(5));
    assert!(stats.avg_latency_secs() > 0.0);
    assert_eq!(stats.tsr(), 1.0);
}

#[test]
fn single_payment_completes_shortest_path() {
    let payments = payments_from_tuples(&[(0, 0, 3, 5)], SimDuration::from_secs(3));
    let stats = run_scheme(SchemeConfig::shortest_path(), payments);
    assert_eq!(stats.completed, 1, "{stats}");
}

#[test]
fn oversized_payment_fails_without_control() {
    // 300 tokens through 100-token channels: single-path schemes die.
    let payments = payments_from_tuples(&[(0, 0, 3, 300)], SimDuration::from_secs(3));
    let stats = run_scheme(SchemeConfig::shortest_path(), payments);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.failed, 1);
}

#[test]
fn funds_conserved_after_run() {
    let (g, funds) = line_setup();
    let grand = funds.grand_total();
    let payments = payments_from_tuples(
        &[(0, 0, 3, 5), (100, 3, 0, 4), (200, 1, 3, 6)],
        SimDuration::from_secs(3),
    );
    let engine = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(2),
    );
    // run consumes the engine; conservation is debug-asserted inside,
    // and we re-check via stats consistency.
    let stats = engine.run(payments);
    assert!(stats.is_consistent());
    let _ = grand;
}

#[test]
fn unroutable_payment_counted() {
    let mut g = Graph::new(3);
    g.add_edge(n(0), n(1)); // node 2 isolated
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
    let payments = payments_from_tuples(&[(0, 0, 2, 1)], SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(3),
    )
    .run(payments);
    assert_eq!(stats.unroutable, 1);
    assert_eq!(stats.failed, 1);
}

#[test]
fn splicer_hub_routing_on_multi_star() {
    // clients 0,1 → hub 4; clients 2,3 → hub 5; hubs linked.
    let mut g = Graph::new(6);
    g.add_edge(n(0), n(4));
    g.add_edge(n(1), n(4));
    g.add_edge(n(2), n(5));
    g.add_edge(n(3), n(5));
    g.add_edge(n(4), n(5));
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
    let assignment: BTreeMap<NodeId, NodeId> =
        [(n(0), n(4)), (n(1), n(4)), (n(2), n(5)), (n(3), n(5))]
            .into_iter()
            .collect();
    let payments = payments_from_tuples(
        &[(0, 0, 2, 5), (50, 1, 3, 3), (100, 0, 1, 2)],
        SimDuration::from_secs(3),
    );
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::splicer(assignment),
        EngineConfig::default(),
        SimRng::seed(4),
    )
    .run(payments);
    assert_eq!(stats.completed, 3, "{stats}");
}

#[test]
fn a2l_star_routes_through_hub() {
    let g = pcn_graph::star(5); // hub 0
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(50));
    let payments = payments_from_tuples(&[(0, 1, 2, 5), (10, 3, 4, 5)], SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::a2l(n(0), SimDuration::from_millis(5)),
        EngineConfig::default(),
        SimRng::seed(5),
    )
    .run(payments);
    assert_eq!(stats.completed, 2, "{stats}");
}

#[test]
fn a2l_hub_compute_queue_delays_under_load() {
    // Many simultaneous payments through one hub with heavy crypto:
    // the hub CPU serializes them past their deadlines.
    let g = pcn_graph::star(30);
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(1_000));
    let tuples: Vec<(u64, u32, u32, u64)> = (0..60)
        .map(|i| (i, 1 + (i as u32 % 29), 1 + ((i as u32 + 1) % 29), 2))
        .collect();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::a2l(n(0), SimDuration::from_millis(200)),
        EngineConfig::default(),
        SimRng::seed(6),
    )
    .run(payments);
    assert!(stats.failed > 0, "hub saturation must fail some: {stats}");
}

#[test]
fn landmark_routing_works() {
    let (g, funds) = line_setup();
    let payments = payments_from_tuples(&[(0, 0, 3, 4)], SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::landmark(vec![n(1), n(2)]),
        EngineConfig::default(),
        SimRng::seed(7),
    )
    .run(payments);
    assert_eq!(stats.completed, 1, "{stats}");
}

#[test]
fn flash_elephant_and_mouse() {
    let mut g = Graph::new(4);
    g.add_edge(n(0), n(1));
    g.add_edge(n(1), n(3));
    g.add_edge(n(0), n(2));
    g.add_edge(n(2), n(3));
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(50));
    let payments =
        payments_from_tuples(&[(0, 0, 3, 60), (500, 0, 3, 2)], SimDuration::from_secs(3));
    let cfg = EngineConfig {
        max_retries: 1,
        ..Default::default()
    };
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::flash(Amount::from_tokens(20)),
        cfg,
        SimRng::seed(8),
    )
    .run(payments);
    // The 60-token elephant splits over both 50-token routes; the
    // mouse follows a precomputed path.
    assert_eq!(stats.completed, 2, "{stats}");
}

#[test]
fn deadlock_demo_naive_vs_rate_control() {
    // Fig. 1: A=0, C=2, B=1. A→B and C→B flows plus B→A, with C's
    // outbound funds tiny: naive routing drains C and collapses.
    let mut g = Graph::new(3);
    g.add_edge(n(0), n(2)); // A-C
    g.add_edge(n(2), n(1)); // C-B
    let funds = NetworkFunds::from_graph(&g, |_, _| Amount::from_tokens(10));
    let mut tuples = Vec::new();
    // Heavy one-directional load A→B (via C) for 20 seconds.
    for i in 0..40u64 {
        tuples.push((i * 250, 0u32, 1u32, 2u64));
    }
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
    let naive = Engine::new(
        g.clone(),
        funds.clone(),
        SchemeConfig::shortest_path(),
        EngineConfig::default(),
        SimRng::seed(9),
    )
    .run(payments.clone());
    // One-way flow must exhaust the C→B direction under naive routing.
    assert!(naive.failed > 0, "naive should deadlock: {naive}");
    assert!(naive.drained_directions_end > 0);
    // Rate-controlled Spider queues and paces instead of failing
    // everything, completing at least as much.
    let spider = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(9),
    )
    .run(payments);
    assert!(
        spider.completed >= naive.completed,
        "spider {spider} vs naive {naive}"
    );
}

#[test]
fn deterministic_across_runs() {
    let payments = payments_from_tuples(
        &[(0, 0, 3, 5), (100, 3, 0, 4), (150, 1, 2, 7)],
        SimDuration::from_secs(3),
    );
    let run = |seed| {
        let (g, funds) = line_setup();
        Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(seed),
        )
        .run(payments.clone())
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.overhead_msgs, b.overhead_msgs);
    assert_eq!(a.aborted_tus, b.aborted_tus);
}

/// Thread-local allocation counter installed as the test binary's global
/// allocator. Counting per-thread keeps concurrently running tests from
/// polluting each other's measurements.
#[allow(unsafe_code)]
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    }

    struct Counting;

    // SAFETY: pure pass-through to `System`; the only addition is a
    // non-allocating bump of a const-initialized thread-local counter.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.with(|c| c.set(c.get() + 1));
            // SAFETY: caller upholds GlobalAlloc's contract; forwarded as-is.
            unsafe { System.alloc(layout) }
        }

        // SAFETY: delegates to `System` under the caller's own contract
        // (ptr was allocated by this allocator with this layout).
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: same ptr/layout pair the caller guarantees.
            unsafe { System.dealloc(ptr, layout) }
        }

        // SAFETY: delegates to `System` under the caller's own contract.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.with(|c| c.set(c.get() + 1));
            // SAFETY: same ptr/layout/new_size the caller guarantees.
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;

    /// Allocations made by the current thread so far.
    pub fn allocations() -> u64 {
        ALLOCATIONS.with(|c| c.get())
    }
}

/// The per-event hot path performs **zero steady-state allocations**:
/// once every payment is admitted and its flow set up (admission
/// allocates by design — backlog, controllers, plan), the remaining TU
/// lifecycle — injection pacing, hop locks, queue pushes/drains,
/// settlement walks, aborts/refunds, price ticks — runs to completion
/// without a single heap allocation, measured by a counting global
/// allocator.
///
/// Warm structures are pre-sized the way a long-running engine's would
/// be (the calendar ring warms naturally once it wraps, ~4.2 s of sim
/// time; this test's horizon is shorter, so it pre-warms explicitly).
#[test]
fn hot_loop_steady_state_is_allocation_free() {
    // Saturated line: 40-token payments split into 10 TUs each through
    // 10-token channels — hop locks contend, queues build and drain.
    let mut g = Graph::new(4);
    for i in 0..3 {
        g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
    }
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
    // All payments arrive in the first 200 ms from distinct endpoints;
    // their TU traffic then churns for ~5 s.
    let tuples: Vec<(u64, u32, u32, u64)> = (0..96)
        .map(|i| {
            let (s, d) = match i % 4 {
                0 => (0, 3),
                1 => (3, 0),
                2 => (1, 3),
                _ => (2, 0),
            };
            (i * 2, s, d, 40)
        })
        .collect();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(5));
    let mut engine = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(11),
    );
    // Mirror `Engine::run`'s setup, driving the loop in place so the
    // measurement can start mid-run.
    engine.horizon = payments.last().unwrap().deadline + engine.cfg.update_interval;
    engine.payments = payments.into();
    let at = engine.payments.front().unwrap().created;
    engine.events.schedule_at(at, Ev::Arrival);
    engine
        .events
        .schedule_after(engine.cfg.update_interval, Ev::PriceTick);
    // Warmup: run past every admission (last arrival + compute service
    // is well under 1 s) so flows, queues and scratch buffers exist.
    while engine
        .events
        .peek_time()
        .is_some_and(|t| t <= SimTime::from_micros(1_000_000))
    {
        let (now, ev) = engine.events.pop().expect("peeked");
        engine.handle(now, ev);
    }
    assert!(
        engine.payments.is_empty(),
        "warmup must cover every arrival"
    );
    assert!(!engine.tus.is_empty(), "warmup must leave TUs in flight");
    // Pre-size the growable structures to their steady-state extents,
    // as a long-lived engine's would already be.
    engine.events.preallocate(16);
    engine.stats.latency.reserve(4096);
    engine.tus.reserve(4096);
    engine.scratch_expired.reserve(1024);
    engine.scratch_marked.reserve(1024);
    engine.scratch_prices.reserve(64);
    for pair in engine.queues.iter_mut() {
        pair.0.reserve(256);
        pair.1.reserve(256);
    }
    let baseline = alloc_counter::allocations();
    let mut steady_events = 0u64;
    while let Some((now, ev)) = engine.events.pop() {
        engine.handle(now, ev);
        steady_events += 1;
    }
    let allocated = alloc_counter::allocations() - baseline;
    assert!(
        steady_events > 5_000,
        "must measure a real event volume, got {steady_events}"
    );
    assert_eq!(
        allocated, 0,
        "hot loop allocated {allocated} times over {steady_events} steady-state events"
    );
    // The run did real hop-lock work while being measured.
    assert!(engine.stats.completed + engine.stats.failed > 0);
    assert!(engine.stats.marked_tus > 0, "{}", engine.stats);
}

#[test]
#[cfg_attr(miri, ignore)]
fn steady_state_stays_allocation_free_with_goal_directed_planner() {
    // The same saturated-line measurement with a scheme that routes its
    // plans through the goal-directed accelerator (Direct + EDS:
    // bidirectional + ALT searches over a live landmark table). Warmup
    // builds the table and grows the accel scratch; the measured window
    // must then allocate nothing — the accelerator adds no steady-state
    // allocation sites.
    let mut g = Graph::new(4);
    for i in 0..3 {
        g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
    }
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
    let tuples: Vec<(u64, u32, u32, u64)> = (0..96)
        .map(|i| {
            let (s, d) = match i % 4 {
                0 => (0, 3),
                1 => (3, 0),
                2 => (1, 3),
                _ => (2, 0),
            };
            (i * 2, s, d, 40)
        })
        .collect();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(5));
    let cfg = EngineConfig::default();
    assert!(cfg.use_goal_directed, "the accelerator must default on");
    // Arrivals end at ~190 ms; stop the warmup right after admission so
    // the measured window still sees real TU churn (the whole run
    // completes far faster than Spider's rate-limited one).
    let mut engine = Engine::new(
        g,
        funds,
        SchemeConfig::shortest_path(),
        cfg,
        SimRng::seed(11),
    );
    engine.horizon = payments.last().unwrap().deadline + engine.cfg.update_interval;
    engine.payments = payments.into();
    let at = engine.payments.front().unwrap().created;
    engine.events.schedule_at(at, Ev::Arrival);
    engine
        .events
        .schedule_after(engine.cfg.update_interval, Ev::PriceTick);
    while engine
        .events
        .peek_time()
        .is_some_and(|t| t <= SimTime::from_micros(250_000))
    {
        let (now, ev) = engine.events.pop().expect("peeked");
        engine.handle(now, ev);
    }
    assert!(engine.payments.is_empty());
    assert!(
        engine.stats.goal_directed_plans > 0,
        "warmup plans must exercise the accelerator"
    );
    assert!(
        engine.workspace.landmark_rebuilds() > 0,
        "warmup must build the landmark table"
    );
    engine.events.preallocate(16);
    engine.stats.latency.reserve(4096);
    engine.tus.reserve(4096);
    engine.scratch_expired.reserve(1024);
    engine.scratch_marked.reserve(1024);
    engine.scratch_prices.reserve(64);
    for pair in engine.queues.iter_mut() {
        pair.0.reserve(256);
        pair.1.reserve(256);
    }
    let baseline = alloc_counter::allocations();
    let mut steady_events = 0u64;
    while let Some((now, ev)) = engine.events.pop() {
        engine.handle(now, ev);
        steady_events += 1;
    }
    let allocated = alloc_counter::allocations() - baseline;
    // Without Spider's rate-control loop the line drains fast, so the
    // window is smaller than the Spider measurement above — but it still
    // spans live TU forwarding, price ticks and payment completion.
    assert!(
        steady_events > 100,
        "must measure a real event volume, got {steady_events}"
    );
    assert_eq!(
        allocated, 0,
        "goal-directed hot loop allocated {allocated} times over \
         {steady_events} steady-state events"
    );
    assert!(engine.stats.completed + engine.stats.failed > 0);
}

#[test]
fn marked_tus_counted_under_congestion() {
    // Narrow channel, many payments: queues build up past T.
    let mut g = Graph::new(3);
    g.add_edge(n(0), n(1));
    g.add_edge(n(1), n(2));
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(6));
    let tuples: Vec<(u64, u32, u32, u64)> = (0..30).map(|i| (i * 20, 0, 2, 4)).collect();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(10),
    )
    .run(payments);
    assert!(stats.marked_tus > 0, "{stats}");
    assert!(stats.is_consistent());
}
