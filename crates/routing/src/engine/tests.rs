//! Whole-engine behavioural tests: every scheme end to end on small
//! topologies. Submodule-level unit tests live next to their layer
//! (`arrivals`, `lifecycle`, `control`).

use super::*;
use crate::scheme::SchemeConfig;
use std::collections::HashMap;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Line topology 0-1-2-3 with healthy funds.
fn line_setup() -> (Graph, NetworkFunds) {
    let mut g = Graph::new(4);
    for i in 0..3 {
        g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
    }
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
    (g, funds)
}

fn run_scheme(scheme: SchemeConfig, payments: Vec<Payment>) -> RunStats {
    let (g, funds) = line_setup();
    let engine = Engine::new(g, funds, scheme, EngineConfig::default(), SimRng::seed(1));
    engine.run(payments)
}

#[test]
fn single_payment_completes_spider() {
    let payments = payments_from_tuples(&[(0, 0, 3, 5)], SimDuration::from_secs(3));
    let stats = run_scheme(SchemeConfig::spider(), payments);
    assert_eq!(stats.generated, 1);
    assert_eq!(stats.completed, 1, "{stats}");
    assert_eq!(stats.completed_value, Amount::from_tokens(5));
    assert!(stats.avg_latency_secs() > 0.0);
    assert_eq!(stats.tsr(), 1.0);
}

#[test]
fn single_payment_completes_shortest_path() {
    let payments = payments_from_tuples(&[(0, 0, 3, 5)], SimDuration::from_secs(3));
    let stats = run_scheme(SchemeConfig::shortest_path(), payments);
    assert_eq!(stats.completed, 1, "{stats}");
}

#[test]
fn oversized_payment_fails_without_control() {
    // 300 tokens through 100-token channels: single-path schemes die.
    let payments = payments_from_tuples(&[(0, 0, 3, 300)], SimDuration::from_secs(3));
    let stats = run_scheme(SchemeConfig::shortest_path(), payments);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.failed, 1);
}

#[test]
fn funds_conserved_after_run() {
    let (g, funds) = line_setup();
    let grand = funds.grand_total();
    let payments = payments_from_tuples(
        &[(0, 0, 3, 5), (100, 3, 0, 4), (200, 1, 3, 6)],
        SimDuration::from_secs(3),
    );
    let engine = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(2),
    );
    // run consumes the engine; conservation is debug-asserted inside,
    // and we re-check via stats consistency.
    let stats = engine.run(payments);
    assert!(stats.is_consistent());
    let _ = grand;
}

#[test]
fn unroutable_payment_counted() {
    let mut g = Graph::new(3);
    g.add_edge(n(0), n(1)); // node 2 isolated
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
    let payments = payments_from_tuples(&[(0, 0, 2, 1)], SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(3),
    )
    .run(payments);
    assert_eq!(stats.unroutable, 1);
    assert_eq!(stats.failed, 1);
}

#[test]
fn splicer_hub_routing_on_multi_star() {
    // clients 0,1 → hub 4; clients 2,3 → hub 5; hubs linked.
    let mut g = Graph::new(6);
    g.add_edge(n(0), n(4));
    g.add_edge(n(1), n(4));
    g.add_edge(n(2), n(5));
    g.add_edge(n(3), n(5));
    g.add_edge(n(4), n(5));
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
    let assignment: HashMap<NodeId, NodeId> =
        [(n(0), n(4)), (n(1), n(4)), (n(2), n(5)), (n(3), n(5))]
            .into_iter()
            .collect();
    let payments = payments_from_tuples(
        &[(0, 0, 2, 5), (50, 1, 3, 3), (100, 0, 1, 2)],
        SimDuration::from_secs(3),
    );
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::splicer(assignment),
        EngineConfig::default(),
        SimRng::seed(4),
    )
    .run(payments);
    assert_eq!(stats.completed, 3, "{stats}");
}

#[test]
fn a2l_star_routes_through_hub() {
    let g = pcn_graph::star(5); // hub 0
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(50));
    let payments = payments_from_tuples(&[(0, 1, 2, 5), (10, 3, 4, 5)], SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::a2l(n(0), SimDuration::from_millis(5)),
        EngineConfig::default(),
        SimRng::seed(5),
    )
    .run(payments);
    assert_eq!(stats.completed, 2, "{stats}");
}

#[test]
fn a2l_hub_compute_queue_delays_under_load() {
    // Many simultaneous payments through one hub with heavy crypto:
    // the hub CPU serializes them past their deadlines.
    let g = pcn_graph::star(30);
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(1_000));
    let tuples: Vec<(u64, u32, u32, u64)> = (0..60)
        .map(|i| (i, 1 + (i as u32 % 29), 1 + ((i as u32 + 1) % 29), 2))
        .collect();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::a2l(n(0), SimDuration::from_millis(200)),
        EngineConfig::default(),
        SimRng::seed(6),
    )
    .run(payments);
    assert!(stats.failed > 0, "hub saturation must fail some: {stats}");
}

#[test]
fn landmark_routing_works() {
    let (g, funds) = line_setup();
    let payments = payments_from_tuples(&[(0, 0, 3, 4)], SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::landmark(vec![n(1), n(2)]),
        EngineConfig::default(),
        SimRng::seed(7),
    )
    .run(payments);
    assert_eq!(stats.completed, 1, "{stats}");
}

#[test]
fn flash_elephant_and_mouse() {
    let mut g = Graph::new(4);
    g.add_edge(n(0), n(1));
    g.add_edge(n(1), n(3));
    g.add_edge(n(0), n(2));
    g.add_edge(n(2), n(3));
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(50));
    let payments =
        payments_from_tuples(&[(0, 0, 3, 60), (500, 0, 3, 2)], SimDuration::from_secs(3));
    let cfg = EngineConfig {
        max_retries: 1,
        ..Default::default()
    };
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::flash(Amount::from_tokens(20)),
        cfg,
        SimRng::seed(8),
    )
    .run(payments);
    // The 60-token elephant splits over both 50-token routes; the
    // mouse follows a precomputed path.
    assert_eq!(stats.completed, 2, "{stats}");
}

#[test]
fn deadlock_demo_naive_vs_rate_control() {
    // Fig. 1: A=0, C=2, B=1. A→B and C→B flows plus B→A, with C's
    // outbound funds tiny: naive routing drains C and collapses.
    let mut g = Graph::new(3);
    g.add_edge(n(0), n(2)); // A-C
    g.add_edge(n(2), n(1)); // C-B
    let funds = NetworkFunds::from_graph(&g, |_, _| Amount::from_tokens(10));
    let mut tuples = Vec::new();
    // Heavy one-directional load A→B (via C) for 20 seconds.
    for i in 0..40u64 {
        tuples.push((i * 250, 0u32, 1u32, 2u64));
    }
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
    let naive = Engine::new(
        g.clone(),
        funds.clone(),
        SchemeConfig::shortest_path(),
        EngineConfig::default(),
        SimRng::seed(9),
    )
    .run(payments.clone());
    // One-way flow must exhaust the C→B direction under naive routing.
    assert!(naive.failed > 0, "naive should deadlock: {naive}");
    assert!(naive.drained_directions_end > 0);
    // Rate-controlled Spider queues and paces instead of failing
    // everything, completing at least as much.
    let spider = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(9),
    )
    .run(payments);
    assert!(
        spider.completed >= naive.completed,
        "spider {spider} vs naive {naive}"
    );
}

#[test]
fn deterministic_across_runs() {
    let payments = payments_from_tuples(
        &[(0, 0, 3, 5), (100, 3, 0, 4), (150, 1, 2, 7)],
        SimDuration::from_secs(3),
    );
    let run = |seed| {
        let (g, funds) = line_setup();
        Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(seed),
        )
        .run(payments.clone())
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.overhead_msgs, b.overhead_msgs);
    assert_eq!(a.aborted_tus, b.aborted_tus);
}

#[test]
fn marked_tus_counted_under_congestion() {
    // Narrow channel, many payments: queues build up past T.
    let mut g = Graph::new(3);
    g.add_edge(n(0), n(1));
    g.add_edge(n(1), n(2));
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(6));
    let tuples: Vec<(u64, u32, u32, u64)> = (0..30).map(|i| (i * 20, 0, 2, 4)).collect();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(10),
    )
    .run(payments);
    assert!(stats.marked_tus > 0, "{stats}");
    assert!(stats.is_consistent());
}
