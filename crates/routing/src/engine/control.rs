//! The periodic control plane: every τ the engine re-prices channels
//! (eqs. 21–25), expires and marks queued TUs, updates per-path rates
//! from freshly probed prices (eq. 26), and accounts hub epoch-state
//! synchronization overhead (§III-B).

use pcn_types::SimTime;

use super::{Engine, Ev};

impl Engine {
    pub(super) fn on_price_tick(&mut self, now: SimTime) {
        // Eqs. 21–22 per channel: n = locked + queued value per direction.
        let funds = &self.funds;
        let queues = &self.queues;
        let endpoints = &self.endpoints;
        self.prices.tick(
            self.cfg.kappa,
            self.cfg.eta,
            |ch| {
                let (a, b) = endpoints[ch.index()];
                let q = &queues[ch.index()];
                let n_a = funds.locked(ch, a).to_tokens_f64() + q.0.queued_value().to_tokens_f64();
                let n_b = funds.locked(ch, b).to_tokens_f64() + q.1.queued_value().to_tokens_f64();
                (n_a, n_b)
            },
            |ch| funds.total(ch).to_tokens_f64(),
        );
        // Expire queued TUs whose transactions are past deadline, and mark
        // the ones waiting longer than T. The scratch buffers persist on
        // the engine: a quiet tick allocates nothing.
        let mut expired = std::mem::take(&mut self.scratch_expired);
        let mut to_mark = std::mem::take(&mut self.scratch_marked);
        expired.clear();
        to_mark.clear();
        for pair in self.queues.iter_mut() {
            for q in [&mut pair.0, &mut pair.1] {
                q.drain_expired_into(now, &mut expired);
                q.over_delay_into(now, self.cfg.queue_delay_threshold, &mut to_mark);
            }
        }
        for e in &expired {
            self.abort_tu(now, e.tu, true);
        }
        for &tu_id in &to_mark {
            if let Some(tu) = self.tus.get_mut(tu_id) {
                if !tu.marked {
                    tu.marked = true;
                    self.stats.marked_tus += 1;
                }
            }
        }
        self.scratch_expired = expired;
        self.scratch_marked = to_mark;
        // Rate updates from freshly probed path prices (eq. 26), plus
        // probe overhead accounting.
        if self.scheme.rate_control {
            let mut prune = false;
            let mut prices = std::mem::take(&mut self.scratch_prices);
            for &tx in &self.active {
                let Some(state) = self.txs.get_mut(tx) else {
                    prune = true;
                    continue;
                };
                if state.resolved {
                    prune = true;
                    continue;
                }
                let Some(flow) = state.flow.as_mut() else {
                    continue;
                };
                let Some(rates) = flow.rates.as_mut() else {
                    continue;
                };
                prices.clear();
                prices.extend(
                    flow.paths
                        .iter()
                        .map(|p| self.prices.path_price(p, self.cfg.t_fee)),
                );
                rates.update(&prices);
                self.stats.overhead_msgs += flow.paths.iter().map(|p| p.hops() as u64).sum::<u64>();
            }
            self.scratch_prices = prices;
            if prune {
                let txs = &self.txs;
                self.active
                    .retain(|&tx| txs.get(tx).is_some_and(|s| !s.resolved));
            }
        }
        // Hub state synchronization (epoch exchange, §III-B).
        if self.hub_count > 1 {
            self.stats.overhead_msgs += (self.hub_count * (self.hub_count - 1)) as u64;
        }
        // Deadlock watchdog — armed only when a fault plan is installed.
        // Pure observation: no overhead messages, no scheduled events, so
        // the adversarial control plane is invisible beyond the faults
        // themselves.
        self.detect_deadlock();
        if now + self.cfg.update_interval <= self.horizon {
            self.events
                .schedule_after(self.cfg.update_interval, Ev::PriceTick);
        }
    }

    /// The deadlock detector: a stalled-run watchdog gated on a
    /// fully-drained-direction cycle over the open graph.
    ///
    /// If no lock or settle happened for a whole τ (the watchdog half),
    /// look for a cycle in the digraph of *drained directions* — an edge
    /// `u → v` wherever `u`'s side of open channel `(u, v)` holds less
    /// than one Min-TU of spendable funds, i.e. the direction no TU can
    /// traverse until the opposite flow refills it. A cycle of drained
    /// directions is Fig. 1's deadlock shape scaled up: every participant needs
    /// liquidity only the stalled cycle itself could provide. Detection
    /// latches (`RunStats::deadlocks_detected` counts distinct stall
    /// episodes, not ticks) and unlatches on the next forward progress.
    fn detect_deadlock(&mut self) {
        {
            let Some(fault) = self.fault.as_mut() else {
                return;
            };
            let progressed = fault.progress != fault.last_progress;
            fault.last_progress = fault.progress;
            if progressed {
                fault.latched = false;
                return;
            }
            if fault.latched {
                return;
            }
        }
        let n = self.graph.node_count();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for ch in self.graph.open_edges() {
            let (a, b) = self.endpoints[ch.index()];
            if self.funds.balance(ch, a) < self.cfg.min_tu {
                edges.push((a.raw(), b.raw()));
            }
            if self.funds.balance(ch, b) < self.cfg.min_tu {
                edges.push((b.raw(), a.raw()));
            }
        }
        if edges.is_empty() {
            return;
        }
        // CSR-lite over the drained digraph, then an iterative 3-colour
        // DFS: a grey→grey edge is a cycle.
        edges.sort_unstable();
        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut colour = vec![0u8; n]; // 0 white, 1 grey (on stack), 2 black
        let mut stack: Vec<(u32, usize)> = Vec::new();
        let mut found = false;
        'starts: for start in 0..n {
            if colour[start] != 0 {
                continue;
            }
            colour[start] = 1;
            stack.push((start as u32, offsets[start]));
            while let Some(frame) = stack.last_mut() {
                let u = frame.0 as usize;
                if frame.1 == offsets[u + 1] {
                    colour[u] = 2;
                    stack.pop();
                    continue;
                }
                let v = edges[frame.1].1 as usize;
                frame.1 += 1;
                match colour[v] {
                    0 => {
                        colour[v] = 1;
                        stack.push((v as u32, offsets[v]));
                    }
                    1 => {
                        found = true;
                        break 'starts;
                    }
                    _ => {}
                }
            }
        }
        if found {
            self.stats.deadlocks_detected += 1;
            self.fault.as_mut().expect("checked above").latched = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{payments_from_tuples, Engine, EngineConfig};
    use crate::channel::NetworkFunds;
    use crate::scheme::SchemeConfig;
    use pcn_sim::SimRng;
    use pcn_types::{Amount, NodeId, SimDuration, SimTime};
    use std::collections::BTreeMap;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Price ticks self-schedule every τ until the horizon and then stop
    /// (this cadence drove the `run` loop invisibly in the monolith).
    #[test]
    fn price_tick_reschedules_until_horizon() {
        let mut g = pcn_graph::Graph::new(2);
        g.add_edge(n(0), n(1));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(1),
        );
        let tau = engine.cfg.update_interval;
        // Horizon fits exactly 5 further ticks after the first.
        engine.horizon = SimTime::ZERO + tau.saturating_mul(6);
        engine
            .events
            .schedule_after(tau, super::super::Ev::PriceTick);
        let mut ticks = 0;
        while let Some((now, ev)) = engine.events.pop() {
            assert!(
                matches!(ev, super::super::Ev::PriceTick),
                "only ticks are pending"
            );
            ticks += 1;
            engine.handle(now, ev);
        }
        assert_eq!(ticks, 6, "τ cadence must cover (0, horizon]");
        assert!(engine.events.is_empty());
    }

    /// Each tick on a multi-hub scheme accounts the pairwise epoch
    /// synchronization messages: hubs × (hubs − 1) per τ.
    #[test]
    fn hub_sync_overhead_counted_per_tick() {
        // Two hubs (4, 5) serving clients 0–3.
        let mut g = pcn_graph::Graph::new(6);
        g.add_edge(n(0), n(4));
        g.add_edge(n(1), n(4));
        g.add_edge(n(2), n(5));
        g.add_edge(n(3), n(5));
        g.add_edge(n(4), n(5));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let assignment: BTreeMap<NodeId, NodeId> =
            [(n(0), n(4)), (n(1), n(4)), (n(2), n(5)), (n(3), n(5))]
                .into_iter()
                .collect();
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::splicer(assignment),
            EngineConfig::default(),
            SimRng::seed(2),
        );
        assert_eq!(engine.hub_count, 2);
        let before = engine.stats.overhead_msgs;
        engine.on_price_tick(SimTime::ZERO);
        assert_eq!(engine.stats.overhead_msgs, before + 2, "2 hubs → 2 msgs/τ");
    }

    /// A tick expires queued TUs whose deadline has passed, aborting them
    /// through the refund path.
    #[test]
    fn tick_expires_overdue_queued_tus() {
        let mut g = pcn_graph::Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        // Second hop has no funds: the TU must queue there.
        let funds = NetworkFunds::from_graph(&g, |ch, side| {
            if ch.index() == 0 || side == n(2) {
                Amount::from_tokens(50)
            } else {
                Amount::ZERO
            }
        });
        let payments = payments_from_tuples(&[(0, 0, 2, 2)], SimDuration::from_millis(300));
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(3),
        );
        engine.horizon = payments[0].deadline + engine.cfg.update_interval;
        engine.payments = payments.into();
        engine
            .events
            .schedule_at(SimTime::ZERO, super::super::Ev::Arrival);
        // Drive until something is queued on the dry direction.
        let queued_at = loop {
            let (now, ev) = engine.events.pop().expect("must queue before draining");
            engine.handle(now, ev);
            if engine.queues.iter().any(|q| q.0.len() + q.1.len() > 0) {
                break now;
            }
        };
        let aborted_before = engine.stats.aborted_tus;
        // Ticking after every deadline has passed must expire the entry.
        engine.on_price_tick(queued_at + SimDuration::from_secs(10));
        assert_eq!(engine.stats.aborted_tus, aborted_before + 1);
        assert!(engine.queues.iter().all(|q| q.0.len() + q.1.len() == 0));
    }
}
