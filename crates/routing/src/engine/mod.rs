//! The discrete-event PCN engine.
//!
//! One general machine executes every scheme: payment arrivals pass
//! through a route-computation service queue (source device or hub), the
//! resulting path plan feeds a per-transaction flow (TU backlog + rate
//! controller + windows for rate-controlled schemes, or an immediate
//! multi-path blast for the others), TUs traverse hops with per-hop
//! delay, lock funds HTLC-style, queue when a channel direction lacks
//! funds (congestion-controlled schemes only), get marked when queueing
//! exceeds the threshold T, and settle hop-by-hop as the acknowledgement
//! travels back. Prices tick every τ (eqs. 21–26).
//!
//! The module is layered by lifecycle stage:
//!
//! * [`mod@self`] — the [`Engine`] state, its event vocabulary and the
//!   dispatch loop.
//! * `arrivals` — payment admission, route-computation service queues
//!   and path planning per scheme (`RouteVia`).
//! * `lifecycle` — TU injection, hop traversal, settlement,
//!   acknowledgement and the abort/refund/retry paths.
//! * `control` — the periodic control plane: price ticks, queue expiry
//!   and marking, rate updates, hub state synchronization.
//! * `world` — the dynamic-world stage: timeline events (hub outages,
//!   channel churn, liquidity rebalances, rate-shift markers) mutate the
//!   topology and funds mid-run, deterministically at their timestamps
//!   on the event queue's world lane. Closures expire in-flight TUs
//!   through the refund path and bump `Graph::topology_epoch`, so every
//!   cached plan re-derives lazily on its next miss.
//!
//! Simplifications vs. a production deployment, documented per DESIGN.md:
//! channel processing rate `r_process` is unbounded (congestion arises
//! from funds, queues and windows); failure unwinding refunds instantly
//! (the refund messages are counted in overhead but not delayed).
//!
//! # The allocation-free hot path
//!
//! The per-event loop is index-dense and steady-state allocation-free
//! (pinned by `hot_loop_steady_state_is_allocation_free` under a
//! counting allocator):
//!
//! * **State tables are arenas**, not hash maps (`engine/arena.rs`).
//!   [`pcn_types::TxId`]s index a dense table directly. A
//!   [`pcn_types::TuId`] is a generational `(generation, slot)` handle
//!   into a slab: a TU's slot **may be recycled as soon as the TU
//!   settles or aborts**, because removal bumps the slot's generation
//!   and any stale event still holding the old handle (a `SettleHop`
//!   racing an abort, a `HopArrive` for a delivered TU) misses on the
//!   generation compare — the exact semantics stale `HashMap` lookups
//!   had, at the cost of an index instead of a hash.
//! * **Paths are shared, not cloned**: every TU holds its flow's
//!   `Arc<[Path]>` plan (itself shared with the path cache) and an
//!   index into it.
//! * **The periodic control tick reuses scratch buffers** for queue
//!   expiry, congestion marking and per-path price probes, and the
//!   [`crate::scheduler::WaitQueue`] `*_into` drains fill caller-owned
//!   buffers — a quiet tick allocates nothing.
//! * **Events flow through a calendar queue** ([`EventQueue`]): almost
//!   every event lands at `now`, `now + hop_delay` or the τ tick, so a
//!   bucketed time wheel turns the scheduler's `O(log n)` heap ops into
//!   amortized `O(1)` pushes/pops. Ties at equal timestamps pop in
//!   scheduling order (FIFO) — the determinism contract — and
//!   [`EngineConfig::use_calendar_queue`] can pin a run back onto the
//!   reference binary heap (`tests/determinism.rs` proves the swap is
//!   bit-identical).

mod arena;
mod arrivals;
mod control;
mod lifecycle;
mod shard;
mod world;

pub use shard::ShardedEngine;

#[cfg(test)]
mod tests;

use std::collections::VecDeque;
use std::sync::Arc;

use pcn_graph::{Graph, Path, SearchWorkspace};
use pcn_sim::{EventQueue, SimRng};
use pcn_types::{Amount, ChannelId, NodeId, SimDuration, SimTime, TuId, TxId};

use crate::cache::PathCache;
use crate::channel::NetworkFunds;
use crate::prices::PriceTable;
use crate::rate::RateController;
use crate::scheduler::{QueueEntry, WaitQueue};
use crate::scheme::SchemeConfig;
use crate::stats::RunStats;
use crate::tu::Payment;
use crate::window::WindowController;

/// Engine tuning knobs (protocol constants of §V-A plus controller gains).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// One-way per-hop message delay.
    pub hop_delay: SimDuration,
    /// Price/probe update interval τ (paper: 200 ms).
    pub update_interval: SimDuration,
    /// Transaction timeout (paper: 3 s).
    pub tx_timeout: SimDuration,
    /// Queueing-delay marking threshold T (paper: 400 ms).
    pub queue_delay_threshold: SimDuration,
    /// Per-queue value bound (paper: 8000 tokens).
    pub queue_capacity: Amount,
    /// Min TU value (paper: 1 token).
    pub min_tu: Amount,
    /// Max TU value (paper: 4 tokens).
    pub max_tu: Amount,
    /// Capacity-price gain κ (eq. 21).
    pub kappa: f64,
    /// Imbalance-price gain η (eq. 22).
    pub eta: f64,
    /// Rate-update gain α (eq. 26).
    pub alpha: f64,
    /// Fee threshold T_fee (eq. 24).
    pub t_fee: f64,
    /// Window decrease β (eq. 27; paper: 10).
    pub beta: f64,
    /// Window increase γ (eq. 28; paper: 0.1).
    pub gamma: f64,
    /// Rate floor (tokens/sec).
    pub min_rate: f64,
    /// Rate ceiling (tokens/sec).
    pub max_rate: f64,
    /// Starting per-path rate (tokens/sec).
    pub initial_rate: f64,
    /// Starting per-path window (TUs).
    pub initial_window: f64,
    /// TU retry budget after a failed attempt (Flash uses 1).
    pub max_retries: u32,
    /// Pause before a failed TU re-enters the network. Zero (the
    /// default) retries immediately — the historical behaviour, kept
    /// exactly so honest runs are byte-identical. Victims of griefing
    /// or channel faults can opt into pacing so retries don't pile
    /// onto a stalled cycle (see the crate-level threat model).
    pub retry_backoff: SimDuration,
    /// Serve path plans from the epoch-versioned [`PathCache`]. The cache
    /// is semantics-preserving (hits are bit-identical to recomputation),
    /// so this toggle only trades CPU for memory; it exists for A/B runs
    /// and the determinism regression.
    pub use_path_cache: bool,
    /// Schedule events on the calendar queue ([`EventQueue::new`])
    /// instead of the reference binary heap ([`EventQueue::with_heap`]).
    /// Both pop the identical event sequence (same `(time, FIFO)` total
    /// order), so this toggle is semantics-preserving; it exists for A/B
    /// runs and the determinism regression.
    pub use_calendar_queue: bool,
    /// Plan with goal-directed searches: bidirectional Dijkstra with
    /// ALT landmark lower bounds for point-to-point selection, and
    /// batched two-tree hub-leg planning for the landmark scheme. The
    /// accelerated searches are bit-identical to the plain ones (the
    /// `pcn-graph` tie-break canon), so this toggle is
    /// semantics-preserving modulo the planner-observability counters
    /// (`RunStats::without_planner_counters`); it exists for A/B runs
    /// and the determinism regression.
    pub use_goal_directed: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            hop_delay: SimDuration::from_millis(40),
            update_interval: pcn_types::constants::UPDATE_INTERVAL,
            tx_timeout: pcn_types::constants::TX_TIMEOUT,
            queue_delay_threshold: pcn_types::constants::QUEUE_DELAY_THRESHOLD,
            queue_capacity: pcn_types::constants::QUEUE_CAPACITY,
            min_tu: pcn_types::constants::MIN_TU,
            max_tu: pcn_types::constants::MAX_TU,
            kappa: 0.002,
            eta: 0.01,
            alpha: 0.4,
            t_fee: 0.1,
            beta: pcn_types::constants::WINDOW_BETA,
            gamma: pcn_types::constants::WINDOW_GAMMA,
            min_rate: 1.0,
            max_rate: 500.0,
            initial_rate: 50.0,
            initial_window: 20.0,
            max_retries: 0,
            retry_backoff: SimDuration::ZERO,
            use_path_cache: true,
            use_calendar_queue: true,
            use_goal_directed: true,
        }
    }
}

#[derive(Debug)]
pub(super) enum Ev {
    Arrival,
    ComputeDone(TxId),
    Inject(TxId, usize),
    HopArrive(TuId),
    SettleHop(TuId, usize),
    AckComplete(TuId),
    PriceTick,
    Deadline(TxId),
    QueueDrain(u32, bool),
    /// Apply timeline event `i` (world lane).
    World(u32),
    /// Reopen the channels outage `i` closed (world lane).
    WorldRecover(u32),
}

pub(super) struct FlowState {
    /// The payment's path plan — shared with the path cache (a cache hit
    /// hands out the same allocation instead of deep-cloning the plan).
    pub(super) paths: Arc<[Path]>,
    pub(super) rates: Option<RateController>,
    pub(super) windows: WindowController,
    pub(super) outstanding: Vec<usize>,
    /// Cached per-path admission predicate — bit `i` mirrors
    /// `windows.admits(i, outstanding[i])` for `i < 64` (paths beyond
    /// that fall back to the direct check). The injection poll is by far
    /// the most frequent event in a saturated run and usually fails on a
    /// closed window; this keeps that verdict one inline bit test
    /// instead of two heap dereferences. Refreshed by
    /// [`FlowState::refresh_admit`] at every point `outstanding[i]` or
    /// `windows[i]` changes.
    pub(super) admit_mask: u64,
}

impl FlowState {
    /// Re-derives the cached admission bit for path `i`; must be called
    /// after any change to `outstanding[i]` or the path's window.
    pub(super) fn refresh_admit(&mut self, i: usize) {
        if i < 64 {
            let bit = 1u64 << i;
            if self.windows.admits(i, self.outstanding[i]) {
                self.admit_mask |= bit;
            } else {
                self.admit_mask &= !bit;
            }
        }
    }

    /// Whether path `i` may admit another TU — the cached equivalent of
    /// `windows.admits(i, outstanding[i])`.
    pub(super) fn admits(&self, i: usize) -> bool {
        if i < 64 {
            let cached = self.admit_mask & (1u64 << i) != 0;
            // Catch any future mutation site that forgets refresh_admit
            // before it can silently change protocol behaviour.
            debug_assert_eq!(
                cached,
                self.windows.admits(i, self.outstanding[i]),
                "admit_mask out of sync for path {i}: a mutation of \
                 outstanding[{i}] or its window skipped refresh_admit"
            );
            cached
        } else {
            self.windows.admits(i, self.outstanding[i])
        }
    }
}

/// Runtime adversary state: the installed [`FaultPlan`](crate::fault::FaultPlan)
/// plus the deadlock watchdog's progress tracking. `None` on the engine
/// means the honest fast path — not a single fault branch is taken.
pub(super) struct FaultState {
    pub(super) plan: crate::fault::FaultPlan,
    /// Rogue-hub ranks resolved against this scheme's hub set (flat
    /// schemes have no hubs, so their rogue entries resolve to nothing).
    pub(super) rogue_nodes: Vec<(NodeId, crate::fault::RogueBehavior)>,
    /// Monotone counter bumped on every lock and settle — the watchdog's
    /// notion of forward progress.
    pub(super) progress: u64,
    /// `progress` as of the previous price tick.
    pub(super) last_progress: u64,
    /// A detected deadlock is reported once, not once per tick.
    pub(super) latched: bool,
}

pub(super) struct TxState {
    pub(super) payment: Payment,
    pub(super) flow: Option<FlowState>,
    pub(super) backlog: VecDeque<Amount>,
    pub(super) delivered: Amount,
    pub(super) resolved: bool,
    pub(super) next_path: usize,
}

/// The simulation engine for one (topology, funds, scheme, workload) run.
pub struct Engine {
    pub(super) cfg: EngineConfig,
    pub(super) scheme: SchemeConfig,
    pub(super) graph: Graph,
    pub(super) funds: NetworkFunds,
    pub(super) prices: PriceTable,
    /// Per channel: (queue a→b, queue b→a).
    pub(super) queues: Vec<(WaitQueue, WaitQueue)>,
    /// Channel endpoint table, shared with the [`PriceTable`].
    pub(super) endpoints: Arc<[(NodeId, NodeId)]>,
    pub(super) txs: arena::TxTable,
    pub(super) active: Vec<TxId>,
    pub(super) tus: arena::TuArena,
    pub(super) node_busy: Vec<SimTime>,
    pub(super) events: EventQueue<Ev>,
    pub(super) stats: RunStats,
    pub(super) rng: SimRng,
    pub(super) payments: VecDeque<Payment>,
    pub(super) horizon: SimTime,
    /// Control-tick scratch (reused across ticks; quiet ticks allocate
    /// nothing).
    pub(super) scratch_expired: Vec<QueueEntry>,
    pub(super) scratch_marked: Vec<TuId>,
    pub(super) scratch_prices: Vec<f64>,
    /// Dynamic-world timeline state (empty for static scenarios).
    pub(super) world: world::WorldState,
    /// Epoch-versioned plan cache (replaces the never-invalidating
    /// `mice_cache` and serves every scheme's plan queries).
    pub(super) path_cache: PathCache,
    /// Reusable graph-search buffers for the hot path-selection loop.
    pub(super) workspace: SearchWorkspace,
    pub(super) hub_count: usize,
    /// Handoff mesh link when this engine is one replica of a
    /// [`ShardedEngine`] run (`None` for plain single-engine runs).
    /// `plan_paths` routes ownership decisions through it.
    pub(super) shard: Option<shard::ShardLink>,
    /// Adversary runtime, `None` unless a non-empty [`FaultPlan`]
    /// (crate::fault) was installed via [`Engine::with_faults`].
    pub(super) fault: Option<FaultState>,
}

impl Engine {
    /// Creates an engine over a topology, its channel funds, a scheme and
    /// the config.
    pub fn new(
        graph: Graph,
        funds: NetworkFunds,
        scheme: SchemeConfig,
        cfg: EngineConfig,
        rng: SimRng,
    ) -> Engine {
        let endpoints: Arc<[(NodeId, NodeId)]> = graph
            .edges()
            .map(|c| graph.endpoints(c).expect("dense edge ids"))
            .collect();
        let queues = endpoints
            .iter()
            .map(|_| {
                (
                    WaitQueue::new(scheme.discipline, cfg.queue_capacity),
                    WaitQueue::new(scheme.discipline, cfg.queue_capacity),
                )
            })
            .collect();
        // The price table shares the endpoint table by reference count —
        // no per-engine-construction clone.
        let prices = PriceTable::new(Arc::clone(&endpoints));
        let node_busy = vec![SimTime::ZERO; graph.node_count()];
        let hub_count = scheme.route_via.hub_set().len();
        let events = if cfg.use_calendar_queue {
            EventQueue::new()
        } else {
            EventQueue::with_heap()
        };
        Engine {
            cfg,
            scheme,
            graph,
            funds,
            prices,
            queues,
            endpoints,
            txs: arena::TxTable::new(),
            active: Vec::new(),
            tus: arena::TuArena::new(),
            node_busy,
            events,
            stats: RunStats::default(),
            rng,
            payments: VecDeque::new(),
            horizon: SimTime::ZERO,
            scratch_expired: Vec::new(),
            scratch_marked: Vec::new(),
            scratch_prices: Vec::new(),
            world: world::WorldState::default(),
            path_cache: PathCache::new(),
            workspace: SearchWorkspace::new(),
            hub_count,
            shard: None,
            fault: None,
        }
    }

    /// Installs an adversarial [`FaultPlan`](crate::fault::FaultPlan).
    ///
    /// An **empty plan is a no-op**: the engine keeps `fault: None`, so
    /// the run is the same execution as never calling this at all —
    /// byte-identical stats, byte-identical event order. A non-empty
    /// plan resolves its rogue-hub ranks against the scheme's hub set
    /// (`rank % hubs.len()`, the [`crate::world::WorldEvent::HubOutage`]
    /// convention; flat schemes have no hubs and ignore rogue entries)
    /// and arms the deadlock watchdog.
    #[must_use]
    pub fn with_faults(mut self, plan: crate::fault::FaultPlan) -> Engine {
        if plan.is_empty() {
            return self;
        }
        let hubs = self.scheme.route_via.hub_set();
        let rogue_nodes = plan
            .rogue_hubs
            .iter()
            .filter(|_| !hubs.is_empty())
            .map(|&(rank, behavior)| (hubs[rank % hubs.len()], behavior))
            .collect();
        self.fault = Some(FaultState {
            plan,
            rogue_nodes,
            progress: 0,
            last_progress: 0,
            latched: false,
        });
        self
    }

    /// Runs the engine over a pre-generated payment list (must be sorted
    /// by arrival time) and returns the statistics.
    ///
    /// Payment ids must be **densely numbered**: every `id` below the
    /// list length (any order). Transaction state lives in an array
    /// indexed by the raw id, so a sparse id (a hash, a timestamp)
    /// would allocate up to the largest id. Workload traces and
    /// [`payments_from_tuples`] number payments `0..n` and satisfy this
    /// by construction.
    ///
    /// # Panics
    ///
    /// Panics if any payment id is at or above the list length.
    pub fn run(mut self, payments: Vec<Payment>) -> RunStats {
        debug_assert!(payments.windows(2).all(|w| w[0].created <= w[1].created));
        assert!(
            payments.iter().all(|p| p.id.index() < payments.len()),
            "payment ids must be dense (every id < payment count): \
             the engine's transaction table is indexed by raw id"
        );
        let wall_start = crate::stats::wall_timer();
        self.begin(payments);
        while let Some((now, ev)) = self.events.pop() {
            self.handle(now, ev);
        }
        self.stats.wall_secs = wall_start.elapsed_secs();
        self.stats.path_cache = self.path_cache.stats();
        self.stats.graph_compactions = self.graph.compactions();
        self.stats.nodes_settled = self.workspace.nodes_settled();
        self.stats.landmark_rebuilds = self.workspace.landmark_rebuilds();
        // Open channels only: a tombstoned channel's frozen zero side is
        // inert capital, not the deadlock symptom (routing cannot reach
        // it), so dynamic-world runs don't inflate the metric.
        self.stats.drained_directions_end = self
            .graph
            .open_edges()
            .map(|ch| {
                let (a, b) = self.endpoints[ch.index()];
                usize::from(self.funds.balance(ch, a).is_zero())
                    + usize::from(self.funds.balance(ch, b).is_zero())
            })
            .sum();
        // Conservation is the graceful-degradation guarantee: faults ride
        // the abort/refund lifecycle, so even an adversarial run must end
        // with every token accounted for. Checked in release builds too —
        // a violation is a counted stat, not just a debug panic.
        self.stats.conservation_violations += u64::from(!self.funds.verify_conservation());
        debug_assert!(self.funds.verify_conservation());
        debug_assert!(self.stats.is_consistent());
        self.stats
    }

    /// Sets the horizon and schedules the initial events (first arrival,
    /// world timeline, first price tick). [`Engine::run`]'s startup,
    /// shared with in-place test drivers so they cannot drift from the
    /// real loop.
    pub(super) fn begin(&mut self, payments: Vec<Payment>) {
        self.horizon = payments
            .last()
            .map(|p| p.deadline + self.cfg.update_interval)
            .unwrap_or(SimTime::ZERO);
        self.payments = payments.into();
        if let Some(first) = self.payments.front() {
            let at = first.created;
            self.events.schedule_at(at, Ev::Arrival);
        }
        if !self.world.is_empty() {
            self.schedule_world_events();
        }
        self.events
            .schedule_after(self.cfg.update_interval, Ev::PriceTick);
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrival => self.on_arrival(now),
            Ev::ComputeDone(tx) => self.on_compute_done(now, tx),
            Ev::Inject(tx, path_i) => self.on_inject(now, tx, path_i),
            Ev::HopArrive(tu) => self.on_hop_arrive(now, tu),
            Ev::SettleHop(tu, hop) => self.on_settle_hop(tu, hop),
            Ev::AckComplete(tu) => self.on_ack_complete(now, tu),
            Ev::PriceTick => self.on_price_tick(now),
            Ev::Deadline(tx) => self.on_deadline(tx),
            Ev::QueueDrain(ch, dir) => self.drain_queue(now, ChannelId::new(ch), dir),
            Ev::World(i) => self.on_world(now, i),
            Ev::WorldRecover(i) => self.on_world_recover(i),
        }
    }

    /// Immutable view of the funds (post-run inspection in tests).
    pub fn funds(&self) -> &NetworkFunds {
        &self.funds
    }
}

pub(super) fn nth_hop(path: &Path, i: usize) -> (NodeId, ChannelId, NodeId) {
    let from = path.nodes()[i];
    let to = path.nodes()[i + 1];
    (from, path.channels()[i], to)
}

/// Builds a payment list from `(time_ms, src, dst, tokens)` tuples — a
/// convenience for tests and examples.
pub fn payments_from_tuples(tuples: &[(u64, u32, u32, u64)], timeout: SimDuration) -> Vec<Payment> {
    tuples
        .iter()
        .enumerate()
        .map(|(i, &(ms, s, d, v))| {
            let created = SimTime::from_micros(ms * 1000);
            Payment {
                id: TxId::new(i as u64),
                source: NodeId::new(s),
                dest: NodeId::new(d),
                value: Amount::from_tokens(v),
                created,
                deadline: created + timeout,
            }
        })
        .collect()
}
