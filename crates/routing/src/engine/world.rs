//! The world lifecycle stage: applying timeline events to a running
//! engine.
//!
//! A [`WorldEvent`] mutates the *environment* — topology, liquidity,
//! traffic shape — under the engine's feet, deterministically at its
//! timestamp (events ride the event queue's world lane, so at any
//! instant the environment changes before protocol events observe it).
//! Every mutation keeps the run's invariants:
//!
//! * **Closures refund, never leak.** Closing a channel expires every
//!   still-traveling TU whose current path crosses it: each locked hop
//!   is refunded through the ordinary abort path, so conservation holds
//!   and no value is stranded. TUs already delivered complete their
//!   settlement walk-back over the tombstone (their HTLCs resolved
//!   before the close). Rate-controlled flows get expired value back in
//!   their backlog; blast flows fail the transaction (the payment's
//!   fate, not the funds', is at stake).
//! * **Epochs fire.** `Graph::close_channel`/`reopen_channel`/`add_edge`
//!   bump the topology epoch, so every `PathCache` entry — hub legs
//!   included — goes provably stale and re-derives lazily on its next
//!   miss; rebalances bump the funds epochs of exactly the channels they
//!   move.
//! * **Dense ids survive.** A closed channel is a tombstone: funds,
//!   queues, prices and endpoint tables keep their indices. An opened
//!   channel extends every table by one slot (the endpoint `Arc` is
//!   rebuilt and re-shared with the price table).
//!
//! Hub outages reuse the closure machinery: the victim's incident
//! channels all close at `at` and reopen at `recover_at`, which for hub
//! schemes makes the hub unreachable in the scheme view (access legs
//! find no edge) and for flat schemes removes a high-degree relay.

use std::sync::Arc;

use pcn_types::{ChannelId, NodeId, SimTime, TuId};

use crate::scheduler::WaitQueue;
use crate::world::{RebalancePolicy, WorldEvent};

use super::{Engine, Ev};

/// Engine-side timeline state.
#[derive(Default)]
pub(crate) struct WorldState {
    /// The materialized timeline, in application order.
    pub(super) events: Vec<WorldEvent>,
    /// Hub pool outage ranks resolve against: the scheme's hubs, or the
    /// highest-degree nodes for hub-less schemes. Snapshotted at
    /// timeline installation (before any closure skews degrees).
    hub_pool: Vec<NodeId>,
    /// Per applied outage: the channels it holds a claim on.
    outages: Vec<Vec<ChannelId>>,
    /// Per channel: how many active outages claim it closed. A channel
    /// reopens only when its last claim is released, so overlapping
    /// outages on the same hub compose instead of the first recovery
    /// reopening a hub a later outage still wants dark. Indexed by
    /// channel id; grows with mid-run opens.
    outage_claims: Vec<u32>,
    /// Scratch for the expiry scan (reused across events).
    expire_scratch: Vec<TuId>,
}

impl WorldState {
    fn claims_mut(&mut self, ch: ChannelId) -> &mut u32 {
        if ch.index() >= self.outage_claims.len() {
            self.outage_claims.resize(ch.index() + 1, 0);
        }
        &mut self.outage_claims[ch.index()]
    }

    fn claims(&self, ch: ChannelId) -> u32 {
        self.outage_claims.get(ch.index()).copied().unwrap_or(0)
    }
}

impl WorldState {
    pub(super) fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Engine {
    /// Installs a world-event timeline; events apply at their timestamps
    /// once [`Engine::run`] starts. The hub pool for outage resolution
    /// is snapshotted now, against the unmutated topology.
    pub fn with_timeline(mut self, events: Vec<WorldEvent>) -> Engine {
        self.world.hub_pool = if events
            .iter()
            .any(|e| matches!(e, WorldEvent::HubOutage { .. }))
        {
            self.hub_pool()
        } else {
            Vec::new()
        };
        self.world.events = events;
        self
    }

    /// The nodes hub-outage ranks index: the scheme's own hubs where it
    /// has any ([`RouteVia::hub_set`], shared with the engine's
    /// hub-count accounting), otherwise every node ordered by descending
    /// degree (ties by id) — so a rank-0 outage always hits the most
    /// load-bearing node the scheme relies on.
    fn hub_pool(&self) -> Vec<NodeId> {
        let hubs = self.scheme.route_via.hub_set();
        if !hubs.is_empty() {
            return hubs;
        }
        let mut nodes: Vec<NodeId> = self.graph.nodes().collect();
        nodes.sort_by_key(|&v| (std::cmp::Reverse(self.graph.degree(v)), v));
        nodes
    }

    /// Schedules every timeline event on the world lane (called once at
    /// the start of [`Engine::run`]).
    pub(super) fn schedule_world_events(&mut self) {
        for (i, ev) in self.world.events.iter().enumerate() {
            self.events.schedule_world_at(ev.at(), Ev::World(i as u32));
        }
    }

    /// Applies timeline event `idx` at its timestamp.
    pub(super) fn on_world(&mut self, now: SimTime, idx: u32) {
        let event = self.world.events[idx as usize].clone();
        match event {
            WorldEvent::RateShift { .. } => {
                // The trace already embeds the phased arrival gaps; the
                // engine-side application is the accounting marker.
            }
            WorldEvent::HubOutage {
                hub_rank,
                recover_at,
                ..
            } => {
                let pool = &self.world.hub_pool;
                if pool.is_empty() {
                    // A hubless, nodeless world has nothing to darken;
                    // count the event and move on rather than divide by
                    // zero resolving the rank.
                    self.stats.world_events_applied += 1;
                    return;
                }
                let hub = pool[hub_rank % pool.len()];
                // Claim every incident channel that is open (close it
                // now) or already held dark by another outage (stack a
                // claim so the earlier recovery cannot reopen it under
                // us). Channels closed by churn — closed with no claim —
                // are not the outage's to reopen and stay untouched.
                let mut claimed: Vec<ChannelId> = Vec::new();
                for ch in self.graph.edges().collect::<Vec<_>>() {
                    let (a, b) = self.graph.endpoints(ch).expect("dense edge ids");
                    if a != hub && b != hub {
                        continue;
                    }
                    if !self.graph.is_closed(ch) {
                        self.close_channel_now(now, ch);
                    } else if self.world.claims(ch) == 0 {
                        continue;
                    }
                    *self.world.claims_mut(ch) += 1;
                    claimed.push(ch);
                }
                let outage = self.world.outages.len() as u32;
                self.world.outages.push(claimed);
                self.events
                    .schedule_world_at(recover_at.max(now), Ev::WorldRecover(outage));
            }
            WorldEvent::ChannelClose { selector, .. } => {
                let open = self.graph.open_edge_count();
                if open > 0 {
                    let victim = self
                        .graph
                        .open_edges()
                        .nth((selector % open as u64) as usize)
                        .expect("open_edge_count counted it");
                    self.close_channel_now(now, victim);
                }
            }
            WorldEvent::ChannelOpen {
                a_sel,
                b_sel,
                funds_per_side,
                ..
            } => {
                let n = self.graph.node_count() as u64;
                if n < 2 {
                    // Nowhere to hang a channel; count the event and
                    // move on rather than divide by zero resolving the
                    // endpoint selectors.
                    self.stats.world_events_applied += 1;
                    return;
                }
                let a = a_sel % n;
                let mut b = b_sel % n;
                if b == a {
                    b = (b + 1) % n;
                }
                let (a, b) = (
                    NodeId::from_index(a as usize),
                    NodeId::from_index(b as usize),
                );
                self.graph.add_edge(a, b);
                self.funds.add_channel(a, b, funds_per_side, funds_per_side);
                self.queues.push((
                    WaitQueue::new(self.scheme.discipline, self.cfg.queue_capacity),
                    WaitQueue::new(self.scheme.discipline, self.cfg.queue_capacity),
                ));
                // Rebuild the shared endpoint table; the price table
                // adopts the same allocation and grows its own columns.
                let mut endpoints: Vec<(NodeId, NodeId)> = self.endpoints.to_vec();
                endpoints.push((a, b));
                self.endpoints = Arc::from(endpoints);
                self.prices.set_endpoints(Arc::clone(&self.endpoints));
            }
            WorldEvent::Rebalance { policy, .. } => match policy {
                RebalancePolicy::Equalize => {
                    // Ascending id order: deterministic epoch sequence.
                    for i in 0..self.funds.len() {
                        let ch = ChannelId::from_index(i);
                        if !self.graph.is_closed(ch) {
                            self.funds.rebalance_equalize(ch).expect("dense channel id");
                        }
                    }
                }
            },
        }
        self.stats.world_events_applied += 1;
    }

    /// Releases a hub outage's claims, reopening each channel whose
    /// last claim this was (channels still claimed by an overlapping
    /// outage stay dark until that one recovers too).
    pub(super) fn on_world_recover(&mut self, outage: u32) {
        let channels = std::mem::take(&mut self.world.outages[outage as usize]);
        for &ch in &channels {
            let claims = self.world.claims_mut(ch);
            *claims -= 1;
            if *claims == 0 && self.graph.is_closed(ch) {
                self.graph.reopen_channel(ch).expect("closed by the outage");
            }
        }
        self.stats.world_events_applied += 1;
    }

    /// Closes `ch` and expires every *traveling* TU whose current path
    /// crosses it. Expiry goes through [`Engine::abort_tu`], so locked
    /// hops — on this channel and every other hop of the doomed TU —
    /// are refunded and queue residency is cleaned up. TUs that already
    /// reached their destination (`next_hop == hops`) are spared: their
    /// HTLCs resolved before the close, and the settlement walk-back
    /// completes over the tombstone — aborting them would refund hops
    /// whose locks have already settled.
    fn close_channel_now(&mut self, now: SimTime, ch: ChannelId) {
        self.graph
            .close_channel(ch)
            .expect("closing an open channel");
        let mut doomed = std::mem::take(&mut self.world.expire_scratch);
        doomed.clear();
        doomed.extend(
            self.tus
                .iter()
                .filter(|tu| tu.next_hop < tu.path().hops() && tu.path().channels().contains(&ch))
                .map(|tu| tu.id),
        );
        for &tu in &doomed {
            self.abort_tu(now, tu, false);
            self.stats.tus_expired_by_close += 1;
        }
        self.world.expire_scratch = doomed;
    }
}

#[cfg(test)]
mod tests {
    use super::super::{payments_from_tuples, Engine, EngineConfig};
    use crate::channel::NetworkFunds;
    use crate::scheme::SchemeConfig;
    use crate::world::{RebalancePolicy, WorldEvent};
    use pcn_sim::SimRng;
    use pcn_types::{Amount, ChannelId, NodeId, SimDuration, SimTime};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn line(k: usize) -> pcn_graph::Graph {
        let mut g = pcn_graph::Graph::new(k);
        for i in 0..k - 1 {
            g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
        }
        g
    }

    /// Drives an engine with a timeline to completion in place (the
    /// real [`Engine::begin`] startup), so funds and graph stay
    /// inspectable afterwards.
    fn drive(engine: &mut Engine, payments: Vec<crate::tu::Payment>) {
        engine.begin(payments);
        while let Some((now, ev)) = engine.events.pop() {
            engine.handle(now, ev);
        }
    }

    /// Closing a channel mid-flight expires the TU crossing it and
    /// refunds every hop it had locked: value is conserved, nothing
    /// stays locked on the closed channel, and the payment fails
    /// instead of leaking.
    #[test]
    fn channel_close_refunds_in_flight_tus() {
        let g = line(4);
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let grand = funds.grand_total();
        // Close the *last* hop at 50 ms: the TU (hop delay 40 ms) has
        // locked hops 0 and 1 by then and is en route to hop 2.
        let timeline = vec![WorldEvent::ChannelClose {
            at: SimTime::from_micros(50_000),
            selector: 2, // channels 0,1,2 all open → picks id 2
        }];
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::shortest_path(),
            EngineConfig::default(),
            SimRng::seed(1),
        )
        .with_timeline(timeline);
        let payments = payments_from_tuples(&[(0, 0, 3, 4)], SimDuration::from_secs(3));
        drive(&mut engine, payments);
        assert_eq!(engine.stats.world_events_applied, 1);
        assert_eq!(engine.stats.tus_expired_by_close, 1);
        assert_eq!(engine.stats.completed, 0);
        assert_eq!(engine.stats.failed, 1);
        // Every lock was refunded; total value is conserved.
        for i in 0..3u32 {
            let ch = ChannelId::new(i);
            let (a, b) = engine.graph.endpoints(ch).unwrap();
            assert!(engine.funds.locked(ch, a).is_zero(), "lock left on {ch:?}");
            assert!(engine.funds.locked(ch, b).is_zero(), "lock left on {ch:?}");
        }
        assert_eq!(engine.funds.grand_total(), grand);
        assert!(engine.funds.verify_conservation());
        assert!(engine.graph.is_closed(ChannelId::new(2)));
    }

    /// A hub outage closes the hub's incident channels (payments through
    /// it fail while it is dark) and recovery reopens them (later
    /// payments succeed again). The topology epoch moves both times, so
    /// cached hub legs re-derive instead of serving the dead topology.
    #[test]
    fn hub_outage_darkens_and_recovery_restores() {
        let g = pcn_graph::star(4); // hub 0, leaves 1..3
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let assignment: std::collections::BTreeMap<NodeId, NodeId> =
            [(n(1), n(0)), (n(2), n(0)), (n(3), n(0))]
                .into_iter()
                .collect();
        let timeline = vec![WorldEvent::HubOutage {
            at: SimTime::from_micros(1_000_000),
            hub_rank: 0,
            recover_at: SimTime::from_micros(2_000_000),
        }];
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::splicer(assignment),
            EngineConfig::default(),
            SimRng::seed(2),
        )
        .with_timeline(timeline);
        let epoch_before = engine.graph.topology_epoch();
        // One payment per phase: before the outage, during, after.
        let payments = payments_from_tuples(
            &[(0, 1, 2, 1), (1_200, 1, 3, 1), (4_000, 2, 3, 1)],
            SimDuration::from_millis(700),
        );
        drive(&mut engine, payments);
        assert_eq!(
            engine.stats.world_events_applied, 2,
            "outage + recovery both count"
        );
        assert_eq!(engine.stats.completed, 2, "phases 1 and 3 succeed");
        assert_eq!(engine.stats.failed, 1, "the mid-outage payment dies");
        assert_eq!(engine.stats.unroutable, 1, "no plan while the hub is dark");
        // All three spokes reopened.
        assert_eq!(engine.graph.open_edge_count(), 3);
        assert!(
            engine.graph.topology_epoch() >= epoch_before + 6,
            "3 closures + 3 reopens must bump the epoch"
        );
        assert!(engine.funds.verify_conservation());
    }

    /// Overlapping outages on the same hub compose: the first recovery
    /// must not reopen channels a still-active outage claims; the hub
    /// stays dark until the *last* claim releases. Pure churn closes
    /// (no claim) are never reopened by a recovery.
    #[test]
    fn overlapping_outages_keep_the_hub_dark_until_the_last_recovery() {
        let g = pcn_graph::star(4); // hub 0
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let sec = |s: u64| SimTime::from_micros(s * 1_000_000);
        let timeline = vec![
            WorldEvent::HubOutage {
                at: sec(1),
                hub_rank: 0,
                recover_at: sec(3),
            },
            WorldEvent::HubOutage {
                at: sec(2),
                hub_rank: 0,
                recover_at: sec(5),
            },
        ];
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::shortest_path(),
            EngineConfig::default(),
            SimRng::seed(6),
        )
        .with_timeline(timeline);
        // One payment in the overlap window, one after the first
        // recovery (hub must STILL be dark), one after the second.
        let payments = payments_from_tuples(
            &[(2_200, 1, 2, 1), (3_500, 1, 3, 1), (5_500, 2, 3, 1)],
            SimDuration::from_millis(400),
        );
        drive(&mut engine, payments);
        assert_eq!(
            engine.stats.unroutable, 2,
            "both in-outage payments (incl. post-first-recovery) fail"
        );
        assert_eq!(engine.stats.completed, 1, "only the t=5.5s payment routes");
        assert_eq!(
            engine.graph.open_edge_count(),
            3,
            "all spokes reopen once the last claim releases"
        );
        assert_eq!(engine.stats.world_events_applied, 4);
    }

    /// ChannelOpen extends every dense side table (funds, queues,
    /// prices, endpoints) and the new channel is immediately routable.
    #[test]
    fn channel_open_grows_the_world() {
        // 0-1-2 line; a payment 0→2 after the event can use the new
        // direct 0-2 channel.
        let g = line(3);
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(1));
        let timeline = vec![WorldEvent::ChannelOpen {
            at: SimTime::from_micros(10_000),
            a_sel: 0,
            b_sel: 2,
            funds_per_side: Amount::from_tokens(50),
        }];
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::shortest_path(),
            EngineConfig::default(),
            SimRng::seed(3),
        )
        .with_timeline(timeline);
        // 5 tokens cannot cross the 1-token line, but fits the new
        // 50-token channel opened at 10 ms.
        let payments = payments_from_tuples(&[(20, 0, 2, 5)], SimDuration::from_secs(3));
        drive(&mut engine, payments);
        assert_eq!(engine.stats.world_events_applied, 1);
        assert_eq!(engine.graph.edge_count(), 3);
        assert_eq!(engine.queues.len(), 3);
        assert_eq!(engine.endpoints.len(), 3);
        assert_eq!(engine.endpoints[2], (n(0), n(2)));
        assert_eq!(engine.stats.completed, 1, "{}", engine.stats);
        let new_ch = ChannelId::new(2);
        assert_eq!(
            engine.funds.balance(new_ch, n(2)),
            Amount::from_tokens(55),
            "5 tokens crossed the freshly opened channel"
        );
        assert!(engine.funds.verify_conservation());
    }

    /// Rebalance resets drifted spendable balances on every open channel
    /// (closed tombstones are skipped) and bumps only moved channels.
    #[test]
    fn rebalance_equalizes_open_channels() {
        let mut g = line(3);
        let drifted = ChannelId::new(0);
        let closed = g.add_edge(n(0), n(2));
        g.close_channel(closed).unwrap();
        let funds = NetworkFunds::from_graph(&g, |ch, side| {
            if ch == drifted && side == n(0) {
                Amount::from_tokens(10)
            } else if ch == drifted {
                Amount::ZERO
            } else {
                Amount::from_tokens(4)
            }
        });
        let timeline = vec![WorldEvent::Rebalance {
            at: SimTime::from_micros(1000),
            policy: RebalancePolicy::Equalize,
        }];
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::shortest_path(),
            EngineConfig::default(),
            SimRng::seed(4),
        )
        .with_timeline(timeline);
        drive(&mut engine, Vec::new());
        assert_eq!(engine.stats.world_events_applied, 1);
        assert_eq!(engine.funds.balance(drifted, n(0)), Amount::from_tokens(5));
        assert_eq!(engine.funds.balance(drifted, n(1)), Amount::from_tokens(5));
        assert_eq!(
            engine.funds.channel_epoch(closed),
            0,
            "closed channels are not rebalanced"
        );
        assert_eq!(
            engine.funds.channel_epoch(ChannelId::new(1)),
            0,
            "already-even channels move nothing"
        );
    }

    /// World events pop before protocol events at the same timestamp
    /// (the world lane), so a payment arriving at the exact instant its
    /// only channel closes must observe the closed world.
    #[test]
    fn world_events_apply_before_same_instant_arrivals() {
        let g = line(2);
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let timeline = vec![WorldEvent::ChannelClose {
            at: SimTime::ZERO,
            selector: 0,
        }];
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::shortest_path(),
            EngineConfig::default(),
            SimRng::seed(5),
        )
        .with_timeline(timeline);
        let payments = payments_from_tuples(&[(0, 0, 1, 1)], SimDuration::from_secs(3));
        drive(&mut engine, payments);
        assert_eq!(engine.stats.unroutable, 1, "the closure won the instant");
        assert_eq!(engine.stats.completed, 0);
    }
}
