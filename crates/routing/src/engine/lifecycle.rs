//! The TU lifecycle: injection, hop traversal, settlement and aborts.
//!
//! TUs leave a transaction's backlog (windowed, rate-paced for
//! congestion-controlled schemes; blasted otherwise), lock funds hop by
//! hop, queue on dry channel directions, settle backwards as the
//! acknowledgement returns, and refund every locked hop on abort.

use std::sync::Arc;

use pcn_types::{ChannelId, SimTime, TuId, TxId};

use crate::scheduler::WaitQueue;
use crate::tu::TransactionUnit;

use super::{nth_hop, Engine, Ev};

/// Sends the next backlog TU of an already-looked-up transaction. With
/// `path_override` the TU goes on the given path (rate-controlled
/// injection); otherwise round-robin. Returns false when the backlog is
/// empty or the window is closed.
///
/// A free function over the disjoint engine fields it touches, so the
/// injection poll path (`on_inject`, the single most frequent event in a
/// saturated run) resolves its transaction exactly once.
fn try_send_tu(
    tus: &mut super::arena::TuArena,
    events: &mut pcn_sim::EventQueue<Ev>,
    state: &mut super::TxState,
    now: SimTime,
    tx: TxId,
    path_override: Option<usize>,
) -> bool {
    if state.resolved || state.backlog.is_empty() {
        return false;
    }
    let Some(flow) = state.flow.as_mut() else {
        return false;
    };
    let path_i = match path_override {
        Some(i) => i,
        None => {
            let i = state.next_path % flow.paths.len();
            state.next_path += 1;
            i
        }
    };
    if !flow.admits(path_i) {
        return false;
    }
    let amount = state.backlog.pop_front().expect("backlog non-empty");
    flow.outstanding[path_i] += 1;
    flow.refresh_admit(path_i);
    let plan = Arc::clone(&flow.paths);
    let deadline = state.payment.deadline;
    let id = tus.insert_with(|id| TransactionUnit {
        id,
        tx,
        amount,
        plan,
        flow_path: path_i,
        next_hop: 0,
        locked_hops: 0,
        marked: false,
        deadline,
        enqueued_at: None,
        retries: 0,
    });
    events.schedule_at(now, Ev::HopArrive(id));
    true
}

impl Engine {
    /// Sends the next backlog TU; see [`try_send_tu`].
    pub(super) fn send_next_tu(
        &mut self,
        now: SimTime,
        tx: TxId,
        path_override: Option<usize>,
    ) -> bool {
        let Some(state) = self.txs.get_mut(tx) else {
            return false;
        };
        try_send_tu(
            &mut self.tus,
            &mut self.events,
            state,
            now,
            tx,
            path_override,
        )
    }

    pub(super) fn on_inject(&mut self, now: SimTime, tx: TxId, path_i: usize) {
        let Some(state) = self.txs.get_mut(tx) else {
            return;
        };
        if state.resolved || state.flow.is_none() {
            return;
        }
        let sent = try_send_tu(
            &mut self.tus,
            &mut self.events,
            state,
            now,
            tx,
            Some(path_i),
        );
        let gap = if sent {
            // The pacing rate is only consulted on an actual send; rates
            // change solely at price ticks, so reading it after the send
            // is identical to reading it before.
            let rate = state
                .flow
                .as_ref()
                .expect("checked above")
                .rates
                .as_ref()
                .map(|r| r.rate(path_i))
                .unwrap_or(self.cfg.max_rate);
            let tu_tokens = self.cfg.max_tu.to_tokens_f64();
            pcn_types::SimDuration::from_secs_f64(tu_tokens / rate.max(self.cfg.min_rate))
        } else {
            // Window closed or backlog empty: poll again shortly.
            self.cfg
                .update_interval
                .div(4)
                .max(pcn_types::SimDuration::from_millis(10))
        };
        // Keep injecting while the transaction can still make its
        // deadline (sending never resolves the transaction, so the
        // resolved check above still holds here).
        if now + gap <= state.payment.deadline {
            self.events.schedule_after(gap, Ev::Inject(tx, path_i));
        }
    }

    // ---- hop machinery ----------------------------------------------------

    pub(super) fn on_hop_arrive(&mut self, now: SimTime, tu_id: TuId) {
        let Some(tu) = self.tus.get(tu_id) else {
            return;
        };
        if tu.next_hop == tu.path().hops() {
            self.deliver(now, tu_id);
            return;
        }
        if now >= tu.deadline {
            self.abort_tu(now, tu_id, false);
            return;
        }
        let hop = tu.next_hop;
        let (from, ch, to) = nth_hop(tu.path(), hop);
        let amount = tu.amount;
        let (tx, retries) = (tu.tx, tu.retries);
        if self.graph.is_closed(ch) {
            // The channel closed under a stale plan (dynamic world):
            // funds would still lock — the tombstone keeps its state —
            // but traversing a closed channel is not a thing. Abort and
            // refund; the flow replans lazily via the epoch-staled cache.
            self.abort_tu(now, tu_id, false);
            return;
        }
        if let Some(fault) = &self.fault {
            if fault.plan.drops(ch, tx, hop, retries) {
                // A dropped forward is indistinguishable from a lost
                // message: nothing was locked at this hop yet, so the
                // ordinary abort/refund path unwinds the earlier hops.
                self.stats.faults_injected += 1;
                self.abort_tu(now, tu_id, false);
                return;
            }
        }
        match self.funds.lock(ch, from, amount) {
            Ok(()) => {
                self.prices.record_arrival(ch, from, amount.to_tokens_f64());
                self.stats.overhead_msgs += 1;
                let tu = self.tus.get_mut(tu_id).expect("present");
                tu.next_hop += 1;
                tu.locked_hops += 1;
                tu.enqueued_at = None;
                let delay = self.forward_delay(ch, to, tx, hop, retries);
                self.events.schedule_after(delay, Ev::HopArrive(tu_id));
            }
            Err(_) => {
                if self.scheme.congestion_control {
                    let dir = self.dir_of(ch, from);
                    let deadline = self.tus.get(tu_id).expect("present").deadline;
                    let q = self.queue_mut(ch, dir);
                    if q.push(tu_id, amount, deadline, now) {
                        self.tus.get_mut(tu_id).expect("present").enqueued_at = Some(now);
                    } else {
                        // Queue overflow (Algorithm 2's capacity bound).
                        self.abort_tu(now, tu_id, false);
                    }
                } else {
                    self.abort_tu(now, tu_id, false);
                }
            }
        }
    }

    /// The delay before the TU's forward message reaches the next node,
    /// given that hop `hop` over `ch` toward `to` just locked. Honest
    /// engines (`fault: None`) return `cfg.hop_delay` untouched; an
    /// installed adversary may stretch it (griefer hold, channel jitter,
    /// rogue-hub stall/misorder). Every lock passes through here, so it
    /// doubles as the deadlock watchdog's progress bump.
    fn forward_delay(
        &mut self,
        ch: ChannelId,
        to: pcn_types::NodeId,
        tx: TxId,
        hop: usize,
        retries: u32,
    ) -> pcn_types::SimDuration {
        let Some(fault) = self.fault.as_mut() else {
            return self.cfg.hop_delay;
        };
        fault.progress += 1;
        let plan = &fault.plan;
        if plan.is_griefer(tx) {
            // The griefer acquired the lock honestly and now sits on it:
            // liquidity stays pinned until the deadline → abort → refund
            // lifecycle reclaims it.
            self.stats.griefed_locks += 1;
            self.stats.faults_injected += 1;
            return plan.griefer_hold.max(self.cfg.hop_delay);
        }
        let mut extra = plan.jitter(ch, tx, hop, retries);
        for &(node, behavior) in &fault.rogue_nodes {
            if node == to {
                extra += match behavior {
                    crate::fault::RogueBehavior::Stall => self.cfg.hop_delay.saturating_mul(8),
                    crate::fault::RogueBehavior::Misorder => {
                        if plan.misorders(ch, tx, hop, retries) {
                            self.cfg.hop_delay.saturating_mul(2)
                        } else {
                            pcn_types::SimDuration::ZERO
                        }
                    }
                };
            }
        }
        if extra.is_zero() {
            return self.cfg.hop_delay;
        }
        self.stats.faults_injected += 1;
        if !plan.is_adversarial(tx) {
            // An honest TU got stalled — the degradation the
            // `expect_bounded_stall` knob bounds.
            self.stats.max_stall_us = self.stats.max_stall_us.max(extra.as_micros());
        }
        self.cfg.hop_delay + extra
    }

    pub(super) fn deliver(&mut self, now: SimTime, tu_id: TuId) {
        let tu = self.tus.get(tu_id).expect("delivering a live TU");
        let hops = tu.path().hops();
        self.stats.delivered_tus += 1;
        // The acknowledgement walks back: the hop nearest the recipient
        // settles first.
        for i in (0..hops).rev() {
            let delay = self.cfg.hop_delay.saturating_mul((hops - 1 - i) as u64);
            self.events
                .schedule_at(now + delay, Ev::SettleHop(tu_id, i));
        }
        self.stats.overhead_msgs += hops as u64; // ack messages
        let total_delay = self.cfg.hop_delay.saturating_mul(hops as u64);
        self.events
            .schedule_at(now + total_delay, Ev::AckComplete(tu_id));
    }

    pub(super) fn on_settle_hop(&mut self, tu_id: TuId, hop: usize) {
        let Some(tu) = self.tus.get(tu_id) else {
            return;
        };
        let (from, ch, to) = nth_hop(tu.path(), hop);
        let amount = tu.amount;
        self.funds
            .settle(ch, from, amount)
            .expect("settling a locked hop");
        if let Some(fault) = self.fault.as_mut() {
            fault.progress += 1;
        }
        // Settling credits the reverse direction; queued reverse TUs may
        // now proceed.
        let rev_dir = self.dir_of(ch, to);
        self.events
            .schedule_at(self.events.now(), Ev::QueueDrain(ch.raw(), rev_dir));
    }

    pub(super) fn on_ack_complete(&mut self, now: SimTime, tu_id: TuId) {
        let Some(tu) = self.tus.remove(tu_id) else {
            return;
        };
        let Some(state) = self.txs.get_mut(tu.tx) else {
            return;
        };
        state.delivered += tu.amount;
        if let Some(flow) = state.flow.as_mut() {
            flow.outstanding[tu.flow_path] = flow.outstanding[tu.flow_path].saturating_sub(1);
            if !tu.marked {
                flow.windows.on_unmarked_success(tu.flow_path);
            }
            flow.refresh_admit(tu.flow_path);
        }
        if !state.resolved && state.delivered >= state.payment.value {
            state.resolved = true;
            self.stats.completed += 1;
            self.stats.completed_value += state.payment.value;
            if !self
                .fault
                .as_ref()
                .is_some_and(|f| f.plan.is_adversarial(state.payment.id))
            {
                self.stats.honest_completed += 1;
            }
            self.stats
                .latency
                .record(now.saturating_since(state.payment.created).as_secs_f64());
        }
    }

    /// Aborts a TU: removes it from any queue, refunds locked hops and
    /// either retries, re-queues the value (rate-controlled schemes), or
    /// abandons it.
    pub(super) fn abort_tu(&mut self, now: SimTime, tu_id: TuId, already_dequeued: bool) {
        let Some(tu) = self.tus.remove(tu_id) else {
            return;
        };
        self.stats.aborted_tus += 1;
        if tu.enqueued_at.is_some() && !already_dequeued {
            let (from, ch, _) = nth_hop(tu.path(), tu.next_hop);
            let dir = self.dir_of(ch, from);
            self.queue_mut(ch, dir).remove(tu_id);
        }
        // Refund every locked hop (instant unwinding).
        for i in 0..tu.locked_hops {
            let (from, ch, _) = nth_hop(tu.path(), i);
            self.funds
                .refund(ch, from, tu.amount)
                .expect("refunding a locked hop");
            self.stats.overhead_msgs += 1;
            let dir = self.dir_of(ch, from);
            self.events
                .schedule_at(self.events.now(), Ev::QueueDrain(ch.raw(), dir));
        }
        let Some(state) = self.txs.get_mut(tu.tx) else {
            return;
        };
        if let Some(flow) = state.flow.as_mut() {
            flow.outstanding[tu.flow_path] = flow.outstanding[tu.flow_path].saturating_sub(1);
            if tu.marked {
                flow.windows.on_marked_abort(tu.flow_path);
            }
            flow.refresh_admit(tu.flow_path);
        }
        if state.resolved {
            return;
        }
        if now >= state.payment.deadline {
            return; // The Deadline event settles the outcome.
        }
        if self.scheme.rate_control {
            // Value returns to the backlog; the injectors retry it.
            state.backlog.push_back(tu.amount);
        } else {
            let flow_len = state.flow.as_ref().map(|f| f.paths.len()).unwrap_or(0);
            if tu.retries < self.cfg.max_retries && flow_len > 1 {
                // Retry on the next path (Flash's alternate-path retry).
                let next_path = (tu.flow_path + 1) % flow_len;
                let flow = state.flow.as_mut().expect("flow_len > 0");
                flow.outstanding[next_path] += 1;
                flow.refresh_admit(next_path);
                let plan = Arc::clone(&flow.paths);
                let id = self.tus.insert_with(|id| TransactionUnit {
                    id,
                    tx: tu.tx,
                    amount: tu.amount,
                    plan,
                    flow_path: next_path,
                    next_hop: 0,
                    locked_hops: 0,
                    marked: false,
                    deadline: tu.deadline,
                    enqueued_at: None,
                    retries: tu.retries + 1,
                });
                // With the default zero backoff this is exactly the
                // historical immediate retry.
                self.events
                    .schedule_at(now + self.cfg.retry_backoff, Ev::HopArrive(id));
            } else {
                // Without rate control a lost TU sinks the transaction.
                self.fail_tx(tu.tx);
            }
        }
    }

    pub(super) fn fail_tx(&mut self, tx: TxId) {
        if let Some(state) = self.txs.get_mut(tx) {
            if !state.resolved {
                state.resolved = true;
                self.stats.failed += 1;
            }
        }
    }

    pub(super) fn on_deadline(&mut self, tx: TxId) {
        self.fail_tx(tx);
    }

    // ---- queues ------------------------------------------------------------

    pub(super) fn dir_of(&self, ch: ChannelId, from: pcn_types::NodeId) -> bool {
        self.endpoints[ch.index()].0 == from
    }

    pub(super) fn queue_mut(&mut self, ch: ChannelId, dir_from_a: bool) -> &mut WaitQueue {
        let pair = &mut self.queues[ch.index()];
        if dir_from_a {
            &mut pair.0
        } else {
            &mut pair.1
        }
    }

    pub(super) fn drain_queue(&mut self, now: SimTime, ch: ChannelId, dir_from_a: bool) {
        loop {
            let from = if dir_from_a {
                self.endpoints[ch.index()].0
            } else {
                self.endpoints[ch.index()].1
            };
            let available = self.funds.balance(ch, from);
            let Some(entry) = self.queue_mut(ch, dir_from_a).pop_eligible(available) else {
                break;
            };
            let tu_id = entry.tu;
            let Some(tu) = self.tus.get_mut(tu_id) else {
                continue;
            };
            let waited = now.saturating_since(entry.enqueued_at);
            if waited > self.cfg.queue_delay_threshold && !tu.marked {
                tu.marked = true;
                self.stats.marked_tus += 1;
            }
            if now >= tu.deadline {
                self.abort_tu(now, tu_id, true);
                continue;
            }
            tu.enqueued_at = None;
            let hop = tu.next_hop;
            let (_, _, to) = nth_hop(tu.path(), hop);
            let (tx, retries) = (tu.tx, tu.retries);
            self.funds
                .lock(ch, from, entry.amount)
                .expect("pop_eligible guarantees funds");
            self.prices
                .record_arrival(ch, from, entry.amount.to_tokens_f64());
            self.stats.overhead_msgs += 1;
            let tu = self.tus.get_mut(tu_id).expect("present");
            tu.next_hop += 1;
            tu.locked_hops += 1;
            let delay = self.forward_delay(ch, to, tx, hop, retries);
            self.events.schedule_after(delay, Ev::HopArrive(tu_id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{payments_from_tuples, Engine, EngineConfig};
    use crate::channel::NetworkFunds;
    use crate::scheme::SchemeConfig;
    use pcn_sim::SimRng;
    use pcn_types::{Amount, NodeId, SimDuration};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// A TU that times out mid-path must refund every hop it locked: at
    /// the end of the run no channel direction retains locked funds and
    /// conservation holds (the refund loop was untestable inside the
    /// monolith — it sat in a 70-line abort handler).
    #[test]
    fn timeout_refunds_all_locked_hops() {
        let mut g = pcn_graph::Graph::new(4);
        let chans: Vec<_> = (0..3)
            .map(|i| g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1)))
            .collect();
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let grand = funds.grand_total();
        // Deadline between the second and third hop (hops fire ~0/40/80 ms):
        // the TU locks two hops, then hits its deadline en route and must
        // unwind both locks.
        let payments = payments_from_tuples(&[(0, 0, 3, 4)], SimDuration::from_millis(60));
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::shortest_path(),
            EngineConfig::default(),
            SimRng::seed(1),
        );
        // Drive the loop in place (instead of the consuming `run`) so the
        // funds object stays inspectable afterwards.
        engine.horizon = payments
            .last()
            .map(|p| p.deadline + engine.cfg.update_interval)
            .unwrap();
        engine.payments = payments.into();
        let at = engine.payments.front().unwrap().created;
        engine.events.schedule_at(at, super::super::Ev::Arrival);
        while let Some((now, ev)) = engine.events.pop() {
            engine.handle(now, ev);
        }
        assert_eq!(engine.stats.completed, 0);
        assert_eq!(engine.stats.failed, 1);
        assert!(engine.stats.aborted_tus >= 1, "{}", engine.stats);
        for &ch in &chans {
            let (a, b) = engine.graph.endpoints(ch).unwrap();
            assert!(engine.funds.locked(ch, a).is_zero(), "lock left on {ch:?}");
            assert!(engine.funds.locked(ch, b).is_zero(), "lock left on {ch:?}");
        }
        assert_eq!(engine.funds.grand_total(), grand);
        assert!(engine.funds.verify_conservation());
    }

    /// Rate-controlled aborts return the TU's value to the backlog
    /// instead of failing the transaction.
    #[test]
    fn rate_controlled_abort_requeues_value() {
        let mut g = pcn_graph::Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let payments = payments_from_tuples(&[(0, 0, 2, 8)], SimDuration::from_secs(3));
        let mut engine = Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(2),
        );
        engine.horizon = payments[0].deadline + engine.cfg.update_interval;
        engine.payments = payments.into();
        let at = engine.payments.front().unwrap().created;
        engine.events.schedule_at(at, super::super::Ev::Arrival);
        // Drive until the flow exists and a TU is in flight.
        while engine.tus.is_empty() {
            let (now, ev) = engine.events.pop().expect("events pending");
            engine.handle(now, ev);
        }
        let tu_id = engine.tus.iter().next().unwrap().id;
        let tx = engine.tus.get(tu_id).unwrap().tx;
        let backlog_before = engine.txs.get(tx).unwrap().backlog.len();
        let amount = engine.tus.get(tu_id).unwrap().amount;
        let now = engine.events.now();
        engine.abort_tu(now, tu_id, false);
        let state = engine.txs.get(tx).unwrap();
        assert!(
            !state.resolved,
            "rate-controlled abort must not fail the tx"
        );
        assert_eq!(state.backlog.len(), backlog_before + 1);
        assert_eq!(*state.backlog.back().unwrap(), amount);
        assert_eq!(engine.stats.aborted_tus, 1);
    }

    /// Without rate control and no retry budget, a lost TU sinks its
    /// transaction immediately.
    #[test]
    fn uncontrolled_abort_fails_transaction() {
        let mut g = pcn_graph::Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(1));
        // 5 tokens through 1-token channels: first hop lock fails.
        let payments = payments_from_tuples(&[(0, 0, 2, 5)], SimDuration::from_secs(3));
        let stats = Engine::new(
            g,
            funds,
            SchemeConfig::shortest_path(),
            EngineConfig::default(),
            SimRng::seed(3),
        )
        .run(payments);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.failed, 1);
    }
}
