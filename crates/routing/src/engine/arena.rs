//! Dense arenas for the engine's hot state tables.
//!
//! The event loop touches transaction and TU state on every event; the
//! old `HashMap<TxId, …>` / `HashMap<TuId, …>` tables paid a hash and a
//! probe per touch. Both id spaces are engine-allocated, so the tables
//! can be arrays:
//!
//! * [`TxTable`] indexes [`TxState`] directly by the payment's
//!   sequential [`TxId`] (workload traces number payments densely from
//!   zero). Transactions live until the end of the run, so slots are
//!   never recycled.
//! * [`TuArena`] is a generational slab. A [`TuId`] is a packed
//!   `(generation, slot)` handle: the low 32 bits address the slot, the
//!   high 32 bits carry the slot's generation at allocation time. A
//!   slot is recycled (pushed on the free list) the moment its TU is
//!   removed — on settle, abort, or ack — **but its generation is
//!   bumped first**, so any event still in flight holding the old
//!   handle (a stale `SettleHop` after an abort, a `HopArrive` for a
//!   delivered TU) misses exactly like the old `HashMap::get` on a
//!   removed key did. Lookups are an index plus a generation compare —
//!   no hashing — and id reuse is invisible to the protocol logic.

use pcn_types::{TuId, TxId};

use crate::tu::TransactionUnit;

use super::TxState;

/// Transaction state table indexed by the dense sequential [`TxId`].
///
/// Payment ids must be dense (workload traces number them from zero):
/// the table grows to the largest id inserted.
pub(crate) struct TxTable {
    slots: Vec<Option<TxState>>,
    len: usize,
}

impl TxTable {
    pub(super) fn new() -> TxTable {
        TxTable {
            slots: Vec::new(),
            len: 0,
        }
    }

    pub(super) fn insert(&mut self, id: TxId, state: TxState) {
        let i = id.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        if self.slots[i].replace(state).is_none() {
            self.len += 1;
        }
    }

    pub(super) fn get(&self, id: TxId) -> Option<&TxState> {
        self.slots.get(id.index())?.as_ref()
    }

    pub(super) fn get_mut(&mut self, id: TxId) -> Option<&mut TxState> {
        self.slots.get_mut(id.index())?.as_mut()
    }

    #[cfg(test)]
    pub(super) fn len(&self) -> usize {
        self.len
    }
}

struct TuSlot {
    generation: u32,
    tu: Option<TransactionUnit>,
}

/// Generational slab of in-flight [`TransactionUnit`]s; see the module
/// docs for the id-reuse rules.
pub(crate) struct TuArena {
    slots: Vec<TuSlot>,
    free: Vec<u32>,
    live: usize,
}

fn pack(generation: u32, slot: usize) -> TuId {
    TuId::new(((generation as u64) << 32) | slot as u64)
}

fn unpack(id: TuId) -> (u32, usize) {
    let raw = id.raw();
    ((raw >> 32) as u32, (raw & u32::MAX as u64) as usize)
}

impl TuArena {
    pub(super) fn new() -> TuArena {
        TuArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Allocates a slot and stores the TU `build` constructs for the
    /// slot's handle (the TU records its own id).
    pub(super) fn insert_with(&mut self, build: impl FnOnce(TuId) -> TransactionUnit) -> TuId {
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                self.slots.push(TuSlot {
                    generation: 0,
                    tu: None,
                });
                self.slots.len() - 1
            }
        };
        let id = pack(self.slots[slot].generation, slot);
        let tu = build(id);
        debug_assert_eq!(tu.id, id);
        self.slots[slot].tu = Some(tu);
        self.live += 1;
        id
    }

    pub(super) fn get(&self, id: TuId) -> Option<&TransactionUnit> {
        let (generation, slot) = unpack(id);
        let s = self.slots.get(slot)?;
        if s.generation != generation {
            return None;
        }
        s.tu.as_ref()
    }

    pub(super) fn get_mut(&mut self, id: TuId) -> Option<&mut TransactionUnit> {
        let (generation, slot) = unpack(id);
        let s = self.slots.get_mut(slot)?;
        if s.generation != generation {
            return None;
        }
        s.tu.as_mut()
    }

    /// Removes and returns the TU. The slot's generation is bumped
    /// before it joins the free list, so the handle (and any copy of it
    /// buried in not-yet-delivered events) can never resolve again.
    pub(super) fn remove(&mut self, id: TuId) -> Option<TransactionUnit> {
        let (generation, slot) = unpack(id);
        let s = self.slots.get_mut(slot)?;
        if s.generation != generation {
            return None;
        }
        let tu = s.tu.take()?;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        Some(tu)
    }

    #[cfg(test)]
    pub(super) fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Pre-sizes the slab (steady-state allocation-freedom in tests).
    #[cfg(test)]
    pub(super) fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
        self.free.reserve(additional);
    }

    /// Live TUs in slot order (deterministic — the world stage scans
    /// this to expire TUs whose path crosses a closing channel).
    pub(super) fn iter(&self) -> impl Iterator<Item = &TransactionUnit> {
        self.slots.iter().filter_map(|s| s.tu.as_ref())
    }

    #[cfg(test)]
    pub(super) fn len(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_graph::Path;
    use pcn_types::{Amount, NodeId, SimTime};
    use std::sync::Arc;

    fn dummy_tu(id: TuId, tag: u64) -> TransactionUnit {
        let plan: Arc<[Path]> = vec![Path::trivial(NodeId::new(0))].into();
        TransactionUnit {
            id,
            tx: TxId::new(tag),
            amount: Amount::from_tokens(1),
            plan,
            flow_path: 0,
            next_hop: 0,
            locked_hops: 0,
            marked: false,
            deadline: SimTime::ZERO,
            enqueued_at: None,
            retries: 0,
        }
    }

    #[test]
    fn slots_recycle_but_stale_handles_miss() {
        let mut arena = TuArena::new();
        let a = arena.insert_with(|id| dummy_tu(id, 1));
        let b = arena.insert_with(|id| dummy_tu(id, 2));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a).unwrap().tx, TxId::new(1));
        let removed = arena.remove(a).unwrap();
        assert_eq!(removed.tx, TxId::new(1));
        // The stale handle misses every accessor — the HashMap-removal
        // semantics events rely on.
        assert!(arena.get(a).is_none());
        assert!(arena.get_mut(a).is_none());
        assert!(arena.remove(a).is_none());
        // The next allocation reuses the slot under a fresh generation:
        // a distinct id, same low 32 bits.
        let c = arena.insert_with(|id| dummy_tu(id, 3));
        assert_ne!(a, c);
        assert_eq!(a.raw() & u32::MAX as u64, c.raw() & u32::MAX as u64);
        assert!(arena.get(a).is_none(), "old handle must not see the new TU");
        assert_eq!(arena.get(c).unwrap().tx, TxId::new(3));
        assert_eq!(arena.get(b).unwrap().tx, TxId::new(2));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn iteration_is_slot_ordered() {
        let mut arena = TuArena::new();
        let ids: Vec<TuId> = (0..4)
            .map(|i| arena.insert_with(|id| dummy_tu(id, i)))
            .collect();
        arena.remove(ids[1]).unwrap();
        let seen: Vec<u64> = arena.iter().map(|tu| tu.tx.raw()).collect();
        assert_eq!(seen, vec![0, 2, 3]);
        assert!(!arena.is_empty());
    }

    #[test]
    fn tx_table_grows_and_counts() {
        let mut table = TxTable::new();
        assert!(table.get(TxId::new(0)).is_none());
        let state = |v: u64| TxState {
            payment: crate::tu::Payment {
                id: TxId::new(v),
                source: NodeId::new(0),
                dest: NodeId::new(1),
                value: Amount::from_tokens(v),
                created: SimTime::ZERO,
                deadline: SimTime::ZERO,
            },
            flow: None,
            backlog: Default::default(),
            delivered: Amount::ZERO,
            resolved: false,
            next_path: 0,
        };
        table.insert(TxId::new(3), state(3));
        table.insert(TxId::new(0), state(0));
        assert_eq!(table.len(), 2);
        assert!(table.get(TxId::new(1)).is_none());
        assert_eq!(
            table.get(TxId::new(3)).unwrap().payment.value,
            Amount::from_tokens(3)
        );
        table.get_mut(TxId::new(0)).unwrap().resolved = true;
        assert!(table.get(TxId::new(0)).unwrap().resolved);
    }
}
