//! Per-path congestion windows (eqs. 27–28).
//!
//! The window `w_p` bounds the number of unfinished TUs on path `p`.
//! A marked TU that gets aborted shrinks the window additively by β
//! (eq. 27); an unmarked transmitted TU grows every window by
//! `γ / Σ w_p'` (eq. 28) — multiplicative-decrease / shared additive-
//! increase in the CUBIC spirit the paper cites.

/// Window state for one demand's path set.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowController {
    windows: Vec<f64>,
    beta: f64,
    gamma: f64,
    min_window: f64,
    max_window: f64,
}

impl WindowController {
    /// Creates windows of `initial` TUs for `paths` paths.
    ///
    /// # Panics
    ///
    /// Panics unless `initial ≥ 1`, `beta ≥ 0`, `gamma ≥ 0`.
    pub fn new(paths: usize, initial: f64, beta: f64, gamma: f64) -> Self {
        assert!(initial >= 1.0, "windows start at one TU or more");
        assert!(beta >= 0.0 && gamma >= 0.0, "factors must be non-negative");
        WindowController {
            windows: vec![initial; paths],
            beta,
            gamma,
            min_window: 1.0,
            max_window: 10_000.0,
        }
    }

    /// Window of path `i` (in TUs).
    pub fn window(&self, i: usize) -> f64 {
        self.windows[i]
    }

    /// Whether path `i` may admit another TU given `outstanding` unfinished
    /// TUs on it.
    pub fn admits(&self, i: usize, outstanding: usize) -> bool {
        (outstanding as f64) < self.windows[i]
    }

    /// Eq. 27: a marked TU on path `i` was aborted.
    pub fn on_marked_abort(&mut self, i: usize) {
        self.windows[i] = (self.windows[i] - self.beta).max(self.min_window);
    }

    /// Eq. 28: an unmarked TU on path `i` was transmitted successfully.
    pub fn on_unmarked_success(&mut self, i: usize) {
        let total: f64 = self.windows.iter().sum();
        self.windows[i] = (self.windows[i] + self.gamma / total.max(1.0)).min(self.max_window);
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the controller has no paths.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_shrinks_success_grows() {
        let mut w = WindowController::new(2, 20.0, 10.0, 0.1);
        w.on_marked_abort(0);
        assert_eq!(w.window(0), 10.0);
        w.on_marked_abort(0);
        assert_eq!(w.window(0), 1.0); // floored
        let before = w.window(1);
        w.on_unmarked_success(1);
        assert!(w.window(1) > before);
    }

    #[test]
    fn admits_respects_window() {
        let w = WindowController::new(1, 2.0, 10.0, 0.1);
        assert!(w.admits(0, 0));
        assert!(w.admits(0, 1));
        assert!(!w.admits(0, 2));
    }

    #[test]
    fn growth_shared_across_paths() {
        // eq. 28 divides by the total window mass: growth slows as windows
        // grow.
        let mut w = WindowController::new(2, 1.0, 10.0, 1.0);
        w.on_unmarked_success(0);
        let first_step = w.window(0) - 1.0;
        for _ in 0..100 {
            w.on_unmarked_success(0);
        }
        let before = w.window(0);
        w.on_unmarked_success(0);
        let late_step = w.window(0) - before;
        assert!(late_step < first_step, "{late_step} < {first_step}");
    }

    #[test]
    fn paper_constants_shape() {
        // β = 10, γ = 0.1 (§V-A): one abort wipes out many successes.
        let mut w = WindowController::new(1, 15.0, 10.0, 0.1);
        for _ in 0..10 {
            w.on_unmarked_success(0);
        }
        let grown = w.window(0);
        w.on_marked_abort(0);
        assert!(w.window(0) < grown - 9.0);
    }

    #[test]
    #[should_panic(expected = "windows start at one")]
    fn zero_initial_panics() {
        WindowController::new(1, 0.5, 1.0, 1.0);
    }
}
