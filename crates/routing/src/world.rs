//! The world-event vocabulary: pure-data descriptions of mid-run
//! environment mutations.
//!
//! A static scenario freezes the world at `t = 0`; a **timeline** of
//! [`WorldEvent`]s makes it dynamic — arrival rates shift, hubs fail and
//! recover, channels close and open, liquidity rebalances — while the
//! run stays fully deterministic. Events are materialized once per
//! scenario (workload layer) and applied by the engine's `world`
//! lifecycle stage at their timestamps, on the event queue's *world
//! lane* ([`pcn_sim::EventQueue::schedule_world_at`]): at any instant,
//! the environment mutates before any protocol event observes it.
//!
//! Events name their targets by **selector**, not by id: a selector is
//! resolved against the run's own view of the world at application time
//! (`selector % open_channel_count`, hub rank within the scheme's hub
//! set), so one timeline drives every scheme's topology — flat, rewired
//! multi-star, or single star — without baking a specific graph into
//! the spec.

use pcn_types::{Amount, SimTime};

/// How a [`WorldEvent::Rebalance`] redistributes liquidity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebalancePolicy {
    /// Split each open channel's *spendable* value evenly between its
    /// two directions (locked in-flight value is untouched; any odd
    /// millitoken goes to the `a` side). Models an out-of-band
    /// rebalancing service resetting accumulated drift.
    Equalize,
}

/// One mid-run environment mutation, applied deterministically at
/// [`WorldEvent::at`]. Pure data: a timeline is a sorted `Vec` of these.
#[derive(Clone, Debug, PartialEq)]
pub enum WorldEvent {
    /// Arrival-rate phase boundary: from `at` on, the workload generates
    /// arrivals at `factor ×` the base rate. Consumed by the trace
    /// generator (the trace embeds the phased gaps); the engine applies
    /// it as a marker so `world_events_applied` reflects the full
    /// timeline.
    RateShift {
        /// When the new phase starts.
        at: SimTime,
        /// Multiplier on the base arrival rate.
        factor: f64,
    },
    /// A hub goes dark at `at` and recovers at `recover_at`: every
    /// channel incident to it closes, then reopens. `hub_rank` indexes
    /// the run's hub set (assigned hubs for hub schemes, the
    /// highest-degree nodes otherwise), modulo its size.
    HubOutage {
        /// Outage start.
        at: SimTime,
        /// Rank of the victim within the scheme's hub set.
        hub_rank: usize,
        /// When the hub's channels reopen.
        recover_at: SimTime,
    },
    /// One open channel closes (tombstoned: searches stop seeing it,
    /// in-flight TUs crossing it are expired and refunded, its funds
    /// stay conserved but inert). The victim is the `selector %
    /// open_count`-th open channel in ascending id order.
    ChannelClose {
        /// When the channel closes.
        at: SimTime,
        /// Pseudo-random victim selector.
        selector: u64,
    },
    /// A brand-new channel opens between two distinct nodes (`a_sel` /
    /// `b_sel` modulo the node count, nudged apart on collision), funded
    /// with `funds_per_side` on each side.
    ChannelOpen {
        /// When the channel opens.
        at: SimTime,
        /// Endpoint selector for one side.
        a_sel: u64,
        /// Endpoint selector for the other side.
        b_sel: u64,
        /// Initial spendable balance per side.
        funds_per_side: Amount,
    },
    /// Liquidity reset across every open channel per the policy.
    Rebalance {
        /// When the rebalance runs.
        at: SimTime,
        /// Redistribution policy.
        policy: RebalancePolicy,
    },
}

impl WorldEvent {
    /// The timestamp this event applies at.
    pub fn at(&self) -> SimTime {
        match self {
            WorldEvent::RateShift { at, .. }
            | WorldEvent::HubOutage { at, .. }
            | WorldEvent::ChannelClose { at, .. }
            | WorldEvent::ChannelOpen { at, .. }
            | WorldEvent::Rebalance { at, .. } => *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_covers_every_variant() {
        let t = SimTime::from_micros(7);
        let events = [
            WorldEvent::RateShift { at: t, factor: 2.0 },
            WorldEvent::HubOutage {
                at: t,
                hub_rank: 0,
                recover_at: t,
            },
            WorldEvent::ChannelClose { at: t, selector: 3 },
            WorldEvent::ChannelOpen {
                at: t,
                a_sel: 1,
                b_sel: 2,
                funds_per_side: Amount::from_tokens(5),
            },
            WorldEvent::Rebalance {
                at: t,
                policy: RebalancePolicy::Equalize,
            },
        ];
        assert!(events.iter().all(|e| e.at() == t));
    }
}
