//! Declarative descriptions of the five routing schemes under evaluation.
//!
//! The engine implements one general machine (queues, prices, windows,
//! per-hop forwarding); a [`SchemeConfig`] tells it how a specific scheme
//! behaves: where routes are computed, over which view of the network,
//! with what path strategy, and whether the rate/congestion controllers of
//! §IV-D run.

use std::collections::BTreeMap;

use pcn_types::{Amount, NodeId, SimDuration};

use crate::paths::{BalanceView, PathSelect};
use crate::scheduler::Discipline;

/// Where a payment's route computation is serviced, and how expensive it
/// is. Source routing burdens lightweight senders; hub routing runs on
/// provisioned smooth nodes (§III-C "the senders' performance is severely
/// challenged").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComputeModel {
    /// Seconds of compute per graph edge scanned by one route computation
    /// on a *client* device.
    pub client_secs_per_edge: f64,
    /// Same on a provisioned hub.
    pub hub_secs_per_edge: f64,
    /// Extra fixed service time per transaction at the computing node
    /// (models A2L's cryptographic primitives; zero elsewhere).
    pub crypto_overhead: SimDuration,
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel {
            client_secs_per_edge: 30e-6,
            hub_secs_per_edge: 0.6e-6,
            crypto_overhead: SimDuration::ZERO,
        }
    }
}

/// How payments find their way from sender to recipient.
#[derive(Clone, Debug, PartialEq)]
pub enum RouteVia {
    /// Source routing over the full graph (Spider).
    Direct,
    /// Via assigned hubs: sender → its hub ⇒ k paths between hubs ⇒
    /// recipient's hub → recipient (Splicer's multi-star, Fig. 2b).
    Hubs {
        /// client → assigned hub.
        assignment: BTreeMap<NodeId, NodeId>,
    },
    /// Via the k best-connected landmarks: shortest path to each landmark,
    /// then landmark → recipient (Flare/SilentWhispers/SpeedyMurmurs).
    Landmarks {
        /// The landmark nodes.
        landmarks: Vec<NodeId>,
    },
    /// Every payment crosses one central hub (TumbleBit/A2L star, Fig. 2a).
    SingleHub {
        /// The hub.
        hub: NodeId,
    },
    /// Flash: payments above the threshold use max-flow path decomposition;
    /// smaller ones take a random precomputed shortest path.
    FlashMaxFlow {
        /// Elephant/mouse boundary.
        elephant_threshold: Amount,
    },
}

impl RouteVia {
    /// The scheme's hub set, sorted and deduplicated (empty for
    /// hub-less schemes). One definition serves both the engine's
    /// hub-count accounting and the world stage's outage-rank
    /// resolution, so the two can never diverge.
    pub fn hub_set(&self) -> Vec<NodeId> {
        match self {
            RouteVia::Hubs { assignment } => {
                let mut hubs: Vec<NodeId> = assignment.values().copied().collect();
                hubs.sort();
                hubs.dedup();
                hubs
            }
            RouteVia::SingleHub { hub } => vec![*hub],
            _ => Vec::new(),
        }
    }
}

/// Complete behavioural description of a scheme run by the engine.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemeConfig {
    /// Display name (matches the paper's figures).
    pub name: String,
    /// Path strategy (Table II's "path type").
    pub path_select: PathSelect,
    /// Number of paths k (Table II's "path number"; paper default 5).
    pub num_paths: usize,
    /// Queue scheduling discipline (Table II's "scheduling algorithm").
    pub discipline: Discipline,
    /// Run the price-based rate controller of eq. 26?
    pub rate_control: bool,
    /// Run the queue/window congestion controller (Algorithm 2 lines
    /// 10–18)? Without it, TUs that meet an empty channel fail immediately
    /// (Lightning-style).
    pub congestion_control: bool,
    /// Routing topology/ownership.
    pub route_via: RouteVia,
    /// Whether path computation sees live balances or only capacities.
    pub balance_view: BalanceView,
    /// Whether route computation runs at the sender (source routing) or a
    /// hub.
    pub compute_at_source: bool,
    /// Compute-cost model.
    pub compute: ComputeModel,
}

impl SchemeConfig {
    /// Splicer (this paper): hub routing on fresh state, EDW paths,
    /// rate + congestion control, LIFO queues.
    pub fn splicer(assignment: BTreeMap<NodeId, NodeId>) -> SchemeConfig {
        SchemeConfig {
            name: "Splicer".into(),
            path_select: PathSelect::Edw,
            num_paths: pcn_types::constants::DEFAULT_PATHS,
            discipline: Discipline::Lifo,
            rate_control: true,
            congestion_control: true,
            route_via: RouteVia::Hubs { assignment },
            balance_view: BalanceView::Live,
            compute_at_source: false,
            compute: ComputeModel::default(),
        }
    }

    /// Spider \[9\]: source routing, packetized multi-path with rate and
    /// congestion control, but per-sender computation over capacity-only
    /// knowledge.
    pub fn spider() -> SchemeConfig {
        SchemeConfig {
            name: "Spider".into(),
            path_select: PathSelect::Edw,
            num_paths: 4,
            discipline: Discipline::Lifo,
            rate_control: true,
            congestion_control: true,
            route_via: RouteVia::Direct,
            balance_view: BalanceView::CapacityOnly,
            compute_at_source: true,
            compute: ComputeModel::default(),
        }
    }

    /// Flash \[10\]: modified max-flow for elephants, random precomputed
    /// shortest path for mice; no rate control.
    pub fn flash(elephant_threshold: Amount) -> SchemeConfig {
        SchemeConfig {
            name: "Flash".into(),
            path_select: PathSelect::Eds,
            num_paths: 4,
            discipline: Discipline::Fifo,
            rate_control: false,
            congestion_control: false,
            route_via: RouteVia::FlashMaxFlow { elephant_threshold },
            balance_view: BalanceView::CapacityOnly,
            compute_at_source: true,
            compute: ComputeModel::default(),
        }
    }

    /// Landmark routing \[6, 29, 30\]: k distinct landmark-relayed shortest
    /// paths, no rate control.
    pub fn landmark(landmarks: Vec<NodeId>) -> SchemeConfig {
        SchemeConfig {
            name: "Landmark".into(),
            path_select: PathSelect::Eds,
            num_paths: landmarks.len().max(1),
            discipline: Discipline::Fifo,
            rate_control: false,
            congestion_control: false,
            route_via: RouteVia::Landmarks { landmarks },
            balance_view: BalanceView::CapacityOnly,
            compute_at_source: true,
            compute: ComputeModel::default(),
        }
    }

    /// A2L \[4\]: a single PCH star with per-transaction cryptographic
    /// overhead at the hub.
    pub fn a2l(hub: NodeId, crypto_overhead: SimDuration) -> SchemeConfig {
        SchemeConfig {
            name: "A2L".into(),
            path_select: PathSelect::Eds,
            num_paths: 1,
            discipline: Discipline::Fifo,
            rate_control: false,
            congestion_control: false,
            route_via: RouteVia::SingleHub { hub },
            balance_view: BalanceView::Live,
            compute_at_source: false,
            compute: ComputeModel {
                crypto_overhead,
                ..ComputeModel::default()
            },
        }
    }

    /// A naive single shortest-path scheme without any control — the
    /// deadlock-prone strawman used in the deadlock demonstration.
    pub fn shortest_path() -> SchemeConfig {
        SchemeConfig {
            name: "ShortestPath".into(),
            path_select: PathSelect::Eds,
            num_paths: 1,
            discipline: Discipline::Fifo,
            rate_control: false,
            congestion_control: false,
            route_via: RouteVia::Direct,
            balance_view: BalanceView::CapacityOnly,
            compute_at_source: true,
            compute: ComputeModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splicer_defaults_match_paper() {
        let s = SchemeConfig::splicer(BTreeMap::new());
        assert_eq!(s.name, "Splicer");
        assert_eq!(s.path_select, PathSelect::Edw);
        assert_eq!(s.num_paths, 5);
        assert_eq!(s.discipline, Discipline::Lifo);
        assert!(s.rate_control && s.congestion_control);
        assert!(!s.compute_at_source);
        assert_eq!(s.balance_view, BalanceView::Live);
    }

    #[test]
    fn spider_is_source_routing() {
        let s = SchemeConfig::spider();
        assert!(s.compute_at_source);
        assert_eq!(s.balance_view, BalanceView::CapacityOnly);
        assert!(s.rate_control);
    }

    #[test]
    fn a2l_has_crypto_overhead() {
        let s = SchemeConfig::a2l(NodeId::new(0), SimDuration::from_millis(20));
        assert_eq!(s.compute.crypto_overhead, SimDuration::from_millis(20));
        assert!(matches!(s.route_via, RouteVia::SingleHub { .. }));
        assert!(!s.rate_control);
    }

    #[test]
    fn flash_thresholded() {
        let s = SchemeConfig::flash(Amount::from_tokens(20));
        match s.route_via {
            RouteVia::FlashMaxFlow { elephant_threshold } => {
                assert_eq!(elephant_threshold, Amount::from_tokens(20));
            }
            _ => panic!("wrong route_via"),
        }
    }

    #[test]
    fn compute_model_hub_faster_than_client() {
        let c = ComputeModel::default();
        assert!(c.hub_secs_per_edge < c.client_secs_per_edge / 10.0);
    }
}
