//! The discrete-event PCN engine.
//!
//! One general machine executes every scheme: payment arrivals pass
//! through a route-computation service queue (source device or hub), the
//! resulting path plan feeds a per-transaction flow (TU backlog + rate
//! controller + windows for rate-controlled schemes, or an immediate
//! multi-path blast for the others), TUs traverse hops with per-hop
//! delay, lock funds HTLC-style, queue when a channel direction lacks
//! funds (congestion-controlled schemes only), get marked when queueing
//! exceeds the threshold T, and settle hop-by-hop as the acknowledgement
//! travels back. Prices tick every τ (eqs. 21–26).
//!
//! Simplifications vs. a production deployment, documented per DESIGN.md:
//! channel processing rate `r_process` is unbounded (congestion arises
//! from funds, queues and windows); failure unwinding refunds instantly
//! (the refund messages are counted in overhead but not delayed).

use std::collections::{HashMap, VecDeque};

use pcn_graph::{max_flow, Graph, Path};
use pcn_sim::{EventQueue, SimRng};
use pcn_types::{
    Amount, ChannelId, NodeId, SimDuration, SimTime, TuId, TxId,
};

use crate::channel::NetworkFunds;
use crate::paths::{select_paths, BalanceView, PathSelect};
use crate::prices::PriceTable;
use crate::rate::RateController;
use crate::scheduler::WaitQueue;
use crate::scheme::{RouteVia, SchemeConfig};
use crate::stats::RunStats;
use crate::tu::{split_demand, Payment, TransactionUnit};
use crate::window::WindowController;

/// Engine tuning knobs (protocol constants of §V-A plus controller gains).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// One-way per-hop message delay.
    pub hop_delay: SimDuration,
    /// Price/probe update interval τ (paper: 200 ms).
    pub update_interval: SimDuration,
    /// Transaction timeout (paper: 3 s).
    pub tx_timeout: SimDuration,
    /// Queueing-delay marking threshold T (paper: 400 ms).
    pub queue_delay_threshold: SimDuration,
    /// Per-queue value bound (paper: 8000 tokens).
    pub queue_capacity: Amount,
    /// Min TU value (paper: 1 token).
    pub min_tu: Amount,
    /// Max TU value (paper: 4 tokens).
    pub max_tu: Amount,
    /// Capacity-price gain κ (eq. 21).
    pub kappa: f64,
    /// Imbalance-price gain η (eq. 22).
    pub eta: f64,
    /// Rate-update gain α (eq. 26).
    pub alpha: f64,
    /// Fee threshold T_fee (eq. 24).
    pub t_fee: f64,
    /// Window decrease β (eq. 27; paper: 10).
    pub beta: f64,
    /// Window increase γ (eq. 28; paper: 0.1).
    pub gamma: f64,
    /// Rate floor (tokens/sec).
    pub min_rate: f64,
    /// Rate ceiling (tokens/sec).
    pub max_rate: f64,
    /// Starting per-path rate (tokens/sec).
    pub initial_rate: f64,
    /// Starting per-path window (TUs).
    pub initial_window: f64,
    /// TU retry budget after a failed attempt (Flash uses 1).
    pub max_retries: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            hop_delay: SimDuration::from_millis(40),
            update_interval: pcn_types::constants::UPDATE_INTERVAL,
            tx_timeout: pcn_types::constants::TX_TIMEOUT,
            queue_delay_threshold: pcn_types::constants::QUEUE_DELAY_THRESHOLD,
            queue_capacity: pcn_types::constants::QUEUE_CAPACITY,
            min_tu: pcn_types::constants::MIN_TU,
            max_tu: pcn_types::constants::MAX_TU,
            kappa: 0.002,
            eta: 0.01,
            alpha: 0.4,
            t_fee: 0.1,
            beta: pcn_types::constants::WINDOW_BETA,
            gamma: pcn_types::constants::WINDOW_GAMMA,
            min_rate: 1.0,
            max_rate: 500.0,
            initial_rate: 50.0,
            initial_window: 20.0,
            max_retries: 0,
        }
    }
}

#[derive(Debug)]
enum Ev {
    Arrival,
    ComputeDone(TxId),
    Inject(TxId, usize),
    HopArrive(TuId),
    SettleHop(TuId, usize),
    AckComplete(TuId),
    PriceTick,
    Deadline(TxId),
    QueueDrain(u32, bool),
}

struct FlowState {
    paths: Vec<Path>,
    rates: Option<RateController>,
    windows: WindowController,
    outstanding: Vec<usize>,
}

struct TxState {
    payment: Payment,
    flow: Option<FlowState>,
    backlog: VecDeque<Amount>,
    delivered: Amount,
    resolved: bool,
    next_path: usize,
}

/// The simulation engine for one (topology, funds, scheme, workload) run.
pub struct Engine {
    cfg: EngineConfig,
    scheme: SchemeConfig,
    graph: Graph,
    funds: NetworkFunds,
    prices: PriceTable,
    /// Per channel: (queue a→b, queue b→a).
    queues: Vec<(WaitQueue, WaitQueue)>,
    endpoints: Vec<(NodeId, NodeId)>,
    txs: HashMap<TxId, TxState>,
    active: Vec<TxId>,
    tus: HashMap<TuId, TransactionUnit>,
    retries: HashMap<TuId, u32>,
    node_busy: Vec<SimTime>,
    events: EventQueue<Ev>,
    stats: RunStats,
    rng: SimRng,
    next_tu: u64,
    payments: VecDeque<Payment>,
    horizon: SimTime,
    mice_cache: HashMap<(NodeId, NodeId), Vec<Path>>,
    hub_count: usize,
}

impl Engine {
    /// Creates an engine over a topology, its channel funds, a scheme and
    /// the config.
    pub fn new(
        graph: Graph,
        funds: NetworkFunds,
        scheme: SchemeConfig,
        cfg: EngineConfig,
        rng: SimRng,
    ) -> Engine {
        let endpoints: Vec<(NodeId, NodeId)> = graph
            .edges()
            .map(|c| graph.endpoints(c).expect("dense edge ids"))
            .collect();
        let queues = endpoints
            .iter()
            .map(|_| {
                (
                    WaitQueue::new(scheme.discipline, cfg.queue_capacity),
                    WaitQueue::new(scheme.discipline, cfg.queue_capacity),
                )
            })
            .collect();
        let prices = PriceTable::new(endpoints.clone());
        let node_busy = vec![SimTime::ZERO; graph.node_count()];
        let hub_count = match &scheme.route_via {
            RouteVia::Hubs { assignment } => {
                let mut hubs: Vec<NodeId> = assignment.values().copied().collect();
                hubs.sort();
                hubs.dedup();
                hubs.len()
            }
            RouteVia::SingleHub { .. } => 1,
            _ => 0,
        };
        Engine {
            cfg,
            scheme,
            graph,
            funds,
            prices,
            queues,
            endpoints,
            txs: HashMap::new(),
            active: Vec::new(),
            tus: HashMap::new(),
            retries: HashMap::new(),
            node_busy,
            events: EventQueue::new(),
            stats: RunStats::default(),
            rng,
            next_tu: 0,
            payments: VecDeque::new(),
            horizon: SimTime::ZERO,
            mice_cache: HashMap::new(),
            hub_count,
        }
    }

    /// Runs the engine over a pre-generated payment list (must be sorted
    /// by arrival time) and returns the statistics.
    pub fn run(mut self, payments: Vec<Payment>) -> RunStats {
        debug_assert!(payments.windows(2).all(|w| w[0].created <= w[1].created));
        self.horizon = payments
            .last()
            .map(|p| p.deadline + self.cfg.update_interval)
            .unwrap_or(SimTime::ZERO);
        self.payments = payments.into();
        if let Some(first) = self.payments.front() {
            let at = first.created;
            self.events.schedule_at(at, Ev::Arrival);
        }
        self.events
            .schedule_after(self.cfg.update_interval, Ev::PriceTick);
        while let Some((now, ev)) = self.events.pop() {
            self.handle(now, ev);
        }
        self.stats.drained_directions_end = self.funds.drained_directions();
        debug_assert!(self.funds.verify_conservation());
        debug_assert!(self.stats.is_consistent());
        self.stats
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrival => self.on_arrival(now),
            Ev::ComputeDone(tx) => self.on_compute_done(now, tx),
            Ev::Inject(tx, path_i) => self.on_inject(now, tx, path_i),
            Ev::HopArrive(tu) => self.on_hop_arrive(now, tu),
            Ev::SettleHop(tu, hop) => self.on_settle_hop(tu, hop),
            Ev::AckComplete(tu) => self.on_ack_complete(now, tu),
            Ev::PriceTick => self.on_price_tick(now),
            Ev::Deadline(tx) => self.on_deadline(tx),
            Ev::QueueDrain(ch, dir) => self.drain_queue(now, ChannelId::new(ch), dir),
        }
    }

    // ---- arrival & route computation -------------------------------------

    fn on_arrival(&mut self, now: SimTime) {
        let payment = self.payments.pop_front().expect("arrival without payment");
        debug_assert_eq!(payment.created, now);
        if let Some(next) = self.payments.front() {
            self.events.schedule_at(next.created, Ev::Arrival);
        }
        self.stats.generated += 1;
        self.stats.generated_value += payment.value;
        let tx = payment.id;
        // Route computation is serviced at the source (source routing) or
        // at the responsible hub, modelled as a FIFO per-node CPU.
        let compute_node = self.compute_node(&payment);
        let per_edge = if self.scheme.compute_at_source {
            self.scheme.compute.client_secs_per_edge
        } else {
            self.scheme.compute.hub_secs_per_edge
        };
        let service = SimDuration::from_secs_f64(per_edge * self.graph.edge_count() as f64)
            + self.scheme.compute.crypto_overhead;
        let start = self.node_busy[compute_node.index()].max(now);
        let done = start + service;
        self.node_busy[compute_node.index()] = done;
        self.events.schedule_at(done, Ev::ComputeDone(tx));
        self.events.schedule_at(payment.deadline, Ev::Deadline(tx));
        self.txs.insert(
            tx,
            TxState {
                payment,
                flow: None,
                backlog: VecDeque::new(),
                delivered: Amount::ZERO,
                resolved: false,
                next_path: 0,
            },
        );
        self.active.push(tx);
    }

    fn compute_node(&self, p: &Payment) -> NodeId {
        match &self.scheme.route_via {
            RouteVia::Hubs { assignment } => assignment.get(&p.source).copied().unwrap_or(p.source),
            RouteVia::SingleHub { hub } => *hub,
            _ => p.source,
        }
    }

    fn on_compute_done(&mut self, now: SimTime, tx: TxId) {
        let Some(state) = self.txs.get(&tx) else { return };
        if state.resolved {
            return;
        }
        let payment = state.payment.clone();
        let paths = self.plan_paths(&payment);
        if paths.is_empty() {
            self.stats.unroutable += 1;
            self.fail_tx(tx);
            return;
        }
        let k = paths.len();
        let rates = self.scheme.rate_control.then(|| {
            RateController::new(
                k,
                self.cfg.initial_rate,
                self.cfg.min_rate,
                self.cfg.max_rate,
                self.cfg.alpha,
            )
        });
        let windows = WindowController::new(k, self.cfg.initial_window, self.cfg.beta, self.cfg.gamma);
        let backlog: VecDeque<Amount> =
            split_demand(payment.value, self.cfg.min_tu, self.cfg.max_tu).into();
        let state = self.txs.get_mut(&tx).expect("checked above");
        state.flow = Some(FlowState {
            outstanding: vec![0; k],
            paths,
            rates,
            windows,
        });
        state.backlog = backlog;
        if self.scheme.rate_control {
            for i in 0..k {
                self.events.schedule_at(now, Ev::Inject(tx, i));
            }
        } else {
            // Blast every TU immediately, round-robin over the paths.
            while self.send_next_tu(now, tx, None) {}
        }
    }

    fn plan_paths(&mut self, p: &Payment) -> Vec<Path> {
        let k = self.scheme.num_paths.max(1);
        let strategy = self.scheme.path_select;
        let view = self.scheme.balance_view;
        let min_w = self.cfg.min_tu;
        match &self.scheme.route_via {
            RouteVia::Direct => {
                select_paths(&self.graph, &self.funds, p.source, p.dest, k, strategy, view, min_w)
            }
            RouteVia::Hubs { assignment } => {
                let Some(&hub_s) = assignment.get(&p.source) else {
                    return Vec::new();
                };
                let Some(&hub_r) = assignment.get(&p.dest) else {
                    return Vec::new();
                };
                let Some(first) = self.graph.edge_between(p.source, hub_s) else {
                    return Vec::new();
                };
                let Some(last) = self.graph.edge_between(hub_r, p.dest) else {
                    return Vec::new();
                };
                let head = Path::new(vec![p.source, hub_s], vec![first]);
                let tail = Path::new(vec![hub_r, p.dest], vec![last]);
                if hub_s == hub_r {
                    return vec![head.join(tail)];
                }
                let middles = select_paths(
                    &self.graph,
                    &self.funds,
                    hub_s,
                    hub_r,
                    k,
                    strategy,
                    view,
                    min_w,
                );
                middles
                    .into_iter()
                    .filter(|m| {
                        // A middle path must not route through either client.
                        m.nodes()[1..m.nodes().len() - 1]
                            .iter()
                            .all(|&n| n != p.source && n != p.dest)
                    })
                    .map(|m| head.clone().join(m).join(tail.clone()))
                    .collect()
            }
            RouteVia::Landmarks { landmarks } => {
                let mut out = Vec::new();
                for &lm in landmarks.iter().take(k) {
                    if lm == p.source || lm == p.dest {
                        continue;
                    }
                    let up = self
                        .graph
                        .shortest_path(p.source, lm, |e| {
                            (self.funds.total(e.id) > Amount::ZERO).then_some(1.0)
                        })
                        .map(|(_, path)| path);
                    let down = self
                        .graph
                        .shortest_path(lm, p.dest, |e| {
                            (self.funds.total(e.id) > Amount::ZERO).then_some(1.0)
                        })
                        .map(|(_, path)| path);
                    if let (Some(u), Some(d)) = (up, down) {
                        // Loops through the landmark are allowed by the
                        // scheme but a hop may not revisit the same channel.
                        let joined = u.join(d);
                        let mut chans: Vec<_> = joined.channels().to_vec();
                        chans.sort();
                        chans.dedup();
                        if chans.len() == joined.channels().len() {
                            out.push(joined);
                        }
                    }
                }
                out.dedup_by(|a, b| a.nodes() == b.nodes());
                out
            }
            RouteVia::SingleHub { hub } => {
                let Some(first) = self.graph.edge_between(p.source, *hub) else {
                    return Vec::new();
                };
                let Some(second) = self.graph.edge_between(*hub, p.dest) else {
                    return Vec::new();
                };
                vec![Path::new(vec![p.source, *hub, p.dest], vec![first, second])]
            }
            RouteVia::FlashMaxFlow { elephant_threshold } => {
                if p.value > *elephant_threshold {
                    let res = max_flow(&self.graph, p.source, p.dest, |e| {
                        Some(self.funds.total(e.id).millitokens())
                    });
                    let mut paths: Vec<(u64, Path)> = res
                        .paths
                        .into_iter()
                        .map(|fp| (fp.amount, fp.path))
                        .collect();
                    paths.sort_by(|a, b| b.0.cmp(&a.0));
                    paths.into_iter().take(k).map(|(_, p)| p).collect()
                } else {
                    let key = (p.source, p.dest);
                    if !self.mice_cache.contains_key(&key) {
                        let precomputed = select_paths(
                            &self.graph,
                            &self.funds,
                            p.source,
                            p.dest,
                            k,
                            PathSelect::Ksp,
                            BalanceView::CapacityOnly,
                            min_w,
                        );
                        self.mice_cache.insert(key, precomputed);
                    }
                    let pool = &self.mice_cache[&key];
                    if pool.is_empty() {
                        Vec::new()
                    } else {
                        vec![pool[self.rng.index(pool.len())].clone()]
                    }
                }
            }
        }
    }

    // ---- TU sending ------------------------------------------------------

    /// Sends the next backlog TU. With `path_override` the TU goes on the
    /// given path (rate-controlled injection); otherwise round-robin.
    /// Returns false when the backlog is empty or the window is closed.
    fn send_next_tu(&mut self, now: SimTime, tx: TxId, path_override: Option<usize>) -> bool {
        let Some(state) = self.txs.get_mut(&tx) else {
            return false;
        };
        if state.resolved || state.backlog.is_empty() {
            return false;
        }
        let Some(flow) = state.flow.as_mut() else {
            return false;
        };
        let path_i = match path_override {
            Some(i) => i,
            None => {
                let i = state.next_path % flow.paths.len();
                state.next_path += 1;
                i
            }
        };
        if !flow.windows.admits(path_i, flow.outstanding[path_i]) {
            return false;
        }
        let amount = state.backlog.pop_front().expect("backlog non-empty");
        flow.outstanding[path_i] += 1;
        let path = flow.paths[path_i].clone();
        let deadline = state.payment.deadline;
        let id = TuId::new(self.next_tu);
        self.next_tu += 1;
        self.tus.insert(
            id,
            TransactionUnit {
                id,
                tx,
                amount,
                path,
                next_hop: 0,
                locked_hops: 0,
                marked: false,
                deadline,
                enqueued_at: None,
                flow_path: path_i,
            },
        );
        self.events.schedule_at(now, Ev::HopArrive(id));
        true
    }

    fn on_inject(&mut self, now: SimTime, tx: TxId, path_i: usize) {
        let Some(state) = self.txs.get(&tx) else { return };
        if state.resolved {
            return;
        }
        let Some(flow) = state.flow.as_ref() else {
            return;
        };
        let rate = flow
            .rates
            .as_ref()
            .map(|r| r.rate(path_i))
            .unwrap_or(self.cfg.max_rate);
        let tu_tokens = self.cfg.max_tu.to_tokens_f64();
        let sent = self.send_next_tu(now, tx, Some(path_i));
        let gap = if sent {
            SimDuration::from_secs_f64(tu_tokens / rate.max(self.cfg.min_rate))
        } else {
            // Window closed or backlog empty: poll again shortly.
            self.cfg.update_interval.div(4).max(SimDuration::from_millis(10))
        };
        // Keep injecting while the transaction can still make its deadline.
        let state = self.txs.get(&tx).expect("still present");
        if !state.resolved && now + gap <= state.payment.deadline {
            self.events.schedule_after(gap, Ev::Inject(tx, path_i));
        }
    }

    // ---- hop machinery ----------------------------------------------------

    fn on_hop_arrive(&mut self, now: SimTime, tu_id: TuId) {
        let Some(tu) = self.tus.get(&tu_id) else { return };
        if tu.next_hop == tu.path.hops() {
            self.deliver(now, tu_id);
            return;
        }
        if now >= tu.deadline {
            self.abort_tu(now, tu_id, false);
            return;
        }
        let hop = tu.next_hop;
        let (from, ch, _to) = nth_hop(&tu.path, hop);
        let amount = tu.amount;
        match self.funds.lock(ch, from, amount) {
            Ok(()) => {
                self.prices
                    .record_arrival(ch, from, amount.to_tokens_f64());
                self.stats.overhead_msgs += 1;
                let tu = self.tus.get_mut(&tu_id).expect("present");
                tu.next_hop += 1;
                tu.locked_hops += 1;
                tu.enqueued_at = None;
                self.events
                    .schedule_after(self.cfg.hop_delay, Ev::HopArrive(tu_id));
            }
            Err(_) => {
                if self.scheme.congestion_control {
                    let dir = self.dir_of(ch, from);
                    let deadline = self.tus[&tu_id].deadline;
                    let q = self.queue_mut(ch, dir);
                    if q.push(tu_id, amount, deadline, now) {
                        self.tus.get_mut(&tu_id).expect("present").enqueued_at = Some(now);
                    } else {
                        // Queue overflow (Algorithm 2's capacity bound).
                        self.abort_tu(now, tu_id, false);
                    }
                } else {
                    self.abort_tu(now, tu_id, false);
                }
            }
        }
    }

    fn deliver(&mut self, now: SimTime, tu_id: TuId) {
        let tu = self.tus.get(&tu_id).expect("delivering a live TU");
        let hops = tu.path.hops();
        self.stats.delivered_tus += 1;
        // The acknowledgement walks back: the hop nearest the recipient
        // settles first.
        for i in (0..hops).rev() {
            let delay = self.cfg.hop_delay.saturating_mul((hops - 1 - i) as u64);
            self.events
                .schedule_at(now + delay, Ev::SettleHop(tu_id, i));
        }
        self.stats.overhead_msgs += hops as u64; // ack messages
        let total_delay = self.cfg.hop_delay.saturating_mul(hops as u64);
        self.events
            .schedule_at(now + total_delay, Ev::AckComplete(tu_id));
    }

    fn on_settle_hop(&mut self, tu_id: TuId, hop: usize) {
        let Some(tu) = self.tus.get(&tu_id) else { return };
        let (from, ch, to) = nth_hop(&tu.path, hop);
        let amount = tu.amount;
        self.funds
            .settle(ch, from, amount)
            .expect("settling a locked hop");
        // Settling credits the reverse direction; queued reverse TUs may
        // now proceed.
        let rev_dir = self.dir_of(ch, to);
        self.events
            .schedule_at(self.events.now(), Ev::QueueDrain(ch.raw(), rev_dir));
    }

    fn on_ack_complete(&mut self, now: SimTime, tu_id: TuId) {
        let Some(tu) = self.tus.remove(&tu_id) else { return };
        self.retries.remove(&tu_id);
        let Some(state) = self.txs.get_mut(&tu.tx) else {
            return;
        };
        state.delivered += tu.amount;
        if let Some(flow) = state.flow.as_mut() {
            flow.outstanding[tu.flow_path] = flow.outstanding[tu.flow_path].saturating_sub(1);
            if !tu.marked {
                flow.windows.on_unmarked_success(tu.flow_path);
            }
        }
        if !state.resolved && state.delivered >= state.payment.value {
            state.resolved = true;
            self.stats.completed += 1;
            self.stats.completed_value += state.payment.value;
            self.stats
                .latency
                .record(now.saturating_since(state.payment.created).as_secs_f64());
        }
    }

    /// Aborts a TU: removes it from any queue, refunds locked hops and
    /// either retries, re-queues the value (rate-controlled schemes), or
    /// abandons it.
    fn abort_tu(&mut self, now: SimTime, tu_id: TuId, already_dequeued: bool) {
        let Some(tu) = self.tus.remove(&tu_id) else { return };
        self.stats.aborted_tus += 1;
        if tu.enqueued_at.is_some() && !already_dequeued {
            let (from, ch, _) = nth_hop(&tu.path, tu.next_hop);
            let dir = self.dir_of(ch, from);
            self.queue_mut(ch, dir).remove(tu_id);
        }
        // Refund every locked hop (instant unwinding).
        for i in 0..tu.locked_hops {
            let (from, ch, _) = nth_hop(&tu.path, i);
            self.funds
                .refund(ch, from, tu.amount)
                .expect("refunding a locked hop");
            self.stats.overhead_msgs += 1;
            let dir = self.dir_of(ch, from);
            self.events
                .schedule_at(self.events.now(), Ev::QueueDrain(ch.raw(), dir));
        }
        let Some(state) = self.txs.get_mut(&tu.tx) else {
            return;
        };
        if let Some(flow) = state.flow.as_mut() {
            flow.outstanding[tu.flow_path] = flow.outstanding[tu.flow_path].saturating_sub(1);
            if tu.marked {
                flow.windows.on_marked_abort(tu.flow_path);
            }
        }
        if state.resolved {
            return;
        }
        if now >= state.payment.deadline {
            return; // The Deadline event settles the outcome.
        }
        if self.scheme.rate_control {
            // Value returns to the backlog; the injectors retry it.
            state.backlog.push_back(tu.amount);
        } else {
            let retries_used = self.retries.get(&tu_id).copied().unwrap_or(0);
            let flow_len = state.flow.as_ref().map(|f| f.paths.len()).unwrap_or(0);
            if retries_used < self.cfg.max_retries && flow_len > 1 {
                // Retry on the next path (Flash's alternate-path retry).
                let next_path = (tu.flow_path + 1) % flow_len;
                let flow = state.flow.as_mut().expect("flow_len > 0");
                flow.outstanding[next_path] += 1;
                let id = TuId::new(self.next_tu);
                self.next_tu += 1;
                let path = flow.paths[next_path].clone();
                self.tus.insert(
                    id,
                    TransactionUnit {
                        id,
                        tx: tu.tx,
                        amount: tu.amount,
                        path,
                        next_hop: 0,
                        locked_hops: 0,
                        marked: false,
                        deadline: tu.deadline,
                        enqueued_at: None,
                        flow_path: next_path,
                    },
                );
                self.retries.insert(id, retries_used + 1);
                self.events.schedule_at(now, Ev::HopArrive(id));
            } else {
                // Without rate control a lost TU sinks the transaction.
                self.fail_tx(tu.tx);
            }
        }
    }

    fn fail_tx(&mut self, tx: TxId) {
        if let Some(state) = self.txs.get_mut(&tx) {
            if !state.resolved {
                state.resolved = true;
                self.stats.failed += 1;
            }
        }
    }

    fn on_deadline(&mut self, tx: TxId) {
        self.fail_tx(tx);
    }

    // ---- queues ------------------------------------------------------------

    fn dir_of(&self, ch: ChannelId, from: NodeId) -> bool {
        self.endpoints[ch.index()].0 == from
    }

    fn queue_mut(&mut self, ch: ChannelId, dir_from_a: bool) -> &mut WaitQueue {
        let pair = &mut self.queues[ch.index()];
        if dir_from_a {
            &mut pair.0
        } else {
            &mut pair.1
        }
    }

    fn drain_queue(&mut self, now: SimTime, ch: ChannelId, dir_from_a: bool) {
        loop {
            let from = if dir_from_a {
                self.endpoints[ch.index()].0
            } else {
                self.endpoints[ch.index()].1
            };
            let available = self.funds.balance(ch, from);
            let Some(entry) = self.queue_mut(ch, dir_from_a).pop_eligible(available) else {
                break;
            };
            let tu_id = entry.tu;
            let Some(tu) = self.tus.get_mut(&tu_id) else {
                continue;
            };
            let waited = now.saturating_since(entry.enqueued_at);
            if waited > self.cfg.queue_delay_threshold && !tu.marked {
                tu.marked = true;
                self.stats.marked_tus += 1;
            }
            if now >= tu.deadline {
                self.abort_tu(now, tu_id, true);
                continue;
            }
            tu.enqueued_at = None;
            self.funds
                .lock(ch, from, entry.amount)
                .expect("pop_eligible guarantees funds");
            self.prices
                .record_arrival(ch, from, entry.amount.to_tokens_f64());
            self.stats.overhead_msgs += 1;
            let tu = self.tus.get_mut(&tu_id).expect("present");
            tu.next_hop += 1;
            tu.locked_hops += 1;
            self.events
                .schedule_after(self.cfg.hop_delay, Ev::HopArrive(tu_id));
        }
    }

    // ---- price tick ---------------------------------------------------------

    fn on_price_tick(&mut self, now: SimTime) {
        // Eqs. 21–22 per channel: n = locked + queued value per direction.
        let funds = &self.funds;
        let queues = &self.queues;
        let endpoints = &self.endpoints;
        self.prices.tick(
            self.cfg.kappa,
            self.cfg.eta,
            |ch| {
                let (a, b) = endpoints[ch.index()];
                let q = &queues[ch.index()];
                let n_a = funds.locked(ch, a).to_tokens_f64() + q.0.queued_value().to_tokens_f64();
                let n_b = funds.locked(ch, b).to_tokens_f64() + q.1.queued_value().to_tokens_f64();
                (n_a, n_b)
            },
            |ch| funds.total(ch).to_tokens_f64(),
        );
        // Expire queued TUs whose transactions are past deadline, and mark
        // the ones waiting longer than T.
        let mut expired_tus = Vec::new();
        let mut to_mark = Vec::new();
        for pair in self.queues.iter_mut() {
            for q in [&mut pair.0, &mut pair.1] {
                for e in q.drain_expired(now) {
                    expired_tus.push(e.tu);
                }
                to_mark.extend(q.over_delay(now, self.cfg.queue_delay_threshold));
            }
        }
        for tu in expired_tus {
            self.abort_tu(now, tu, true);
        }
        for tu_id in to_mark {
            if let Some(tu) = self.tus.get_mut(&tu_id) {
                if !tu.marked {
                    tu.marked = true;
                    self.stats.marked_tus += 1;
                }
            }
        }
        // Rate updates from freshly probed path prices (eq. 26), plus
        // probe overhead accounting.
        if self.scheme.rate_control {
            let mut prune = false;
            for &tx in &self.active {
                let Some(state) = self.txs.get_mut(&tx) else {
                    prune = true;
                    continue;
                };
                if state.resolved {
                    prune = true;
                    continue;
                }
                let Some(flow) = state.flow.as_mut() else {
                    continue;
                };
                let Some(rates) = flow.rates.as_mut() else {
                    continue;
                };
                let prices: Vec<f64> = flow
                    .paths
                    .iter()
                    .map(|p| self.prices.path_price(p, self.cfg.t_fee))
                    .collect();
                rates.update(&prices);
                self.stats.overhead_msgs +=
                    flow.paths.iter().map(|p| p.hops() as u64).sum::<u64>();
            }
            if prune {
                let txs = &self.txs;
                self.active
                    .retain(|tx| txs.get(tx).is_some_and(|s| !s.resolved));
            }
        }
        // Hub state synchronization (epoch exchange, §III-B).
        if self.hub_count > 1 {
            self.stats.overhead_msgs += (self.hub_count * (self.hub_count - 1)) as u64;
        }
        if now + self.cfg.update_interval <= self.horizon {
            self.events
                .schedule_after(self.cfg.update_interval, Ev::PriceTick);
        }
    }

    /// Immutable view of the funds (post-run inspection in tests).
    pub fn funds(&self) -> &NetworkFunds {
        &self.funds
    }
}

fn nth_hop(path: &Path, i: usize) -> (NodeId, ChannelId, NodeId) {
    let from = path.nodes()[i];
    let to = path.nodes()[i + 1];
    (from, path.channels()[i], to)
}

/// Builds a payment list from `(time_ms, src, dst, tokens)` tuples — a
/// convenience for tests and examples.
pub fn payments_from_tuples(
    tuples: &[(u64, u32, u32, u64)],
    timeout: SimDuration,
) -> Vec<Payment> {
    tuples
        .iter()
        .enumerate()
        .map(|(i, &(ms, s, d, v))| {
            let created = SimTime::from_micros(ms * 1000);
            Payment {
                id: TxId::new(i as u64),
                source: NodeId::new(s),
                dest: NodeId::new(d),
                value: Amount::from_tokens(v),
                created,
                deadline: created + timeout,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeConfig;
    use std::collections::HashMap;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Line topology 0-1-2-3 with healthy funds.
    fn line_setup() -> (Graph, NetworkFunds) {
        let mut g = Graph::new(4);
        for i in 0..3 {
            g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
        }
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        (g, funds)
    }

    fn run_scheme(scheme: SchemeConfig, payments: Vec<Payment>) -> RunStats {
        let (g, funds) = line_setup();
        let engine = Engine::new(g, funds, scheme, EngineConfig::default(), SimRng::seed(1));
        engine.run(payments)
    }

    #[test]
    fn single_payment_completes_spider() {
        let payments = payments_from_tuples(&[(0, 0, 3, 5)], SimDuration::from_secs(3));
        let stats = run_scheme(SchemeConfig::spider(), payments);
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.completed, 1, "{stats}");
        assert_eq!(stats.completed_value, Amount::from_tokens(5));
        assert!(stats.avg_latency_secs() > 0.0);
        assert_eq!(stats.tsr(), 1.0);
    }

    #[test]
    fn single_payment_completes_shortest_path() {
        let payments = payments_from_tuples(&[(0, 0, 3, 5)], SimDuration::from_secs(3));
        let stats = run_scheme(SchemeConfig::shortest_path(), payments);
        assert_eq!(stats.completed, 1, "{stats}");
    }

    #[test]
    fn oversized_payment_fails_without_control() {
        // 300 tokens through 100-token channels: single-path schemes die.
        let payments = payments_from_tuples(&[(0, 0, 3, 300)], SimDuration::from_secs(3));
        let stats = run_scheme(SchemeConfig::shortest_path(), payments);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn funds_conserved_after_run() {
        let (g, funds) = line_setup();
        let grand = funds.grand_total();
        let payments = payments_from_tuples(
            &[(0, 0, 3, 5), (100, 3, 0, 4), (200, 1, 3, 6)],
            SimDuration::from_secs(3),
        );
        let engine = Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(2),
        );
        // run consumes the engine; conservation is debug-asserted inside,
        // and we re-check via stats consistency.
        let stats = engine.run(payments);
        assert!(stats.is_consistent());
        let _ = grand;
    }

    #[test]
    fn unroutable_payment_counted() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1)); // node 2 isolated
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        let payments = payments_from_tuples(&[(0, 0, 2, 1)], SimDuration::from_secs(3));
        let stats = Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(3),
        )
        .run(payments);
        assert_eq!(stats.unroutable, 1);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn splicer_hub_routing_on_multi_star() {
        // clients 0,1 → hub 4; clients 2,3 → hub 5; hubs linked.
        let mut g = Graph::new(6);
        g.add_edge(n(0), n(4));
        g.add_edge(n(1), n(4));
        g.add_edge(n(2), n(5));
        g.add_edge(n(3), n(5));
        g.add_edge(n(4), n(5));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
        let assignment: HashMap<NodeId, NodeId> = [
            (n(0), n(4)),
            (n(1), n(4)),
            (n(2), n(5)),
            (n(3), n(5)),
        ]
        .into_iter()
        .collect();
        let payments = payments_from_tuples(
            &[(0, 0, 2, 5), (50, 1, 3, 3), (100, 0, 1, 2)],
            SimDuration::from_secs(3),
        );
        let stats = Engine::new(
            g,
            funds,
            SchemeConfig::splicer(assignment),
            EngineConfig::default(),
            SimRng::seed(4),
        )
        .run(payments);
        assert_eq!(stats.completed, 3, "{stats}");
    }

    #[test]
    fn a2l_star_routes_through_hub() {
        let g = pcn_graph::star(5); // hub 0
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(50));
        let payments = payments_from_tuples(
            &[(0, 1, 2, 5), (10, 3, 4, 5)],
            SimDuration::from_secs(3),
        );
        let stats = Engine::new(
            g,
            funds,
            SchemeConfig::a2l(n(0), SimDuration::from_millis(5)),
            EngineConfig::default(),
            SimRng::seed(5),
        )
        .run(payments);
        assert_eq!(stats.completed, 2, "{stats}");
    }

    #[test]
    fn a2l_hub_compute_queue_delays_under_load() {
        // Many simultaneous payments through one hub with heavy crypto:
        // the hub CPU serializes them past their deadlines.
        let g = pcn_graph::star(30);
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(1_000));
        let tuples: Vec<(u64, u32, u32, u64)> =
            (0..60).map(|i| (i, 1 + (i as u32 % 29), 1 + ((i as u32 + 1) % 29), 2)).collect();
        let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
        let stats = Engine::new(
            g,
            funds,
            SchemeConfig::a2l(n(0), SimDuration::from_millis(200)),
            EngineConfig::default(),
            SimRng::seed(6),
        )
        .run(payments);
        assert!(stats.failed > 0, "hub saturation must fail some: {stats}");
    }

    #[test]
    fn landmark_routing_works() {
        let (g, funds) = line_setup();
        let payments = payments_from_tuples(&[(0, 0, 3, 4)], SimDuration::from_secs(3));
        let stats = Engine::new(
            g,
            funds,
            SchemeConfig::landmark(vec![n(1), n(2)]),
            EngineConfig::default(),
            SimRng::seed(7),
        )
        .run(payments);
        assert_eq!(stats.completed, 1, "{stats}");
    }

    #[test]
    fn flash_elephant_and_mouse() {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(3));
        g.add_edge(n(0), n(2));
        g.add_edge(n(2), n(3));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(50));
        let payments = payments_from_tuples(
            &[(0, 0, 3, 60), (500, 0, 3, 2)],
            SimDuration::from_secs(3),
        );
        let mut cfg = EngineConfig::default();
        cfg.max_retries = 1;
        let stats = Engine::new(
            g,
            funds,
            SchemeConfig::flash(Amount::from_tokens(20)),
            cfg,
            SimRng::seed(8),
        )
        .run(payments);
        // The 60-token elephant splits over both 50-token routes; the
        // mouse follows a precomputed path.
        assert_eq!(stats.completed, 2, "{stats}");
    }

    #[test]
    fn deadlock_demo_naive_vs_rate_control() {
        // Fig. 1: A=0, C=2, B=1. A→B and C→B flows plus B→A, with C's
        // outbound funds tiny: naive routing drains C and collapses.
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(2)); // A-C
        g.add_edge(n(2), n(1)); // C-B
        let funds = NetworkFunds::from_graph(&g, |_, _| Amount::from_tokens(10));
        let mut tuples = Vec::new();
        // Heavy one-directional load A→B (via C) for 20 seconds.
        for i in 0..40u64 {
            tuples.push((i * 250, 0u32, 1u32, 2u64));
        }
        let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
        let naive = Engine::new(
            g.clone(),
            funds.clone(),
            SchemeConfig::shortest_path(),
            EngineConfig::default(),
            SimRng::seed(9),
        )
        .run(payments.clone());
        // One-way flow must exhaust the C→B direction under naive routing.
        assert!(naive.failed > 0, "naive should deadlock: {naive}");
        assert!(naive.drained_directions_end > 0);
        // Rate-controlled Spider queues and paces instead of failing
        // everything, completing at least as much.
        let spider = Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(9),
        )
        .run(payments);
        assert!(
            spider.completed >= naive.completed,
            "spider {spider} vs naive {naive}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let payments = payments_from_tuples(
            &[(0, 0, 3, 5), (100, 3, 0, 4), (150, 1, 2, 7)],
            SimDuration::from_secs(3),
        );
        let run = |seed| {
            let (g, funds) = line_setup();
            Engine::new(
                g,
                funds,
                SchemeConfig::spider(),
                EngineConfig::default(),
                SimRng::seed(seed),
            )
            .run(payments.clone())
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.overhead_msgs, b.overhead_msgs);
        assert_eq!(a.aborted_tus, b.aborted_tus);
    }

    #[test]
    fn marked_tus_counted_under_congestion() {
        // Narrow channel, many payments: queues build up past T.
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(6));
        let tuples: Vec<(u64, u32, u32, u64)> = (0..30).map(|i| (i * 20, 0, 2, 4)).collect();
        let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
        let stats = Engine::new(
            g,
            funds,
            SchemeConfig::spider(),
            EngineConfig::default(),
            SimRng::seed(10),
        )
        .run(payments);
        assert!(stats.marked_tus > 0, "{stats}");
        assert!(stats.is_consistent());
    }
}
