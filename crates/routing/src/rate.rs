//! Per-path sending-rate control (eq. 26).
//!
//! For a path set `{p_i}` serving one source–destination demand with
//! log-utility `U(r) = log Σ r_p`, the primal-dual update is
//! `r_p ← r_p + α(U′(r) − ϱ_p)`: paths cheaper than the marginal utility
//! speed up, expensive paths slow down, and at the fixed point the active
//! paths all carry price `U′(r)` — the waterfilling optimum of problem
//! (16)–(20).

/// Rate controller for one demand's path set.
#[derive(Clone, Debug, PartialEq)]
pub struct RateController {
    rates: Vec<f64>,
    alpha: f64,
    min_rate: f64,
    max_rate: f64,
}

impl RateController {
    /// Creates a controller for `paths` paths, all starting at
    /// `initial_rate` (tokens/sec).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_rate ≤ initial_rate ≤ max_rate` and
    /// `alpha > 0`.
    pub fn new(paths: usize, initial_rate: f64, min_rate: f64, max_rate: f64, alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(
            0.0 < min_rate && min_rate <= initial_rate && initial_rate <= max_rate,
            "need 0 < min ≤ initial ≤ max"
        );
        RateController {
            rates: vec![initial_rate; paths],
            alpha,
            min_rate,
            max_rate,
        }
    }

    /// Number of controlled paths.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the controller has no paths.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Rate of path `i` in tokens/sec.
    pub fn rate(&self, i: usize) -> f64 {
        self.rates[i]
    }

    /// Total rate across the path set.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Eq. 26 update for every path given its latest probed price ϱ_p.
    /// `U′(r) = 1 / Σ r` for log utility.
    pub fn update(&mut self, path_prices: &[f64]) {
        assert_eq!(path_prices.len(), self.rates.len(), "price/path mismatch");
        let marginal = 1.0 / self.total_rate().max(self.min_rate);
        for (r, &rho) in self.rates.iter_mut().zip(path_prices) {
            *r = (*r + self.alpha * (marginal - rho)).clamp(self.min_rate, self.max_rate);
        }
    }

    /// Seconds between TU injections of size `tu_tokens` on path `i`.
    pub fn injection_gap_secs(&self, i: usize, tu_tokens: f64) -> f64 {
        tu_tokens / self.rates[i].max(self.min_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_fall_under_high_prices_and_rise_when_free() {
        let mut rc = RateController::new(2, 1.0, 0.01, 100.0, 0.5);
        for _ in 0..50 {
            rc.update(&[10.0, 0.0]); // path 0 expensive, path 1 free
        }
        assert!(
            rc.rate(0) <= 0.02,
            "expensive path throttled: {}",
            rc.rate(0)
        );
        assert!(rc.rate(1) > 1.0, "free path accelerated: {}", rc.rate(1));
    }

    #[test]
    fn clamped_to_bounds() {
        let mut rc = RateController::new(1, 1.0, 0.5, 2.0, 10.0);
        rc.update(&[100.0]);
        assert_eq!(rc.rate(0), 0.5);
        for _ in 0..100 {
            rc.update(&[0.0]);
        }
        assert_eq!(rc.rate(0), 2.0);
    }

    #[test]
    fn equilibrium_at_marginal_utility() {
        // One path, constant price ρ: fixed point where 1/r = ρ → r = 1/ρ.
        let mut rc = RateController::new(1, 1.0, 0.001, 100.0, 0.05);
        for _ in 0..3000 {
            rc.update(&[4.0]);
        }
        assert!((rc.rate(0) - 0.25).abs() < 0.05, "rate {}", rc.rate(0));
    }

    #[test]
    fn injection_gap_inversely_proportional_to_rate() {
        let rc = RateController::new(1, 2.0, 0.1, 10.0, 0.1);
        assert!((rc.injection_gap_secs(0, 4.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn total_rate_sums() {
        let rc = RateController::new(3, 1.5, 0.1, 10.0, 0.1);
        assert!((rc.total_rate() - 4.5).abs() < 1e-12);
        assert_eq!(rc.len(), 3);
        assert!(!rc.is_empty());
    }

    #[test]
    #[should_panic(expected = "price/path mismatch")]
    fn wrong_price_count_panics() {
        let mut rc = RateController::new(2, 1.0, 0.1, 10.0, 0.1);
        rc.update(&[1.0]);
    }
}
