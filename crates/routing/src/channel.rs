//! The payment-channel state machine.
//!
//! Each undirected channel `(a, b)` holds a *spendable* balance per
//! direction plus a *locked* (HTLC in-flight) balance per direction.
//! Forwarding value `v` over `a → b` locks `v` out of `spendable(a→b)`;
//! on acknowledgement the lock **settles** and `v` appears in
//! `spendable(b→a)` (the funds changed owner); on failure the lock is
//! **refunded** back into `spendable(a→b)`.
//!
//! Conservation invariant (checked in debug builds on every mutation and
//! exposed via [`NetworkFunds::verify_conservation`]):
//! `spendable(a→b) + spendable(b→a) + locked(a→b) + locked(b→a) = total`.

use pcn_graph::Graph;
use pcn_types::{Amount, ChannelId, NodeId, PcnError, Result};

/// State of one channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelState {
    a: NodeId,
    b: NodeId,
    /// spendable in direction a→b (owned by `a`)
    bal_ab: Amount,
    /// spendable in direction b→a (owned by `b`)
    bal_ba: Amount,
    locked_ab: Amount,
    locked_ba: Amount,
    total: Amount,
}

impl ChannelState {
    /// Creates a channel between `a` and `b` funded with `fund_a`/`fund_b`
    /// on the respective sides.
    pub fn new(a: NodeId, b: NodeId, fund_a: Amount, fund_b: Amount) -> ChannelState {
        ChannelState {
            a,
            b,
            bal_ab: fund_a,
            bal_ba: fund_b,
            locked_ab: Amount::ZERO,
            locked_ba: Amount::ZERO,
            total: fund_a + fund_b,
        }
    }

    /// Endpoints in creation order.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// Total funds in the channel (constant for its lifetime).
    pub fn total(&self) -> Amount {
        self.total
    }

    fn is_ab(&self, from: NodeId) -> Result<bool> {
        if from == self.a {
            Ok(true)
        } else if from == self.b {
            Ok(false)
        } else {
            Err(PcnError::UnknownNode(from))
        }
    }

    /// Spendable balance in direction `from → other`.
    pub fn spendable(&self, from: NodeId) -> Amount {
        match self.is_ab(from) {
            Ok(true) => self.bal_ab,
            Ok(false) => self.bal_ba,
            Err(_) => Amount::ZERO,
        }
    }

    /// Locked (in-flight) value in direction `from → other`.
    pub fn locked(&self, from: NodeId) -> Amount {
        match self.is_ab(from) {
            Ok(true) => self.locked_ab,
            Ok(false) => self.locked_ba,
            Err(_) => Amount::ZERO,
        }
    }

    fn check(&self) {
        debug_assert_eq!(
            self.bal_ab + self.bal_ba + self.locked_ab + self.locked_ba,
            self.total,
            "channel conservation violated"
        );
    }

    /// Locks `amount` for forwarding in direction `from → other`.
    ///
    /// # Errors
    ///
    /// [`PcnError::InsufficientFunds`]-shaped error when the spendable
    /// balance is too low (the caller owns the channel id and fills it in),
    /// [`PcnError::UnknownNode`] when `from` is not an endpoint.
    pub fn lock(&mut self, from: NodeId, amount: Amount) -> Result<()> {
        let ab = self.is_ab(from)?;
        let (bal, locked) = if ab {
            (&mut self.bal_ab, &mut self.locked_ab)
        } else {
            (&mut self.bal_ba, &mut self.locked_ba)
        };
        match bal.checked_sub(amount) {
            Some(rest) => {
                *bal = rest;
                *locked += amount;
                self.check();
                Ok(())
            }
            None => Err(PcnError::InsufficientFunds {
                channel: ChannelId::new(u32::MAX), // rewritten by NetworkFunds
                requested: amount,
                available: *bal,
            }),
        }
    }

    /// Settles a previously locked `amount`: funds move to the other side.
    ///
    /// # Errors
    ///
    /// Fails when more than the locked value would settle.
    pub fn settle(&mut self, from: NodeId, amount: Amount) -> Result<()> {
        let ab = self.is_ab(from)?;
        let (locked, other_bal) = if ab {
            (&mut self.locked_ab, &mut self.bal_ba)
        } else {
            (&mut self.locked_ba, &mut self.bal_ab)
        };
        match locked.checked_sub(amount) {
            Some(rest) => {
                *locked = rest;
                *other_bal += amount;
                self.check();
                Ok(())
            }
            None => Err(PcnError::InvalidDemand(format!(
                "settle {amount} exceeds locked {locked}"
            ))),
        }
    }

    /// Refunds a previously locked `amount` back to the sender side.
    ///
    /// # Errors
    ///
    /// Fails when more than the locked value would be refunded.
    pub fn refund(&mut self, from: NodeId, amount: Amount) -> Result<()> {
        let ab = self.is_ab(from)?;
        let (locked, bal) = if ab {
            (&mut self.locked_ab, &mut self.bal_ab)
        } else {
            (&mut self.locked_ba, &mut self.bal_ba)
        };
        match locked.checked_sub(amount) {
            Some(rest) => {
                *locked = rest;
                *bal += amount;
                self.check();
                Ok(())
            }
            None => Err(PcnError::InvalidDemand(format!(
                "refund {amount} exceeds locked {locked}"
            ))),
        }
    }
}

/// All channel states of a PCN instance, indexed by [`ChannelId`].
#[derive(Clone, Debug, Default)]
pub struct NetworkFunds {
    channels: Vec<ChannelState>,
    /// Monotone balance-movement counter; see [`NetworkFunds::funds_epoch`].
    epoch: u64,
    /// Per-channel balance-movement counters; see
    /// [`NetworkFunds::channel_epoch`].
    channel_epochs: Vec<u64>,
}

impl NetworkFunds {
    /// Builds channel states for every edge of `g` with per-side funds
    /// supplied by `fund`.
    pub fn from_graph<F>(g: &Graph, mut fund: F) -> NetworkFunds
    where
        F: FnMut(ChannelId, NodeId) -> Amount,
    {
        let channels: Vec<ChannelState> = g
            .edges()
            .map(|id| {
                let (a, b) = g.endpoints(id).expect("edge ids are dense");
                ChannelState::new(a, b, fund(id, a), fund(id, b))
            })
            .collect();
        let channel_epochs = vec![0; channels.len()];
        NetworkFunds {
            channels,
            epoch: 0,
            channel_epochs,
        }
    }

    /// Uniform funding: every side of every channel gets `per_side`.
    pub fn uniform(g: &Graph, per_side: Amount) -> NetworkFunds {
        NetworkFunds::from_graph(g, |_, _| per_side)
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether there are no channels.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    fn get(&self, id: ChannelId) -> Result<&ChannelState> {
        self.channels
            .get(id.index())
            .ok_or(PcnError::UnknownChannel(id))
    }

    fn get_mut(&mut self, id: ChannelId) -> Result<&mut ChannelState> {
        self.channels
            .get_mut(id.index())
            .ok_or(PcnError::UnknownChannel(id))
    }

    /// The global funds epoch: bumped on every successful balance
    /// movement ([`NetworkFunds::lock`] / [`NetworkFunds::settle`] /
    /// [`NetworkFunds::refund`]) anywhere in the network — a superset of
    /// the depletion/refill events, so any computation over *live*
    /// balances whose epoch snapshot is unchanged would recompute to the
    /// same result. Channel *totals* never change (channels keep their
    /// funds for life), so capacity-only computations need not watch
    /// this counter.
    ///
    /// The routing layer's `PathCache` uses it as the cheap
    /// "nothing moved at all" fast path; the precise per-entry check is
    /// [`NetworkFunds::channel_epoch`] over the entry's footprint.
    pub fn funds_epoch(&self) -> u64 {
        self.epoch
    }

    /// The per-channel funds epoch of `id`: bumped on every successful
    /// lock/settle/refund touching that channel, and only that channel.
    /// A live-balance computation whose channel footprint shows unchanged
    /// per-channel epochs would recompute to a bit-identical result even
    /// when the global [`NetworkFunds::funds_epoch`] has moved — the
    /// scoped-invalidation half of the path-cache contract.
    ///
    /// Unknown channels report epoch 0.
    pub fn channel_epoch(&self, id: ChannelId) -> u64 {
        self.channel_epochs.get(id.index()).copied().unwrap_or(0)
    }

    /// Spendable balance of `id` in direction `from → other`.
    pub fn balance(&self, id: ChannelId, from: NodeId) -> Amount {
        self.get(id).map_or(Amount::ZERO, |c| c.spendable(from))
    }

    /// Locked value of `id` in direction `from → other`.
    pub fn locked(&self, id: ChannelId, from: NodeId) -> Amount {
        self.get(id).map_or(Amount::ZERO, |c| c.locked(from))
    }

    /// Total funds of channel `id`.
    pub fn total(&self, id: ChannelId) -> Amount {
        self.get(id).map_or(Amount::ZERO, ChannelState::total)
    }

    /// Locks `amount` on `id` in direction `from → other`.
    ///
    /// # Errors
    ///
    /// [`PcnError::InsufficientFunds`] (with the channel id filled in) or
    /// [`PcnError::UnknownChannel`]/[`PcnError::UnknownNode`].
    pub fn lock(&mut self, id: ChannelId, from: NodeId, amount: Amount) -> Result<()> {
        self.get_mut(id)?.lock(from, amount).map_err(|e| match e {
            PcnError::InsufficientFunds {
                requested,
                available,
                ..
            } => PcnError::InsufficientFunds {
                channel: id,
                requested,
                available,
            },
            other => other,
        })?;
        self.bump(id);
        Ok(())
    }

    /// Settles `amount` on `id` in direction `from → other`.
    ///
    /// # Errors
    ///
    /// See [`ChannelState::settle`].
    pub fn settle(&mut self, id: ChannelId, from: NodeId, amount: Amount) -> Result<()> {
        self.get_mut(id)?.settle(from, amount)?;
        self.bump(id);
        Ok(())
    }

    /// Refunds `amount` on `id` in direction `from → other`.
    ///
    /// # Errors
    ///
    /// See [`ChannelState::refund`].
    pub fn refund(&mut self, id: ChannelId, from: NodeId, amount: Amount) -> Result<()> {
        self.get_mut(id)?.refund(from, amount)?;
        self.bump(id);
        Ok(())
    }

    /// Advances both the global and the per-channel epoch after a
    /// successful movement on `id`.
    fn bump(&mut self, id: ChannelId) {
        self.epoch += 1;
        self.channel_epochs[id.index()] += 1;
    }

    /// Appends the state for a channel opened mid-run (the next dense
    /// id, matching the graph's `add_edge`), funded with
    /// `fund_a`/`fund_b` on the respective sides. Injects new value into
    /// the network — callers tracking conservation should account
    /// `fund_a + fund_b` against [`NetworkFunds::grand_total`].
    pub fn add_channel(&mut self, a: NodeId, b: NodeId, fund_a: Amount, fund_b: Amount) {
        self.channels.push(ChannelState::new(a, b, fund_a, fund_b));
        self.channel_epochs.push(0);
    }

    /// Resets channel `id`'s *spendable* liquidity to an even split
    /// between its directions (any odd millitoken goes to the `a` side);
    /// locked in-flight value is untouched, so conservation holds by
    /// construction. Bumps the funds epochs only when balances actually
    /// move.
    ///
    /// # Errors
    ///
    /// [`PcnError::UnknownChannel`] for a bad id.
    pub fn rebalance_equalize(&mut self, id: ChannelId) -> Result<()> {
        let c = self.get_mut(id)?;
        let spendable = c.bal_ab + c.bal_ba;
        let half = Amount::from_millitokens(spendable.millitokens() / 2);
        let (new_ab, new_ba) = (spendable - half, half);
        if (new_ab, new_ba) == (c.bal_ab, c.bal_ba) {
            return Ok(());
        }
        c.bal_ab = new_ab;
        c.bal_ba = new_ba;
        c.check();
        self.bump(id);
        Ok(())
    }

    /// Whether the `from` side of `id` has (almost) no spendable funds —
    /// the local-deadlock symptom of Fig. 1.
    pub fn is_drained(&self, id: ChannelId, from: NodeId) -> bool {
        self.balance(id, from) < Amount::from_millitokens(1)
    }

    /// Counts directed channel sides with zero spendable balance.
    pub fn drained_directions(&self) -> usize {
        self.channels
            .iter()
            .map(|c| {
                usize::from(c.spendable(c.a).is_zero()) + usize::from(c.spendable(c.b).is_zero())
            })
            .sum()
    }

    /// Verifies the conservation invariant on every channel.
    pub fn verify_conservation(&self) -> bool {
        self.channels
            .iter()
            .all(|c| c.bal_ab + c.bal_ba + c.locked_ab + c.locked_ba == c.total)
    }

    /// Sum of all channel totals (for sanity checks).
    pub fn grand_total(&self) -> Amount {
        self.channels.iter().map(|c| c.total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn funds() -> (NetworkFunds, ChannelId) {
        let mut g = Graph::new(2);
        let ch = g.add_edge(n(0), n(1));
        (NetworkFunds::uniform(&g, Amount::from_tokens(10)), ch)
    }

    #[test]
    fn lock_settle_moves_funds() {
        let (mut f, ch) = funds();
        f.lock(ch, n(0), Amount::from_tokens(4)).unwrap();
        assert_eq!(f.balance(ch, n(0)), Amount::from_tokens(6));
        assert_eq!(f.locked(ch, n(0)), Amount::from_tokens(4));
        f.settle(ch, n(0), Amount::from_tokens(4)).unwrap();
        assert_eq!(f.locked(ch, n(0)), Amount::ZERO);
        assert_eq!(f.balance(ch, n(1)), Amount::from_tokens(14));
        assert!(f.verify_conservation());
    }

    #[test]
    fn lock_refund_restores() {
        let (mut f, ch) = funds();
        f.lock(ch, n(1), Amount::from_tokens(3)).unwrap();
        f.refund(ch, n(1), Amount::from_tokens(3)).unwrap();
        assert_eq!(f.balance(ch, n(1)), Amount::from_tokens(10));
        assert!(f.verify_conservation());
    }

    #[test]
    fn insufficient_funds_error_carries_details() {
        let (mut f, ch) = funds();
        let err = f.lock(ch, n(0), Amount::from_tokens(11)).unwrap_err();
        match err {
            PcnError::InsufficientFunds {
                channel,
                requested,
                available,
            } => {
                assert_eq!(channel, ch);
                assert_eq!(requested, Amount::from_tokens(11));
                assert_eq!(available, Amount::from_tokens(10));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn partial_settle_and_refund() {
        let (mut f, ch) = funds();
        f.lock(ch, n(0), Amount::from_tokens(5)).unwrap();
        f.settle(ch, n(0), Amount::from_tokens(2)).unwrap();
        f.refund(ch, n(0), Amount::from_tokens(3)).unwrap();
        assert_eq!(f.balance(ch, n(0)), Amount::from_tokens(8));
        assert_eq!(f.balance(ch, n(1)), Amount::from_tokens(12));
        assert!(f.verify_conservation());
    }

    #[test]
    fn over_settle_rejected() {
        let (mut f, ch) = funds();
        f.lock(ch, n(0), Amount::from_tokens(1)).unwrap();
        assert!(f.settle(ch, n(0), Amount::from_tokens(2)).is_err());
        assert!(f.refund(ch, n(0), Amount::from_tokens(2)).is_err());
        assert!(f.verify_conservation());
    }

    #[test]
    fn non_endpoint_rejected() {
        let (mut f, ch) = funds();
        assert!(matches!(
            f.lock(ch, n(9), Amount::from_tokens(1)),
            Err(PcnError::UnknownNode(_))
        ));
        assert!(matches!(
            f.lock(ChannelId::new(42), n(0), Amount::from_tokens(1)),
            Err(PcnError::UnknownChannel(_))
        ));
    }

    #[test]
    fn funds_epoch_counts_only_successful_movements() {
        let (mut f, ch) = funds();
        assert_eq!(f.funds_epoch(), 0);
        f.lock(ch, n(0), Amount::from_tokens(4)).unwrap();
        assert_eq!(f.funds_epoch(), 1);
        // Failed lock: no movement, no bump.
        assert!(f.lock(ch, n(0), Amount::from_tokens(100)).is_err());
        assert_eq!(f.funds_epoch(), 1);
        f.settle(ch, n(0), Amount::from_tokens(2)).unwrap();
        f.refund(ch, n(0), Amount::from_tokens(2)).unwrap();
        assert_eq!(f.funds_epoch(), 3);
        // Failed settle/refund on an empty lock: no bump.
        assert!(f.settle(ch, n(0), Amount::from_tokens(1)).is_err());
        assert!(f.refund(ch, n(0), Amount::from_tokens(1)).is_err());
        assert_eq!(f.funds_epoch(), 3);
    }

    #[test]
    fn channel_epochs_are_scoped_to_the_moved_channel() {
        let mut g = Graph::new(3);
        let ab = g.add_edge(n(0), n(1));
        let bc = g.add_edge(n(1), n(2));
        let mut f = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        assert_eq!((f.channel_epoch(ab), f.channel_epoch(bc)), (0, 0));
        f.lock(ab, n(0), Amount::from_tokens(1)).unwrap();
        f.settle(ab, n(0), Amount::from_tokens(1)).unwrap();
        // Only the touched channel advanced; the global counter saw both.
        assert_eq!(f.channel_epoch(ab), 2);
        assert_eq!(f.channel_epoch(bc), 0);
        assert_eq!(f.funds_epoch(), 2);
        f.lock(bc, n(2), Amount::from_tokens(1)).unwrap();
        f.refund(bc, n(2), Amount::from_tokens(1)).unwrap();
        assert_eq!(f.channel_epoch(ab), 2);
        assert_eq!(f.channel_epoch(bc), 2);
        assert_eq!(f.funds_epoch(), 4);
        // Failed movements bump nothing.
        assert!(f.lock(ab, n(0), Amount::from_tokens(100)).is_err());
        assert_eq!(f.channel_epoch(ab), 2);
        // Unknown channels report zero.
        assert_eq!(f.channel_epoch(ChannelId::new(77)), 0);
    }

    #[test]
    fn add_channel_extends_the_dense_table() {
        let (mut f, ch) = funds();
        assert_eq!(f.len(), 1);
        f.add_channel(n(0), n(1), Amount::from_tokens(3), Amount::from_tokens(7));
        assert_eq!(f.len(), 2);
        let new = ChannelId::new(1);
        assert_eq!(f.balance(new, n(0)), Amount::from_tokens(3));
        assert_eq!(f.balance(new, n(1)), Amount::from_tokens(7));
        assert_eq!(f.total(new), Amount::from_tokens(10));
        assert_eq!(f.channel_epoch(new), 0);
        // The pre-existing channel is untouched.
        assert_eq!(f.total(ch), Amount::from_tokens(20));
        f.lock(new, n(1), Amount::from_tokens(2)).unwrap();
        assert_eq!(f.channel_epoch(new), 1);
        assert!(f.verify_conservation());
    }

    #[test]
    fn rebalance_equalize_splits_spendable_only() {
        let (mut f, ch) = funds();
        // Drift the channel: move 6 tokens 0→1, lock 2 more in flight.
        f.lock(ch, n(0), Amount::from_tokens(6)).unwrap();
        f.settle(ch, n(0), Amount::from_tokens(6)).unwrap();
        f.lock(ch, n(1), Amount::from_tokens(2)).unwrap();
        assert_eq!(f.balance(ch, n(0)), Amount::from_tokens(4));
        assert_eq!(f.balance(ch, n(1)), Amount::from_tokens(14));
        let epoch = f.funds_epoch();
        f.rebalance_equalize(ch).unwrap();
        // Spendable 18 splits 9/9; the 2 locked tokens stay locked.
        assert_eq!(f.balance(ch, n(0)), Amount::from_tokens(9));
        assert_eq!(f.balance(ch, n(1)), Amount::from_tokens(9));
        assert_eq!(f.locked(ch, n(1)), Amount::from_tokens(2));
        assert_eq!(f.funds_epoch(), epoch + 1);
        assert!(f.verify_conservation());
        // Already balanced: a second pass moves nothing and bumps nothing.
        f.rebalance_equalize(ch).unwrap();
        assert_eq!(f.funds_epoch(), epoch + 1);
        assert!(f.rebalance_equalize(ChannelId::new(9)).is_err());
    }

    #[test]
    fn drain_detection() {
        let (mut f, ch) = funds();
        assert!(!f.is_drained(ch, n(0)));
        f.lock(ch, n(0), Amount::from_tokens(10)).unwrap();
        f.settle(ch, n(0), Amount::from_tokens(10)).unwrap();
        assert!(f.is_drained(ch, n(0)));
        assert_eq!(f.drained_directions(), 1);
    }

    #[test]
    fn asymmetric_funding() {
        let mut g = Graph::new(2);
        let ch = g.add_edge(n(0), n(1));
        let f = NetworkFunds::from_graph(&g, |_, side| {
            if side == n(0) {
                Amount::from_tokens(3)
            } else {
                Amount::from_tokens(7)
            }
        });
        assert_eq!(f.balance(ch, n(0)), Amount::from_tokens(3));
        assert_eq!(f.balance(ch, n(1)), Amount::from_tokens(7));
        assert_eq!(f.total(ch), Amount::from_tokens(10));
        assert_eq!(f.grand_total(), Amount::from_tokens(10));
    }

    #[test]
    fn conservation_under_random_ops() {
        use pcn_sim::SimRng;
        let mut g = Graph::new(4);
        let chans: Vec<ChannelId> = (0..4)
            .map(|i| g.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % 4)))
            .collect();
        let mut f = NetworkFunds::uniform(&g, Amount::from_tokens(20));
        let mut rng = SimRng::seed(3);
        let grand = f.grand_total();
        for _ in 0..2000 {
            let ch = chans[rng.index(4)];
            // Channel i connects node i and node (i+1) % 4.
            let side = if rng.chance(0.5) {
                NodeId::from_index(ch.index())
            } else {
                NodeId::from_index((ch.index() + 1) % 4)
            };
            let amt = Amount::from_millitokens(rng.range(1, 3_000));
            match rng.index(3) {
                0 => {
                    let _ = f.lock(ch, side, amt);
                }
                1 => {
                    let locked = f.locked(ch, side);
                    let _ = f.settle(ch, side, amt.min(locked));
                }
                _ => {
                    let locked = f.locked(ch, side);
                    let _ = f.refund(ch, side, amt.min(locked));
                }
            }
            assert!(f.verify_conservation());
            assert_eq!(f.grand_total(), grand);
        }
    }
}
