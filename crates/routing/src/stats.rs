//! Run statistics: the measurements behind every figure.

use pcn_sim::metrics::Histogram;
use pcn_types::Amount;

use crate::cache::PathCacheStats;

/// Aggregated outcome of one engine run.
///
/// Equality ignores [`RunStats::wall_secs`] (wall-clock time is
/// machine-dependent by nature); every other field — including the
/// diagnostic cache counters — participates, and the determinism suite
/// compares the semantic payload via
/// [`RunStats::without_cache_counters`].
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Transactions generated.
    pub generated: u64,
    /// Total value generated.
    pub generated_value: Amount,
    /// Transactions fully completed before their deadline.
    pub completed: u64,
    /// Total value of completed transactions.
    pub completed_value: Amount,
    /// Transactions that failed (timeout or unroutable).
    pub failed: u64,
    /// Completion latency of successful transactions (seconds).
    pub latency: Histogram,
    /// Messages × hops: TU forwards + acks + probes + state sync.
    pub overhead_msgs: u64,
    /// TUs that were congestion-marked.
    pub marked_tus: u64,
    /// TUs aborted (timeout, queue overflow, dead channel).
    pub aborted_tus: u64,
    /// TUs delivered.
    pub delivered_tus: u64,
    /// Directed channel sides fully drained at the end (deadlock symptom).
    pub drained_directions_end: usize,
    /// Payments that found no path at all.
    pub unroutable: u64,
    /// World-timeline events applied mid-run (rate shifts, hub outages
    /// and recoveries, channel churn, rebalances). Semantic — identical
    /// across cache/backend/worker configurations of the same run.
    pub world_events_applied: u64,
    /// In-flight TUs expired (refunded) because a channel on their path
    /// closed mid-run. Semantic, like [`RunStats::aborted_tus`] (which
    /// includes them).
    pub tus_expired_by_close: u64,
    /// CSR adjacency compactions the graph performed during the run
    /// (watermark-triggered rebuilds absorbing churn tombstones and the
    /// delta overlay). Semantic: compaction timing is a pure function of
    /// the mutation sequence, so this must be identical across
    /// cache/backend/worker configurations of the same run.
    pub graph_compactions: u64,
    /// Adversarial fault interventions applied (channel drops, injected
    /// delays, rogue-hub stalls/misorders; griefed locks are counted
    /// separately). Semantic: fault decisions are pure hashes of the
    /// plan salt and the forward's identity, identical across
    /// cache/backend/shard configurations.
    pub faults_injected: u64,
    /// Hop locks acquired by griefer TUs and then stalled for the plan's
    /// hold time (the lock-and-stall attack's footprint). Semantic.
    pub griefed_locks: u64,
    /// Deadlock-detector firings: price ticks at which no lock or settle
    /// had happened for a whole interval while a fully-drained channel
    /// cycle existed (edge-triggered — one firing per stall episode).
    /// Only adversarial runs arm the detector. Semantic.
    pub deadlocks_detected: u64,
    /// Honest (non-adversary-originated) payments generated: everything
    /// except griefer and circular-demand ring traffic. Equals
    /// [`RunStats::generated`] on honest runs. Semantic.
    pub honest_generated: u64,
    /// Honest payments completed before their deadline. Semantic.
    pub honest_completed: u64,
    /// Largest extra fault-injected forwarding delay applied to any
    /// honest TU, in microseconds (griefers stalling their *own* TUs are
    /// excluded — this measures collateral damage). Semantic; merges as
    /// a max like the wall clock.
    pub max_stall_us: u64,
    /// End-of-run value-conservation failures (0 = every channel's
    /// spendable + locked still sums to its funding). Checked in release
    /// builds too, so adversarial runs cannot silently leak value.
    /// Semantic.
    pub conservation_violations: u64,
    /// Payment plans that went through a goal-directed computation:
    /// [`crate::EngineConfig::use_goal_directed`] on and the scheme's
    /// plan running accelerable searches for this payment (unit-cost
    /// KSP/EDS/Heuristic selection, landmark hub-leg trees, Flash mice
    /// pools). Semantic across cache/backend/shard configurations of
    /// one run; it legitimately differs across the toggle itself, which
    /// is what [`RunStats::without_planner_counters`] is for.
    pub goal_directed_plans: u64,
    /// ALT landmark-table rebuilds (lazy, on topology-epoch mismatch).
    /// Semantic across cache/backend/shard configurations: every
    /// sharded replica keeps its table in lockstep, and freshness is
    /// checked per plan whether or not the cache then absorbs the
    /// searches. Zero when goal-directed planning is off or the scheme
    /// never consults the table.
    pub landmark_rebuilds: u64,
    /// Nodes settled (non-stale heap pops) by every Dijkstra-family
    /// search the planner ran — plain, tree-building and goal-directed
    /// alike (widest-path and max-flow searches are not counted).
    /// Diagnostic like the cache counters: a cache hit skips its
    /// searches entirely, so cached and uncached runs differ here.
    pub nodes_settled: u64,
    /// Path-cache counters (hits/misses/invalidations/evictions).
    /// Diagnostic only: the cache is semantics-preserving, so these are
    /// the *only* fields allowed to differ between a cached and an
    /// uncached run of the same seed (pinned by `tests/determinism.rs`).
    pub path_cache: PathCacheStats,
    /// Wall-clock seconds the engine's event loop took (measured, not
    /// simulated). Diagnostic only — excluded from equality — and the
    /// input to [`RunStats::payments_per_sec`].
    pub wall_secs: f64,
}

/// A started wall-clock measurement. Obtain one via [`wall_timer`].
#[derive(Debug)]
pub struct WallTimer {
    start: std::time::Instant,
}

impl WallTimer {
    /// Seconds elapsed since the timer was started.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Starts a wall-clock timer.
///
/// This is the workspace's single allowlisted ambient-clock site
/// (splicer-lint R2): every semantic wall-clock measurement funnels
/// through here, and the only thing it can feed is the diagnostic
/// [`RunStats::wall_secs`] field, which equality already ignores.
/// Benches keep raw `Instant` via the tests/benches exemption.
pub fn wall_timer() -> WallTimer {
    WallTimer {
        start: std::time::Instant::now(),
    }
}

impl PartialEq for RunStats {
    fn eq(&self, other: &Self) -> bool {
        // Everything except the machine-dependent wall clock. The
        // exhaustive destructure makes adding a field without deciding
        // its equality role a compile error — silently excluding a new
        // counter would hollow out every determinism assertion.
        let RunStats {
            generated,
            generated_value,
            completed,
            completed_value,
            failed,
            latency,
            overhead_msgs,
            marked_tus,
            aborted_tus,
            delivered_tus,
            drained_directions_end,
            unroutable,
            world_events_applied,
            tus_expired_by_close,
            graph_compactions,
            faults_injected,
            griefed_locks,
            deadlocks_detected,
            honest_generated,
            honest_completed,
            max_stall_us,
            conservation_violations,
            goal_directed_plans,
            landmark_rebuilds,
            nodes_settled,
            path_cache,
            wall_secs: _,
        } = self;
        *generated == other.generated
            && *generated_value == other.generated_value
            && *completed == other.completed
            && *completed_value == other.completed_value
            && *failed == other.failed
            && *latency == other.latency
            && *overhead_msgs == other.overhead_msgs
            && *marked_tus == other.marked_tus
            && *aborted_tus == other.aborted_tus
            && *delivered_tus == other.delivered_tus
            && *drained_directions_end == other.drained_directions_end
            && *unroutable == other.unroutable
            && *world_events_applied == other.world_events_applied
            && *tus_expired_by_close == other.tus_expired_by_close
            && *graph_compactions == other.graph_compactions
            && *faults_injected == other.faults_injected
            && *griefed_locks == other.griefed_locks
            && *deadlocks_detected == other.deadlocks_detected
            && *honest_generated == other.honest_generated
            && *honest_completed == other.honest_completed
            && *max_stall_us == other.max_stall_us
            && *conservation_violations == other.conservation_violations
            && *goal_directed_plans == other.goal_directed_plans
            && *landmark_rebuilds == other.landmark_rebuilds
            && *nodes_settled == other.nodes_settled
            && *path_cache == other.path_cache
    }
}

impl RunStats {
    /// Transaction success ratio: completed / generated (§V-B).
    pub fn tsr(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.completed as f64 / self.generated as f64
        }
    }

    /// Normalized throughput: completed value / generated value (§V-B).
    pub fn normalized_throughput(&self) -> f64 {
        self.completed_value.ratio(self.generated_value)
    }

    /// Mean completion latency in seconds (0 when nothing completed).
    pub fn avg_latency_secs(&self) -> f64 {
        self.latency.mean()
    }

    /// Engine throughput: payments processed per wall-clock second
    /// (0 when the run was not timed). Sweeps surface this next to the
    /// success ratio so event-loop performance is visible per cell.
    pub fn payments_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.generated as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Honest-traffic success ratio: honest completions over honest
    /// generations — the number an adversarial sweep watches, since the
    /// attacker's own traffic failing is not degradation. Equals
    /// [`RunStats::tsr`] on honest runs.
    pub fn honest_tsr(&self) -> f64 {
        if self.honest_generated == 0 {
            0.0
        } else {
            self.honest_completed as f64 / self.honest_generated as f64
        }
    }

    /// Whether the bookkeeping is internally consistent. Adversarial
    /// runs are held to the same bounds as honest ones — the honest
    /// sub-counters must nest inside the totals and every griefed lock
    /// must have been a counted lock message — so fault injection cannot
    /// silently break value accounting.
    pub fn is_consistent(&self) -> bool {
        self.completed + self.failed <= self.generated
            && self.completed_value <= self.generated_value
            && self.honest_generated <= self.generated
            && self.honest_completed <= self.honest_generated
            && self.honest_completed <= self.completed
            && self.griefed_locks <= self.overhead_msgs
            && self.conservation_violations == 0
    }

    /// Aggregates several runs' statistics into one: semantic counters
    /// sum, latency histograms concatenate, cache counters combine per
    /// cause, and the wall clock (equality-exempt, as ever) takes the
    /// max — the convention for concurrently-executed parts. Merging a
    /// single run reproduces it exactly (pinned by
    /// `merge_of_one_is_identity`); merging nothing is the zero run.
    ///
    /// Note this is *summing* aggregation — for disjoint workloads
    /// (sweep cells, split traces). The sharded engine's replicas are
    /// **not** disjoint (each replays the full run), so
    /// [`crate::ShardedEngine`] asserts replica equality and keeps one
    /// payload instead of calling this.
    pub fn merge(runs: &[RunStats]) -> RunStats {
        let mut out = RunStats::default();
        for run in runs {
            // Exhaustive destructure: a new field must choose its merge
            // role here or this stops compiling.
            let RunStats {
                generated,
                generated_value,
                completed,
                completed_value,
                failed,
                latency,
                overhead_msgs,
                marked_tus,
                aborted_tus,
                delivered_tus,
                drained_directions_end,
                unroutable,
                world_events_applied,
                tus_expired_by_close,
                graph_compactions,
                faults_injected,
                griefed_locks,
                deadlocks_detected,
                honest_generated,
                honest_completed,
                max_stall_us,
                conservation_violations,
                goal_directed_plans,
                landmark_rebuilds,
                nodes_settled,
                path_cache,
                wall_secs,
            } = run;
            out.generated += generated;
            out.generated_value += *generated_value;
            out.completed += completed;
            out.completed_value += *completed_value;
            out.failed += failed;
            out.latency.merge(latency);
            out.overhead_msgs += overhead_msgs;
            out.marked_tus += marked_tus;
            out.aborted_tus += aborted_tus;
            out.delivered_tus += delivered_tus;
            out.drained_directions_end += drained_directions_end;
            out.unroutable += unroutable;
            out.world_events_applied += world_events_applied;
            out.tus_expired_by_close += tus_expired_by_close;
            out.graph_compactions += graph_compactions;
            out.faults_injected += faults_injected;
            out.griefed_locks += griefed_locks;
            out.deadlocks_detected += deadlocks_detected;
            out.honest_generated += honest_generated;
            out.honest_completed += honest_completed;
            // The worst stall across the merged parts, like the wall clock.
            out.max_stall_us = out.max_stall_us.max(*max_stall_us);
            out.conservation_violations += conservation_violations;
            out.goal_directed_plans += goal_directed_plans;
            out.landmark_rebuilds += landmark_rebuilds;
            out.nodes_settled += nodes_settled;
            out.path_cache.absorb(path_cache);
            out.wall_secs = out.wall_secs.max(*wall_secs);
        }
        out
    }

    /// This run with the diagnostic cache counters zeroed — the semantic
    /// payload that must be identical regardless of caching, worker
    /// count, or workspace reuse.
    pub fn without_cache_counters(&self) -> RunStats {
        RunStats {
            path_cache: PathCacheStats::default(),
            nodes_settled: 0,
            wall_secs: 0.0,
            ..self.clone()
        }
    }

    /// This run with every planner-observability counter zeroed —
    /// [`RunStats::goal_directed_plans`], [`RunStats::landmark_rebuilds`]
    /// and [`RunStats::nodes_settled`]. Composed with
    /// [`RunStats::without_cache_counters`], this is the payload that
    /// must be bit-identical when `use_goal_directed` is flipped: the
    /// accelerated searches return the same paths, only the bookkeeping
    /// about *how* they were found may change.
    pub fn without_planner_counters(&self) -> RunStats {
        RunStats {
            goal_directed_plans: 0,
            landmark_rebuilds: 0,
            nodes_settled: 0,
            ..self.clone()
        }
    }
}

impl core::fmt::Display for RunStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "tsr={:.3} throughput={:.3} latency={:.3}s gen={} done={} fail={} overhead={} \
             drained={} cache={}h/{}m/{}i[{}t/{}f/{}p/{}fp]/{}e world={}ev/{}exp/{}gc \
             adv={}f/{}g/{}dl stall={}us honest={}/{} viol={} \
             planner={}gd/{}lr/{}ns pps={:.0}",
            self.tsr(),
            self.normalized_throughput(),
            self.avg_latency_secs(),
            self.generated,
            self.completed,
            self.failed,
            self.overhead_msgs,
            self.drained_directions_end,
            self.path_cache.hits,
            self.path_cache.misses,
            self.path_cache.invalidations(),
            self.path_cache.inv_topology,
            self.path_cache.inv_funds,
            self.path_cache.inv_price,
            self.path_cache.inv_footprint,
            self.path_cache.evictions,
            self.world_events_applied,
            self.tus_expired_by_close,
            self.graph_compactions,
            self.faults_injected,
            self.griefed_locks,
            self.deadlocks_detected,
            self.max_stall_us,
            self.honest_completed,
            self.honest_generated,
            self.conservation_violations,
            self.goal_directed_plans,
            self.landmark_rebuilds,
            self.nodes_settled,
            self.payments_per_sec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = RunStats {
            generated: 10,
            completed: 7,
            failed: 3,
            generated_value: Amount::from_tokens(100),
            completed_value: Amount::from_tokens(60),
            ..Default::default()
        };
        s.latency.record(1.0);
        s.latency.record(3.0);
        assert!((s.tsr() - 0.7).abs() < 1e-12);
        assert!((s.normalized_throughput() - 0.6).abs() < 1e-12);
        assert_eq!(s.avg_latency_secs(), 2.0);
        assert!(s.is_consistent());
    }

    #[test]
    fn empty_run_is_zero() {
        let s = RunStats::default();
        assert_eq!(s.tsr(), 0.0);
        assert_eq!(s.normalized_throughput(), 0.0);
        assert!(s.is_consistent());
    }

    #[test]
    fn display_contains_key_numbers() {
        let s = RunStats {
            generated: 5,
            completed: 5,
            generated_value: Amount::from_tokens(10),
            completed_value: Amount::from_tokens(10),
            path_cache: PathCacheStats {
                hits: 3,
                misses: 2,
                inv_topology: 1,
                inv_footprint: 2,
                evictions: 4,
                ..Default::default()
            },
            world_events_applied: 6,
            tus_expired_by_close: 2,
            ..Default::default()
        };
        let shown = s.to_string();
        assert!(shown.contains("tsr=1.000"));
        assert!(shown.contains("gen=5"));
        assert!(
            shown.contains("cache=3h/2m/3i[1t/0f/0p/2fp]/4e"),
            "per-cause invalidation breakdown must be visible: {shown}"
        );
        assert!(shown.contains("world=6ev/2exp"));
    }

    #[test]
    fn display_surfaces_planner_counters() {
        let s = RunStats {
            goal_directed_plans: 11,
            landmark_rebuilds: 3,
            nodes_settled: 999,
            ..Default::default()
        };
        assert!(s.to_string().contains("planner=11gd/3lr/999ns"));
    }

    #[test]
    fn planner_counters_zero_out_together() {
        let mut a = sample_run();
        let mut b = sample_run();
        a.goal_directed_plans = 0;
        a.landmark_rebuilds = 0;
        a.nodes_settled = 0;
        b.path_cache.hits += 1;
        assert_ne!(a, b.without_planner_counters());
        assert_eq!(
            a.without_cache_counters(),
            b.without_planner_counters().without_cache_counters()
        );
    }

    /// A fully-populated sample run: every field nonzero so identity
    /// and summing bugs cannot hide behind defaults.
    fn sample_run() -> RunStats {
        let mut s = RunStats {
            generated: 10,
            generated_value: Amount::from_tokens(100),
            completed: 7,
            completed_value: Amount::from_tokens(60),
            failed: 3,
            overhead_msgs: 42,
            marked_tus: 4,
            aborted_tus: 5,
            delivered_tus: 30,
            drained_directions_end: 2,
            unroutable: 1,
            world_events_applied: 6,
            tus_expired_by_close: 2,
            graph_compactions: 1,
            faults_injected: 3,
            griefed_locks: 2,
            deadlocks_detected: 1,
            honest_generated: 9,
            honest_completed: 6,
            max_stall_us: 250,
            conservation_violations: 1,
            goal_directed_plans: 7,
            landmark_rebuilds: 2,
            nodes_settled: 480,
            path_cache: PathCacheStats {
                hits: 9,
                misses: 8,
                inv_topology: 1,
                inv_funds: 2,
                inv_price: 3,
                inv_footprint: 4,
                evictions: 5,
                // No `..Default::default()`: a new counter must be
                // populated here for the merge tests to stay honest.
            },
            wall_secs: 1.5,
            ..Default::default()
        };
        s.latency.record(0.4);
        s.latency.record(1.2);
        s
    }

    #[test]
    fn merge_of_one_is_identity() {
        let a = sample_run();
        let merged = RunStats::merge(std::slice::from_ref(&a));
        assert_eq!(merged, a);
        // The equality-exempt wall clock must round-trip too.
        assert_eq!(merged.wall_secs, a.wall_secs);
        assert_eq!(merged.path_cache, a.path_cache);
    }

    #[test]
    fn merge_sums_counters_and_maxes_wall_clock() {
        let a = sample_run();
        let mut b = sample_run();
        b.wall_secs = 0.5;
        b.latency.record(9.0);
        b.max_stall_us = 90;
        let merged = RunStats::merge(&[a.clone(), b.clone()]);
        assert_eq!(merged.generated, a.generated + b.generated);
        assert_eq!(
            merged.generated_value,
            a.generated_value + b.generated_value
        );
        assert_eq!(
            merged.latency.count(),
            a.latency.count() + b.latency.count()
        );
        assert_eq!(
            merged.path_cache.hits,
            a.path_cache.hits + b.path_cache.hits
        );
        assert_eq!(
            merged.path_cache.invalidations(),
            a.path_cache.invalidations() + b.path_cache.invalidations()
        );
        assert_eq!(merged.wall_secs, 1.5, "wall clock is a max, not a sum");
        assert_eq!(merged.drained_directions_end, 4);
        assert_eq!(merged.faults_injected, a.faults_injected * 2);
        assert_eq!(merged.honest_generated, a.honest_generated * 2);
        assert_eq!(merged.max_stall_us, 250, "worst stall is a max, not a sum");
        assert_eq!(merged.goal_directed_plans, a.goal_directed_plans * 2);
        assert_eq!(merged.nodes_settled, a.nodes_settled * 2);
    }

    #[test]
    fn merge_of_none_is_the_zero_run() {
        assert_eq!(RunStats::merge(&[]), RunStats::default());
    }

    #[test]
    fn cache_counters_are_the_only_diagnostic_difference() {
        let mut a = RunStats {
            generated: 4,
            completed: 4,
            ..Default::default()
        };
        let b = a.clone();
        a.path_cache.hits = 10;
        assert_ne!(a, b);
        assert_eq!(a.without_cache_counters(), b.without_cache_counters());
    }
}
