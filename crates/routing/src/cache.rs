//! The epoch-versioned path cache.
//!
//! Path planning is the engine's hot loop: every payment admission runs
//! one or more graph searches over a topology that changes rarely and
//! channel state that changes often. The cache memoizes plan results
//! keyed by `(source, dest, scheme-view class)` and versions every entry
//! with an [`EpochStamp`] — a snapshot of the three counters whose
//! movement can change a path computation's inputs:
//!
//! * `topology` — [`pcn_graph::Graph::topology_epoch`], bumped on every
//!   structural mutation,
//! * `funds` — [`crate::channel::NetworkFunds::funds_epoch`], bumped on
//!   every balance movement (lock / settle / refund, which includes
//!   every depletion and refill),
//! * `prices` — [`crate::prices::PriceTable::price_epoch`], bumped on
//!   every τ price tick.
//!
//! Which counters an entry depends on is its [`Volatility`]:
//! capacity-only computations read channel *totals* (constant for a
//! channel's lifetime) so they only stale on topology changes, while
//! live-balance computations stale on any funds or price movement. A hit
//! is therefore **semantics-preserving by construction**: an entry is
//! only served while every input of the original computation is
//! provably unchanged, so the cached result is bit-identical to what
//! recomputation would return. `tests/determinism.rs` pins this down by
//! diffing cache-enabled against cache-disabled engine runs.
//!
//! Hit/miss/invalidation counters are exported into
//! [`crate::stats::RunStats`] (and from there into every harness grid
//! cell) so the cache's effectiveness is visible per experiment.

use std::collections::HashMap;

use pcn_graph::Path;
use pcn_types::NodeId;

/// Snapshot of the three invalidation counters an entry may depend on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStamp {
    /// Structural graph mutations ([`pcn_graph::Graph::topology_epoch`]).
    pub topology: u64,
    /// Channel balance movements
    /// ([`crate::channel::NetworkFunds::funds_epoch`]).
    pub funds: u64,
    /// Price ticks ([`crate::prices::PriceTable::price_epoch`]).
    pub prices: u64,
}

/// How volatile a cached computation's inputs are — which epochs
/// invalidate it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Volatility {
    /// The computation reads only the topology and constant channel
    /// totals: stale only when the topology epoch moves.
    CapacityOnly,
    /// The computation reads live balances (and, conservatively, prices):
    /// stale when any epoch moves.
    Live,
}

impl Volatility {
    fn still_fresh(self, entry: EpochStamp, now: EpochStamp) -> bool {
        match self {
            Volatility::CapacityOnly => entry.topology == now.topology,
            Volatility::Live => entry == now,
        }
    }
}

/// Which kind of plan a cached entry holds. One engine runs one scheme,
/// but a single scheme can issue differently-shaped queries for the same
/// endpoint pair (Flash: a mice pool *and* an elephant max-flow plan),
/// so the class is part of the key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanClass {
    /// The scheme's full path plan for a payment.
    Plan,
    /// Flash's precomputed mice path pool (one path is drawn per payment).
    MicePool,
    /// Flash's elephant max-flow decomposition.
    Elephant,
}

/// Cache key: endpoints plus the scheme-view class of the query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Payment source (or sub-query source).
    pub source: NodeId,
    /// Payment destination.
    pub dest: NodeId,
    /// Query class.
    pub class: PlanClass,
}

impl CacheKey {
    /// Key for a scheme's full plan.
    pub fn plan(source: NodeId, dest: NodeId) -> CacheKey {
        CacheKey {
            source,
            dest,
            class: PlanClass::Plan,
        }
    }
}

/// Hit/miss/invalidation counters, exported into run statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathCacheStats {
    /// Queries served from a fresh entry.
    pub hits: u64,
    /// Queries with no entry at all (first sight of the key).
    pub misses: u64,
    /// Queries that found a stale entry (recomputed and replaced).
    pub invalidations: u64,
}

impl PathCacheStats {
    /// Total queries that went through the cache.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.invalidations
    }

    /// Fraction of lookups served from cache (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    stamp: EpochStamp,
    volatility: Volatility,
    paths: Vec<Path>,
}

/// The epoch-versioned path cache; see the module docs for the
/// invalidation contract.
#[derive(Default)]
pub struct PathCache {
    entries: HashMap<CacheKey, CacheEntry>,
    stats: PathCacheStats,
}

impl PathCache {
    /// Creates an empty cache.
    pub fn new() -> PathCache {
        PathCache::default()
    }

    /// Returns the cached paths for `key` if the entry is still fresh at
    /// `now`; otherwise runs `compute`, stores its result stamped with
    /// `now`/`volatility`, and returns it. Counters are updated either
    /// way.
    pub fn get_or_compute<F>(
        &mut self,
        key: CacheKey,
        now: EpochStamp,
        volatility: Volatility,
        compute: F,
    ) -> &[Path]
    where
        F: FnOnce() -> Vec<Path>,
    {
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                if slot.get().volatility.still_fresh(slot.get().stamp, now) {
                    self.stats.hits += 1;
                } else {
                    self.stats.invalidations += 1;
                    *slot.get_mut() = CacheEntry {
                        stamp: now,
                        volatility,
                        paths: compute(),
                    };
                }
                &slot.into_mut().paths
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.stats.misses += 1;
                &slot
                    .insert(CacheEntry {
                        stamp: now,
                        volatility,
                        paths: compute(),
                    })
                    .paths
            }
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> PathCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn path01() -> Path {
        let mut g = pcn_graph::Graph::new(2);
        let ch = g.add_edge(n(0), n(1));
        Path::new(vec![n(0), n(1)], vec![ch])
    }

    fn stamp(t: u64, f: u64, p: u64) -> EpochStamp {
        EpochStamp {
            topology: t,
            funds: f,
            prices: p,
        }
    }

    #[test]
    fn first_lookup_is_a_miss_then_hits() {
        let mut cache = PathCache::new();
        let key = CacheKey::plan(n(0), n(1));
        let now = stamp(1, 1, 1);
        let a = cache
            .get_or_compute(key, now, Volatility::CapacityOnly, || vec![path01()])
            .to_vec();
        let b = cache
            .get_or_compute(key, now, Volatility::CapacityOnly, || {
                panic!("fresh entry must not recompute")
            })
            .to_vec();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].nodes(), b[0].nodes());
        assert_eq!(
            cache.stats(),
            PathCacheStats {
                hits: 1,
                misses: 1,
                invalidations: 0
            }
        );
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_only_entries_survive_funds_and_price_movement() {
        let mut cache = PathCache::new();
        let key = CacheKey::plan(n(0), n(1));
        cache.get_or_compute(key, stamp(3, 10, 2), Volatility::CapacityOnly, || {
            vec![path01()]
        });
        // Funds and prices moved; topology did not.
        cache.get_or_compute(key, stamp(3, 99, 7), Volatility::CapacityOnly, || {
            panic!("capacity-only entry must ignore funds/price epochs")
        });
        assert_eq!(cache.stats().hits, 1);
        // Topology moved: stale.
        cache.get_or_compute(key, stamp(4, 99, 7), Volatility::CapacityOnly, Vec::new);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn live_entries_stale_on_any_epoch() {
        let mut cache = PathCache::new();
        let key = CacheKey::plan(n(0), n(1));
        for (i, now) in [
            stamp(1, 1, 1), // miss
            stamp(1, 2, 1), // funds moved
            stamp(1, 2, 2), // prices moved
            stamp(2, 2, 2), // topology moved
        ]
        .into_iter()
        .enumerate()
        {
            cache.get_or_compute(key, now, Volatility::Live, || vec![path01()]);
            assert_eq!(cache.stats().misses, 1, "lookup {i}");
        }
        assert_eq!(cache.stats().invalidations, 3);
        // Unchanged stamp: served from cache.
        cache.get_or_compute(key, stamp(2, 2, 2), Volatility::Live, || {
            panic!("identical stamp must hit")
        });
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn classes_partition_the_key_space() {
        let mut cache = PathCache::new();
        let now = stamp(1, 1, 1);
        let mice = CacheKey {
            source: n(0),
            dest: n(1),
            class: PlanClass::MicePool,
        };
        let elephant = CacheKey {
            source: n(0),
            dest: n(1),
            class: PlanClass::Elephant,
        };
        cache.get_or_compute(mice, now, Volatility::CapacityOnly, || vec![path01()]);
        let got = cache
            .get_or_compute(elephant, now, Volatility::CapacityOnly, Vec::new)
            .len();
        assert_eq!(got, 0, "elephant entry is distinct from the mice pool");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }
}
