//! The epoch-versioned, footprint-scoped path cache.
//!
//! Path planning is the engine's hot loop: every payment admission runs
//! one or more graph searches over a topology that changes rarely and
//! channel state that changes often. The cache memoizes plan results
//! keyed by `(source, dest, scheme-view class)` and serves an entry only
//! while every input of the original computation is provably unchanged,
//! so **a cache hit is bit-identical to recomputation** — pinned for all
//! six schemes by `tests/determinism.rs`. Entries are stored as
//! `Arc<[Path]>`, so a hit hands out a reference-counted plan instead of
//! deep-cloning it.
//!
//! Two freshness regimes implement the contract:
//!
//! * **Epoch-stamped** ([`PathCache::get_or_compute`]): the entry
//!   snapshots an [`EpochStamp`] — the three global counters whose
//!   movement can change a path computation's inputs
//!   ([`pcn_graph::Graph::topology_epoch`] per structural mutation,
//!   [`crate::channel::NetworkFunds::funds_epoch`] per balance movement,
//!   [`crate::prices::PriceTable::price_epoch`] per τ tick). The entry's
//!   [`Volatility`] selects which counters it watches: capacity-only
//!   computations read channel *totals* (constant for a channel's
//!   lifetime) and stale only on topology changes; live ones stale on
//!   any movement anywhere.
//! * **Footprint-scoped** ([`PathCache::get_or_compute_scoped`]): for
//!   live-balance computations, "any movement anywhere" is far too
//!   coarse — it pinned hub-scheme (Splicer) hit rates at ~0%. The
//!   computation instead records the **channel dependency footprint** it
//!   actually read (a [`pcn_graph::Footprint`] threaded through the
//!   width closure, see `crate::paths::select_paths_footprint`) and the
//!   entry snapshots each footprint channel's
//!   [`crate::channel::NetworkFunds::channel_epoch`]. The entry is fresh
//!   iff the topology epoch matches and either the global funds epoch is
//!   unchanged (the cheap "nothing moved at all" fast path) or every
//!   footprint channel's epoch is unchanged. Funds movements on channels
//!   outside the footprint cannot alter the result, so such entries
//!   survive unrelated traffic. Scoped computations read balances only —
//!   never the price table — so they do not watch the price epoch.
//!
//! The cache is bounded by **weight**, not bare entry count: an entry
//! weighs `max(1, footprint pairs / FOOTPRINT_WEIGHT_DIVISOR)` units
//! against [`PathCache::capacity`], so a broad-footprint world — where
//! one live search can consult a large fraction of all channels and its
//! entry stores one `(channel, epoch)` pair per consulted channel —
//! cannot blow worst-case memory past `capacity ×
//! FOOTPRINT_WEIGHT_DIVISOR` pairs. Unscoped entries weigh one unit, so
//! for them the bound degenerates to the entry count. When inserting
//! would exceed the capacity, the cache evicts the first provably-stale
//! entry among a constant-size window of the oldest entries (insertion
//! order), falling back to the oldest entry when none in the window is
//! stale — stale entries go first without a miss ever paying an
//! O(capacity) scan. Eviction is deterministic (insertion order, never
//! hash order), which keeps the diagnostic counters — and therefore
//! whole `RunStats` — reproducible across runs.
//!
//! Hit/miss/invalidation/eviction counters are exported into
//! [`crate::stats::RunStats`] (and from there into every harness grid
//! cell and `probe`) so the cache's effectiveness is visible per
//! experiment.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use pcn_graph::{Footprint, Path};
use pcn_types::{ChannelId, NodeId};

use crate::channel::NetworkFunds;

/// Snapshot of the three global invalidation counters an entry may
/// depend on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStamp {
    /// Structural graph mutations ([`pcn_graph::Graph::topology_epoch`]).
    pub topology: u64,
    /// Global channel balance movements
    /// ([`crate::channel::NetworkFunds::funds_epoch`]).
    pub funds: u64,
    /// Price ticks ([`crate::prices::PriceTable::price_epoch`]).
    pub prices: u64,
}

/// How volatile a cached computation's inputs are — which epochs
/// invalidate it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Volatility {
    /// The computation reads only the topology and constant channel
    /// totals: stale only when the topology epoch moves.
    CapacityOnly,
    /// The computation reads live balances (and, conservatively, prices):
    /// stale when any epoch moves. Prefer
    /// [`PathCache::get_or_compute_scoped`], which narrows this to the
    /// channels actually read.
    Live,
}

impl Volatility {
    fn still_fresh(self, entry: EpochStamp, now: EpochStamp) -> bool {
        match self {
            Volatility::CapacityOnly => entry.topology == now.topology,
            Volatility::Live => entry == now,
        }
    }
}

/// Which kind of plan a cached entry holds. One engine runs one scheme,
/// but a single scheme can issue differently-shaped queries for the same
/// endpoint pair (Flash: a mice pool *and* an elephant max-flow plan;
/// Splicer: per-leg sub-plans), so the class is part of the key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanClass {
    /// The scheme's full path plan for a payment.
    Plan,
    /// Flash's precomputed mice path pool (one path is drawn per payment).
    MicePool,
    /// Flash's elephant max-flow decomposition.
    Elephant,
    /// A hub scheme's client↔hub access leg (`source → hub_s` or
    /// `hub_r → dest`): a pure topology lookup, cached capacity-only.
    HubLeg,
    /// A hub scheme's inter-hub middle segment (`hub_s → hub_r`): a
    /// live-balance search with a small footprint, cached scoped.
    HubMiddle,
}

/// Cache key: endpoints plus the scheme-view class of the query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Payment source (or sub-query source).
    pub source: NodeId,
    /// Payment destination.
    pub dest: NodeId,
    /// Query class.
    pub class: PlanClass,
}

impl CacheKey {
    /// Key for a scheme's full plan.
    pub fn plan(source: NodeId, dest: NodeId) -> CacheKey {
        CacheKey {
            source,
            dest,
            class: PlanClass::Plan,
        }
    }

    /// Key for a hub access leg (`from` endpoint to `to` endpoint).
    pub fn hub_leg(from: NodeId, to: NodeId) -> CacheKey {
        CacheKey {
            source: from,
            dest: to,
            class: PlanClass::HubLeg,
        }
    }

    /// Key for the inter-hub middle segment.
    pub fn hub_middle(hub_s: NodeId, hub_r: NodeId) -> CacheKey {
        CacheKey {
            source: hub_s,
            dest: hub_r,
            class: PlanClass::HubMiddle,
        }
    }
}

/// Why a stale entry went stale — which watched input moved. A single
/// lumped invalidation count hides *which* epoch fired (a dynamic world
/// churns topology while ordinary traffic churns funds), so the cache
/// attributes every invalidation to exactly one cause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StaleCause {
    /// The topology epoch moved (structural mutation, channel
    /// close/reopen, hub outage).
    Topology,
    /// The global funds epoch moved under an unscoped live entry.
    Funds,
    /// The price epoch moved under an unscoped live entry.
    Price,
    /// A channel inside a scoped entry's footprint moved funds.
    Footprint,
}

/// Hit/miss/invalidation/eviction counters, exported into run
/// statistics. Invalidations are split by cause; the lumped total is
/// [`PathCacheStats::invalidations`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathCacheStats {
    /// Queries served from a fresh entry.
    pub hits: u64,
    /// Queries with no entry at all (first sight of the key).
    pub misses: u64,
    /// Stale entries recomputed because the topology epoch moved
    /// (structural mutations: channel close/open, hub outages, node
    /// additions).
    pub inv_topology: u64,
    /// Stale entries recomputed because the global funds epoch moved
    /// under an unscoped live entry.
    pub inv_funds: u64,
    /// Stale entries recomputed because the price epoch moved under an
    /// unscoped live entry.
    pub inv_price: u64,
    /// Stale footprint-scoped entries recomputed because a channel in
    /// their own footprint moved funds.
    pub inv_footprint: u64,
    /// Entries removed to respect the capacity bound.
    pub evictions: u64,
}

impl PathCacheStats {
    /// Total invalidations (stale entries recomputed), across causes.
    pub fn invalidations(&self) -> u64 {
        self.inv_topology + self.inv_funds + self.inv_price + self.inv_footprint
    }

    /// Total queries that went through the cache.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.invalidations()
    }

    /// Fraction of lookups served from cache (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Adds `other`'s counters into this one, per cause — the
    /// aggregation shards and stat merges use. The exhaustive
    /// destructure makes adding a counter without deciding its merge
    /// role a compile error.
    pub fn absorb(&mut self, other: &PathCacheStats) {
        let PathCacheStats {
            hits,
            misses,
            inv_topology,
            inv_funds,
            inv_price,
            inv_footprint,
            evictions,
        } = other;
        self.hits += hits;
        self.misses += misses;
        self.inv_topology += inv_topology;
        self.inv_funds += inv_funds;
        self.inv_price += inv_price;
        self.inv_footprint += inv_footprint;
        self.evictions += evictions;
    }

    fn record_stale(&mut self, cause: StaleCause) {
        match cause {
            StaleCause::Topology => self.inv_topology += 1,
            StaleCause::Funds => self.inv_funds += 1,
            StaleCause::Price => self.inv_price += 1,
            StaleCause::Footprint => self.inv_footprint += 1,
        }
    }
}

struct CacheEntry {
    stamp: EpochStamp,
    volatility: Volatility,
    /// `(channel, per-channel funds epoch at compute time)` for every
    /// channel the computation read — `Some` only for footprint-scoped
    /// entries.
    footprint: Option<Box<[(ChannelId, u64)]>>,
    /// Capacity units this entry counts against the bound:
    /// `max(1, footprint pairs / FOOTPRINT_WEIGHT_DIVISOR)`.
    weight: usize,
    paths: Arc<[Path]>,
}

/// Footprint pairs per capacity unit: an entry's weight is
/// `max(1, pairs / FOOTPRINT_WEIGHT_DIVISOR)`, so the documented memory
/// bound holds at `capacity × FOOTPRINT_WEIGHT_DIVISOR` stored pairs
/// worst-case while small-footprint entries still weigh a single unit.
pub const FOOTPRINT_WEIGHT_DIVISOR: usize = 16;

fn weight_of(footprint_pairs: usize) -> usize {
    (footprint_pairs / FOOTPRINT_WEIGHT_DIVISOR).max(1)
}

impl CacheEntry {
    /// Whether the entry is provably fresh at `now`. Scoped entries need
    /// `funds` for the per-channel check; without it they are fresh only
    /// on the global fast path (conservative, still correct).
    fn is_fresh(&self, now: EpochStamp, funds: Option<&NetworkFunds>) -> bool {
        match &self.footprint {
            Some(fp) => {
                self.stamp.topology == now.topology
                    && (self.stamp.funds == now.funds
                        || funds.is_some_and(|f| {
                            fp.iter().all(|&(ch, epoch)| f.channel_epoch(ch) == epoch)
                        }))
            }
            None => self.volatility.still_fresh(self.stamp, now),
        }
    }

    /// Attributes a (known-stale) entry's staleness to the input that
    /// moved. Exactly one cause is charged, checked in watch order:
    /// topology first (it invalidates every regime), then the regime's
    /// own counters.
    fn stale_cause(&self, now: EpochStamp) -> StaleCause {
        if self.stamp.topology != now.topology {
            StaleCause::Topology
        } else if self.footprint.is_some() {
            // Scoped entry, topology unchanged: the per-channel check
            // failed, i.e. a footprint channel itself moved (or the
            // lookup lacked funds to prove otherwise).
            StaleCause::Footprint
        } else if self.stamp.funds != now.funds {
            StaleCause::Funds
        } else {
            StaleCause::Price
        }
    }
}

/// Default capacity bound (resident entries) of [`PathCache::new`].
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// The epoch-versioned path cache; see the module docs for the
/// invalidation contract.
pub struct PathCache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Resident keys in insertion order (each exactly once) — the
    /// deterministic eviction scan order.
    order: VecDeque<CacheKey>,
    capacity: usize,
    /// Total weight of resident entries (≤ capacity except transiently
    /// for a single entry heavier than the whole cache).
    weight: usize,
    /// Reusable footprint recorder for scoped computations.
    scratch: Footprint,
    stats: PathCacheStats,
}

impl Default for PathCache {
    fn default() -> PathCache {
        PathCache::new()
    }
}

impl PathCache {
    /// Creates an empty cache bounded at [`DEFAULT_CAPACITY`] entries.
    pub fn new() -> PathCache {
        PathCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty cache bounded at `capacity` resident entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> PathCache {
        assert!(capacity > 0, "cache capacity must be positive");
        PathCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            weight: 0,
            scratch: Footprint::new(),
            stats: PathCacheStats::default(),
        }
    }

    /// The capacity bound (weight units; an unscoped entry weighs one).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total weight of the resident entries.
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// Returns the cached paths for `key` if the entry is still fresh at
    /// `now`; otherwise runs `compute`, stores its result stamped with
    /// `now`/`volatility`, and returns it. Counters are updated either
    /// way.
    pub fn get_or_compute<F>(
        &mut self,
        key: CacheKey,
        now: EpochStamp,
        volatility: Volatility,
        compute: F,
    ) -> Arc<[Path]>
    where
        F: FnOnce() -> Vec<Path>,
    {
        self.get_or_compute_with(key, now, volatility, None, compute)
    }

    /// [`PathCache::get_or_compute`] with `funds` available: the lookup
    /// itself is identical, but a capacity eviction triggered by the
    /// insert can then run the per-channel footprint check on candidate
    /// victims, so footprint-fresh scoped entries are not misjudged
    /// stale just because the global funds epoch moved. Callers holding
    /// a [`NetworkFunds`] (the engine always does) should prefer this.
    pub fn get_or_compute_with<F>(
        &mut self,
        key: CacheKey,
        now: EpochStamp,
        volatility: Volatility,
        funds: Option<&NetworkFunds>,
        compute: F,
    ) -> Arc<[Path]>
    where
        F: FnOnce() -> Vec<Path>,
    {
        match self.entries.get(&key) {
            Some(entry) if entry.is_fresh(now, None) => {
                self.stats.hits += 1;
                Arc::clone(&entry.paths)
            }
            found => {
                let stale = found.map(|e| e.stale_cause(now));
                let paths: Arc<[Path]> = compute().into();
                let entry = CacheEntry {
                    stamp: now,
                    volatility,
                    footprint: None,
                    weight: 1,
                    paths: Arc::clone(&paths),
                };
                self.store(key, entry, stale, now, funds);
                paths
            }
        }
    }

    /// Footprint-scoped lookup for live-balance computations. `compute`
    /// receives a cleared [`Footprint`] and must record every channel it
    /// reads (e.g. via `crate::paths::select_paths_footprint`); the
    /// stored entry then snapshots each footprint channel's
    /// [`NetworkFunds::channel_epoch`] and stays fresh across funds
    /// movements confined to other channels. Freshness at `now`:
    /// topology unchanged, and global funds epoch unchanged (fast path)
    /// *or* every footprint channel epoch unchanged.
    pub fn get_or_compute_scoped<F>(
        &mut self,
        key: CacheKey,
        now: EpochStamp,
        funds: &NetworkFunds,
        compute: F,
    ) -> Arc<[Path]>
    where
        F: FnOnce(&mut Footprint) -> Vec<Path>,
    {
        match self.entries.get(&key) {
            Some(entry) if entry.is_fresh(now, Some(funds)) => {
                self.stats.hits += 1;
                Arc::clone(&entry.paths)
            }
            found => {
                let stale = found.map(|e| e.stale_cause(now));
                self.scratch.clear();
                let paths: Arc<[Path]> = compute(&mut self.scratch).into();
                let snapshot: Box<[(ChannelId, u64)]> = self
                    .scratch
                    .channels()
                    .iter()
                    .map(|&ch| (ch, funds.channel_epoch(ch)))
                    .collect();
                let entry = CacheEntry {
                    stamp: now,
                    volatility: Volatility::Live,
                    weight: weight_of(snapshot.len()),
                    footprint: Some(snapshot),
                    paths: Arc::clone(&paths),
                };
                self.store(key, entry, stale, now, Some(funds));
                paths
            }
        }
    }

    /// Replaces a stale entry in place or inserts a new key, evicting
    /// first when the weight bound would be exceeded. Updates the
    /// miss/invalidation counters (`stale` carries the attributed
    /// cause when the key held a stale entry).
    fn store(
        &mut self,
        key: CacheKey,
        entry: CacheEntry,
        stale: Option<StaleCause>,
        now: EpochStamp,
        funds: Option<&NetworkFunds>,
    ) {
        if let Some(cause) = stale {
            self.stats.record_stale(cause);
            let new_weight = entry.weight;
            let slot = self.entries.get_mut(&key).expect("stale entry present");
            self.weight = self.weight - slot.weight + new_weight;
            *slot = entry;
            if self.weight > self.capacity {
                // The replacement grew: shed other entries (never the
                // one just stored).
                self.evict_to_fit(0, now, funds, Some(key));
            }
        } else {
            self.stats.misses += 1;
            self.evict_to_fit(entry.weight, now, funds, None);
            self.weight += entry.weight;
            self.entries.insert(key, entry);
            self.order.push_back(key);
        }
    }

    /// How many of the oldest entries an eviction inspects looking for a
    /// stale victim — a constant bound so a miss on a full cache stays
    /// O(1), not O(capacity).
    const EVICTION_SCAN: usize = 8;

    /// Frees room for `incoming` weight units: evicts the first
    /// provably-stale entry among the [`Self::EVICTION_SCAN`] oldest
    /// (insertion order), falling back to the oldest entry when none of
    /// them is stale, until the incoming entry fits (or nothing
    /// evictable remains — a lone entry heavier than the whole cache is
    /// admitted rather than thrashing). `exclude` protects a key that
    /// must survive (an in-place replacement). `funds` (when the caller
    /// has it) lets the staleness check run the per-channel footprint
    /// comparison, so footprint-fresh entries are not misjudged stale
    /// just because the global epoch moved. Deterministic — the scan
    /// never depends on hash order.
    fn evict_to_fit(
        &mut self,
        incoming: usize,
        now: EpochStamp,
        funds: Option<&NetworkFunds>,
        exclude: Option<CacheKey>,
    ) {
        while self.weight + incoming > self.capacity {
            let mut stale_pos = None;
            let mut oldest_pos = None;
            for (i, k) in self.order.iter().take(Self::EVICTION_SCAN).enumerate() {
                if Some(*k) == exclude {
                    continue;
                }
                if oldest_pos.is_none() {
                    oldest_pos = Some(i);
                }
                if self.entries.get(k).is_some_and(|e| !e.is_fresh(now, funds)) {
                    stale_pos = Some(i);
                    break;
                }
            }
            let Some(pos) = stale_pos.or(oldest_pos) else {
                break;
            };
            let key = self.order.remove(pos).expect("order tracks entries");
            let evicted = self.entries.remove(&key).expect("order tracks entries");
            self.weight -= evicted.weight;
            self.stats.evictions += 1;
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> PathCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_graph::Graph;
    use pcn_types::Amount;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn path01() -> Path {
        let mut g = Graph::new(2);
        let ch = g.add_edge(n(0), n(1));
        Path::new(vec![n(0), n(1)], vec![ch])
    }

    fn stamp(t: u64, f: u64, p: u64) -> EpochStamp {
        EpochStamp {
            topology: t,
            funds: f,
            prices: p,
        }
    }

    #[test]
    fn first_lookup_is_a_miss_then_hits() {
        let mut cache = PathCache::new();
        let key = CacheKey::plan(n(0), n(1));
        let now = stamp(1, 1, 1);
        let a = cache.get_or_compute(key, now, Volatility::CapacityOnly, || vec![path01()]);
        let b = cache.get_or_compute(key, now, Volatility::CapacityOnly, || {
            panic!("fresh entry must not recompute")
        });
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].nodes(), b[0].nodes());
        assert_eq!(
            cache.stats(),
            PathCacheStats {
                hits: 1,
                misses: 1,
                ..PathCacheStats::default()
            }
        );
        assert_eq!(cache.stats().invalidations(), 0);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hits_share_the_stored_allocation() {
        let mut cache = PathCache::new();
        let key = CacheKey::plan(n(0), n(1));
        let now = stamp(1, 1, 1);
        let a = cache.get_or_compute(key, now, Volatility::CapacityOnly, || vec![path01()]);
        let b = cache.get_or_compute(key, now, Volatility::CapacityOnly, Vec::new);
        assert!(Arc::ptr_eq(&a, &b), "a hit must not deep-clone the plan");
    }

    #[test]
    fn capacity_only_entries_survive_funds_and_price_movement() {
        let mut cache = PathCache::new();
        let key = CacheKey::plan(n(0), n(1));
        cache.get_or_compute(key, stamp(3, 10, 2), Volatility::CapacityOnly, || {
            vec![path01()]
        });
        // Funds and prices moved; topology did not.
        cache.get_or_compute(key, stamp(3, 99, 7), Volatility::CapacityOnly, || {
            panic!("capacity-only entry must ignore funds/price epochs")
        });
        assert_eq!(cache.stats().hits, 1);
        // Topology moved: stale, attributed to the topology epoch.
        cache.get_or_compute(key, stamp(4, 99, 7), Volatility::CapacityOnly, Vec::new);
        assert_eq!(cache.stats().invalidations(), 1);
        assert_eq!(cache.stats().inv_topology, 1);
    }

    #[test]
    fn live_entries_stale_on_any_epoch() {
        let mut cache = PathCache::new();
        let key = CacheKey::plan(n(0), n(1));
        for (i, now) in [
            stamp(1, 1, 1), // miss
            stamp(1, 2, 1), // funds moved
            stamp(1, 2, 2), // prices moved
            stamp(2, 2, 2), // topology moved
        ]
        .into_iter()
        .enumerate()
        {
            cache.get_or_compute(key, now, Volatility::Live, || vec![path01()]);
            assert_eq!(cache.stats().misses, 1, "lookup {i}");
        }
        assert_eq!(cache.stats().invalidations(), 3);
        // One invalidation per cause, in the order the stamps moved.
        let s = cache.stats();
        assert_eq!((s.inv_funds, s.inv_price, s.inv_topology), (1, 1, 1));
        // Unchanged stamp: served from cache.
        cache.get_or_compute(key, stamp(2, 2, 2), Volatility::Live, || {
            panic!("identical stamp must hit")
        });
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn classes_partition_the_key_space() {
        let mut cache = PathCache::new();
        let now = stamp(1, 1, 1);
        let mice = CacheKey {
            source: n(0),
            dest: n(1),
            class: PlanClass::MicePool,
        };
        let elephant = CacheKey {
            source: n(0),
            dest: n(1),
            class: PlanClass::Elephant,
        };
        cache.get_or_compute(mice, now, Volatility::CapacityOnly, || vec![path01()]);
        let got = cache
            .get_or_compute(elephant, now, Volatility::CapacityOnly, Vec::new)
            .len();
        assert_eq!(got, 0, "elephant entry is distinct from the mice pool");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    /// A line 0-1-2 plus an unrelated channel 3-4; the scoped entry's
    /// footprint covers the line only.
    fn scoped_world() -> (Graph, NetworkFunds, pcn_types::ChannelId) {
        let mut g = Graph::new(5);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let unrelated = g.add_edge(n(3), n(4));
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        (g, funds, unrelated)
    }

    fn scoped_stamp(g: &Graph, funds: &NetworkFunds) -> EpochStamp {
        EpochStamp {
            topology: g.topology_epoch(),
            funds: funds.funds_epoch(),
            prices: 0,
        }
    }

    fn scoped_compute(g: &Graph, fp: &mut Footprint) -> Vec<Path> {
        g.shortest_path(n(0), n(2), |e| {
            fp.record(e.id);
            Some(1.0)
        })
        .map(|(_, p)| vec![p])
        .unwrap_or_default()
    }

    #[test]
    fn scoped_entries_survive_unrelated_funds_movement() {
        let (g, mut funds, unrelated) = scoped_world();
        let mut cache = PathCache::new();
        let key = CacheKey::plan(n(0), n(2));
        let now = scoped_stamp(&g, &funds);
        let first = cache.get_or_compute_scoped(key, now, &funds, |fp| scoped_compute(&g, fp));
        assert_eq!(first.len(), 1);
        // Funds move on a channel outside the footprint: global epoch
        // advances, the entry stays fresh via the per-channel check.
        funds.lock(unrelated, n(3), Amount::from_tokens(1)).unwrap();
        let now = scoped_stamp(&g, &funds);
        let second = cache.get_or_compute_scoped(key, now, &funds, |_| {
            panic!("unrelated movement must not invalidate")
        });
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats().hits, 1);
        // Funds move on a footprint channel: stale, recomputed.
        funds
            .lock(pcn_types::ChannelId::new(0), n(0), Amount::from_tokens(1))
            .unwrap();
        let now = scoped_stamp(&g, &funds);
        cache.get_or_compute_scoped(key, now, &funds, |fp| scoped_compute(&g, fp));
        assert_eq!(cache.stats().invalidations(), 1);
        assert_eq!(cache.stats().inv_footprint, 1);
    }

    #[test]
    fn scoped_global_fast_path_hits_without_per_channel_scan() {
        let (g, funds, _) = scoped_world();
        let mut cache = PathCache::new();
        let key = CacheKey::plan(n(0), n(2));
        let now = scoped_stamp(&g, &funds);
        cache.get_or_compute_scoped(key, now, &funds, |fp| scoped_compute(&g, fp));
        // Nothing moved anywhere: the global stamp matches.
        cache.get_or_compute_scoped(key, now, &funds, |_| panic!("must hit"));
        assert_eq!(cache.stats().hits, 1);
        // Topology moved: stale regardless of funds.
        let mut g2 = g;
        g2.add_node();
        let now = scoped_stamp(&g2, &funds);
        cache.get_or_compute_scoped(key, now, &funds, |fp| scoped_compute(&g2, fp));
        assert_eq!(cache.stats().invalidations(), 1);
        assert_eq!(cache.stats().inv_topology, 1);
    }

    #[test]
    fn capacity_bound_evicts_stale_first_then_oldest() {
        let mut cache = PathCache::with_capacity(2);
        let fresh_now = stamp(1, 1, 1);
        // Key A: live entry that will be stale at insert time of C.
        cache.get_or_compute(
            CacheKey::plan(n(0), n(1)),
            fresh_now,
            Volatility::Live,
            || vec![path01()],
        );
        // Key B: capacity-only entry, stays fresh across funds movement.
        cache.get_or_compute(
            CacheKey::plan(n(0), n(2)),
            fresh_now,
            Volatility::CapacityOnly,
            || vec![path01()],
        );
        // Funds moved; inserting key C must evict stale A, not fresh B.
        let later = stamp(1, 2, 1);
        cache.get_or_compute(
            CacheKey::plan(n(0), n(3)),
            later,
            Volatility::CapacityOnly,
            || vec![path01()],
        );
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // A is gone (re-inserting it is a miss, evicting the oldest —
        // now B — since everything resident is fresh).
        cache.get_or_compute(
            CacheKey::plan(n(0), n(1)),
            later,
            Volatility::CapacityOnly,
            Vec::new,
        );
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().evictions, 2);
        // B was the oldest fresh entry: looking it up misses again.
        cache.get_or_compute(
            CacheKey::plan(n(0), n(2)),
            later,
            Volatility::CapacityOnly,
            Vec::new,
        );
        assert_eq!(cache.stats().misses, 5);
        assert_eq!(cache.len(), 2);
    }

    /// Eviction triggered from a scoped insert must run the per-channel
    /// footprint check on candidates: an entry whose footprint channels
    /// are unmoved is *fresh* even though the global funds epoch
    /// advanced, and a genuinely stale entry must be evicted instead.
    #[test]
    fn eviction_spares_footprint_fresh_entries() {
        let (g, mut funds, unrelated) = scoped_world();
        let mut cache = PathCache::with_capacity(2);
        // A: scoped entry over the 0-1-2 line channels.
        let a = CacheKey::plan(n(0), n(2));
        let now = scoped_stamp(&g, &funds);
        cache.get_or_compute_scoped(a, now, &funds, |fp| scoped_compute(&g, fp));
        // B: unscoped live entry — stale after any movement anywhere.
        let b = CacheKey::plan(n(1), n(2));
        cache.get_or_compute(b, now, Volatility::Live, || vec![path01()]);
        // Unrelated churn: A stays footprint-fresh, B goes stale.
        funds.lock(unrelated, n(3), Amount::from_tokens(1)).unwrap();
        let now = scoped_stamp(&g, &funds);
        // Inserting C at capacity must evict stale B, not footprint-fresh
        // A (which sits first in insertion order).
        let c = CacheKey::plan(n(2), n(0));
        cache.get_or_compute_scoped(c, now, &funds, |fp| {
            g.shortest_path(n(2), n(0), |e| {
                fp.record(e.id);
                Some(1.0)
            })
            .map(|(_, p)| vec![p])
            .unwrap_or_default()
        });
        assert_eq!(cache.stats().evictions, 1);
        // A still hits; B is gone (re-lookup misses).
        cache.get_or_compute_scoped(a, now, &funds, |_| {
            panic!("footprint-fresh entry must survive eviction")
        });
        assert_eq!(cache.stats().hits, 1);
        cache.get_or_compute(b, now, Volatility::Live, Vec::new);
        assert_eq!(cache.stats().misses, 4, "B was evicted, not A");
    }

    /// The same guarantee for evictions triggered by *unscoped* inserts:
    /// `get_or_compute_with` carries `funds`, so a capacity-only insert
    /// (e.g. a hub access leg) must not evict a footprint-fresh scoped
    /// entry either.
    #[test]
    fn unscoped_inserts_with_funds_spare_scoped_entries() {
        let (g, mut funds, unrelated) = scoped_world();
        let mut cache = PathCache::with_capacity(2);
        let a = CacheKey::plan(n(0), n(2));
        let now = scoped_stamp(&g, &funds);
        cache.get_or_compute_scoped(a, now, &funds, |fp| scoped_compute(&g, fp));
        let b = CacheKey::plan(n(1), n(2));
        cache.get_or_compute(b, now, Volatility::Live, || vec![path01()]);
        funds.lock(unrelated, n(3), Amount::from_tokens(1)).unwrap();
        let now = scoped_stamp(&g, &funds);
        // Capacity-only insert with funds in hand: evicts stale B, not
        // footprint-fresh A.
        let c = CacheKey::plan(n(2), n(1));
        cache.get_or_compute_with(c, now, Volatility::CapacityOnly, Some(&funds), || {
            vec![path01()]
        });
        assert_eq!(cache.stats().evictions, 1);
        cache.get_or_compute_scoped(a, now, &funds, |_| {
            panic!("footprint-fresh entry must survive an unscoped insert's eviction")
        });
        assert_eq!(cache.stats().hits, 1);
        cache.get_or_compute(b, now, Volatility::Live, Vec::new);
        assert_eq!(cache.stats().misses, 4, "B was evicted, not A");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = PathCache::with_capacity(0);
    }

    /// Broad-footprint entries count `footprint pairs / divisor` units
    /// against the capacity, so a world where every live search consults
    /// many channels cannot hold more pairs than the documented bound —
    /// the cache evicts by weight, not by entry count.
    #[test]
    fn footprint_weight_counts_against_capacity() {
        // A long line: the search from one end to the other consults
        // every channel, so its footprint holds 2×divisor channels and
        // the entry weighs 2 units.
        let chain = 2 * FOOTPRINT_WEIGHT_DIVISOR;
        let mut g = Graph::new(chain + 1);
        for i in 0..chain {
            g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
        }
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        let span = |cache: &mut PathCache, key: CacheKey, src: usize, dst: usize| {
            let now = EpochStamp {
                topology: g.topology_epoch(),
                funds: funds.funds_epoch(),
                prices: 0,
            };
            cache.get_or_compute_scoped(key, now, &funds, |fp| {
                g.shortest_path(NodeId::from_index(src), NodeId::from_index(dst), |e| {
                    fp.record(e.id);
                    Some(1.0)
                })
                .map(|(_, p)| vec![p])
                .unwrap_or_default()
            });
        };
        let plan_key = CacheKey::plan(NodeId::from_index(0), NodeId::from_index(chain));
        let rev_key = CacheKey::plan(NodeId::from_index(chain), NodeId::from_index(0));
        let mid_key = CacheKey::hub_middle(NodeId::from_index(0), NodeId::from_index(chain));
        // Capacity 5 weight units: two full-line entries (2 units each)
        // fit; the third forces an eviction even though only two entries
        // are resident — entry-count bounding would have kept all three.
        let mut cache = PathCache::with_capacity(5);
        span(&mut cache, plan_key, 0, chain);
        assert_eq!(
            cache.weight(),
            2,
            "footprint of {} channels weighs 2",
            chain
        );
        span(&mut cache, rev_key, chain, 0);
        assert_eq!((cache.len(), cache.weight()), (2, 4));
        span(&mut cache, mid_key, 0, chain);
        assert_eq!(
            cache.stats().evictions,
            1,
            "2 + 2 + 2 units exceed capacity 5: the oldest entry must go"
        );
        assert_eq!((cache.len(), cache.weight()), (2, 4));
        assert!(cache.weight() <= cache.capacity());
        // The evicted key was the oldest (plan 0 → chain): re-querying
        // it misses.
        span(&mut cache, plan_key, 0, chain);
        assert_eq!(cache.stats().misses, 4);
        // Unscoped entries still weigh one unit each: the bound
        // degenerates to entry-count capacity for them.
        let mut unit = PathCache::with_capacity(2);
        let now = stamp(1, 1, 1);
        for i in 0..3u32 {
            unit.get_or_compute(
                CacheKey::plan(n(i), n(10 + i)),
                now,
                Volatility::CapacityOnly,
                || vec![path01()],
            );
        }
        assert_eq!((unit.len(), unit.weight()), (2, 2));
        assert_eq!(unit.stats().evictions, 1);
    }

    /// An in-place stale replacement that grows its footprint must shed
    /// *other* entries to restore the bound — never the entry just
    /// stored.
    #[test]
    fn stale_replacement_growth_evicts_others() {
        let chain = 2 * FOOTPRINT_WEIGHT_DIVISOR;
        let mut g = Graph::new(chain + 1);
        let first = g.add_edge(NodeId::new(0), NodeId::new(1));
        for i in 1..chain {
            g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
        }
        let mut funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        let mut cache = PathCache::with_capacity(3);
        let key = CacheKey::plan(NodeId::new(0), NodeId::new(1));
        let now = |g: &Graph, funds: &NetworkFunds| EpochStamp {
            topology: g.topology_epoch(),
            funds: funds.funds_epoch(),
            prices: 0,
        };
        // A narrow scoped entry (footprint: one channel, weight 1) …
        cache.get_or_compute_scoped(key, now(&g, &funds), &funds, |fp| {
            fp.record(first);
            vec![path01()]
        });
        // … plus two unscoped fresh entries fill the cache to weight 3.
        for i in 1..3u32 {
            cache.get_or_compute(
                CacheKey::plan(n(i), n(10 + i)),
                now(&g, &funds),
                Volatility::CapacityOnly,
                || vec![path01()],
            );
        }
        assert_eq!(cache.weight(), 3);
        // Invalidate the scoped entry and recompute it with the full
        // line footprint: weight jumps 1 → 2, total would be 4 > 3.
        funds
            .lock(first, NodeId::new(0), Amount::from_tokens(1))
            .unwrap();
        cache.get_or_compute_scoped(key, now(&g, &funds), &funds, |fp| {
            g.shortest_path(NodeId::new(0), NodeId::from_index(chain), |e| {
                fp.record(e.id);
                Some(1.0)
            })
            .map(|(_, p)| vec![p])
            .unwrap_or_default()
        });
        assert_eq!(cache.stats().invalidations(), 1);
        assert_eq!(cache.stats().evictions, 1, "one unscoped entry shed");
        assert!(cache.weight() <= cache.capacity());
        // The replaced key itself survived.
        cache.get_or_compute_scoped(key, now(&g, &funds), &funds, |_| {
            panic!("the grown entry must still be resident and fresh")
        });
    }
}
