//! Deterministic adversarial fault injection: the engine half of the
//! threat model.
//!
//! A [`FaultPlan`] is pure data describing *who misbehaves and how* —
//! griefer payments that acquire hop locks and stall, adversarial
//! circular-demand payments tuned against the deadlock-freedom claim,
//! channels that drop or delay TUs, rogue hubs that stall or misorder
//! forwarded traffic. The workload layer materializes a plan once per
//! scenario (from the dedicated `"adversary"` RNG fork); the engine
//! evaluates it at hop-event boundaries, so every injected fault rides
//! the existing abort/refund/timeout lifecycle — there is no separate
//! code path that could leak value.
//!
//! Per-event fault decisions are **pure hash functions** of
//! `(plan salt, payment id, hop index, retry count, channel id)`, never
//! the engine RNG: cached and uncached runs, both event-queue backends
//! and every shard replica therefore agree bit-for-bit on each
//! intervention, and an empty plan is byte-identical to an honest run
//! (it draws nothing and the engine short-circuits it entirely).

use pcn_types::{ChannelId, SimDuration, TxId};

/// SplitMix64 finalizer: the same deterministic mixer the seed-derivation
/// layer uses, applied here to (salt, id, hop, retry) tuples.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to the unit interval `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

// Domain-separation tags: each decision family hashes in its own tag so
// e.g. a channel being drop-faulty is independent of it being
// delay-faulty under the same salt.
const DOM_DROP_CHANNEL: u64 = 0xD0;
const DOM_DELAY_CHANNEL: u64 = 0xDE;
const DOM_DROP: u64 = 0x0D;
const DOM_JITTER: u64 = 0x1A;
const DOM_MISORDER: u64 = 0x31;
const DOM_WORKFLOW: u64 = 0x3F;

/// How a rogue hub mishandles the TUs it forwards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RogueBehavior {
    /// Every forward through the hub is held for several hop delays —
    /// a hub that is alive (channels stay open) but unresponsive.
    Stall,
    /// A deterministic half of the forwards are held two extra hop
    /// delays, so TUs overtake each other downstream of the hub.
    Misorder,
}

/// A materialized fault plan: the adversary's complete script for one
/// run, resolved to payment ids and probability knobs.
///
/// Built by the workload layer (`AdversarySpec::materialize`) and carried
/// alongside the payment trace like the world-event timeline; install it
/// with `Engine::with_faults` / `ShardedEngine::with_faults`. The
/// [`FaultPlan::default`] plan is empty and injects nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Salt for every per-event hash decision, drawn once from the
    /// `"adversary"` RNG fork at materialization (0 for empty plans,
    /// which never consult it).
    pub salt: u64,
    /// Payment ids sourced by griefer clients (sorted ascending): their
    /// TUs acquire hop locks normally and then stall for
    /// [`FaultPlan::griefer_hold`], pinning liquidity until the refund
    /// path reclaims it at the deadline.
    pub griefer_txs: Vec<TxId>,
    /// How long a griefed lock is held before the TU moves again
    /// (typically longer than the transaction timeout).
    pub griefer_hold: SimDuration,
    /// Payment ids of the adversarial circular-demand ring (sorted
    /// ascending). They route and settle like honest payments — the
    /// attack is their one-directional circulation — but are excluded
    /// from the honest-traffic counters.
    pub ring_txs: Vec<TxId>,
    /// Fraction of channels that drop-fault (per-channel hash decision).
    pub drop_channel_frac: f64,
    /// Per-forward drop probability on a drop-faulty channel.
    pub drop_prob: f64,
    /// Fraction of channels that delay-fault.
    pub delay_channel_frac: f64,
    /// Maximum extra forwarding delay on a delay-faulty channel; the
    /// actual jitter is a per-forward hash fraction of it.
    pub delay_jitter: SimDuration,
    /// Rogue hubs as `(rank, behavior)`: the rank indexes the scheme's
    /// hub set modulo its size (like `WorldEvent::HubOutage`), so one
    /// plan addresses hubs across every scheme's topology. Flat schemes
    /// have no hub set and ignore these.
    pub rogue_hubs: Vec<(usize, RogueBehavior)>,
}

impl FaultPlan {
    /// Whether this plan injects nothing. The engine never installs an
    /// empty plan, keeping honest runs byte-identical to pre-fault-layer
    /// behaviour.
    pub fn is_empty(&self) -> bool {
        self.griefer_txs.is_empty()
            && self.ring_txs.is_empty()
            && (self.drop_channel_frac <= 0.0 || self.drop_prob <= 0.0)
            && (self.delay_channel_frac <= 0.0 || self.delay_jitter.is_zero())
            && self.rogue_hubs.is_empty()
    }

    /// Whether `tx` is a griefer payment.
    pub fn is_griefer(&self, tx: TxId) -> bool {
        self.griefer_txs.binary_search(&tx).is_ok()
    }

    /// Whether `tx` belongs to the adversarial circular-demand ring.
    pub fn is_ring(&self, tx: TxId) -> bool {
        self.ring_txs.binary_search(&tx).is_ok()
    }

    /// Whether `tx` is adversary-originated traffic (griefer or ring) —
    /// the complement of the honest traffic the `honest_*` counters
    /// track.
    pub fn is_adversarial(&self, tx: TxId) -> bool {
        self.is_griefer(tx) || self.is_ring(tx)
    }

    /// Whether channel `ch` is drop-faulty (a pure per-channel hash, so
    /// the faulty set is fixed for the whole run).
    pub fn drop_channel(&self, ch: ChannelId) -> bool {
        self.drop_channel_frac > 0.0
            && unit(mix(self.salt ^ DOM_DROP_CHANNEL ^ (ch.raw() as u64))) < self.drop_channel_frac
    }

    /// Whether channel `ch` is delay-faulty.
    pub fn delay_channel(&self, ch: ChannelId) -> bool {
        self.delay_channel_frac > 0.0
            && unit(mix(self.salt ^ DOM_DELAY_CHANNEL ^ (ch.raw() as u64)))
                < self.delay_channel_frac
    }

    /// Whether this forward of `tx` over drop-faulty channel `ch` is
    /// dropped. Retries re-roll (a dropped TU's retry may survive).
    pub fn drops(&self, ch: ChannelId, tx: TxId, hop: usize, retries: u32) -> bool {
        self.drop_channel(ch)
            && unit(mix(self.salt
                ^ DOM_DROP
                ^ forward_key(tx, hop, retries, ch)))
                < self.drop_prob
    }

    /// Extra forwarding delay injected on delay-faulty channel `ch` for
    /// this forward (zero when the channel is clean).
    pub fn jitter(&self, ch: ChannelId, tx: TxId, hop: usize, retries: u32) -> SimDuration {
        if !self.delay_channel(ch) {
            return SimDuration::ZERO;
        }
        let f = unit(mix(self.salt
            ^ DOM_JITTER
            ^ forward_key(tx, hop, retries, ch)));
        SimDuration::from_micros((self.delay_jitter.as_micros() as f64 * f) as u64)
    }

    /// [`RogueBehavior::Misorder`] coin for one forward: a deterministic
    /// half of the forwards through a misordering hub are held back.
    pub fn misorders(&self, ch: ChannelId, tx: TxId, hop: usize, retries: u32) -> bool {
        mix(self.salt ^ DOM_MISORDER ^ forward_key(tx, hop, retries, ch)) & 1 == 1
    }
}

/// Packs one forward's identity — payment, hop, retry attempt, channel —
/// into a single hash input. Keyed by the *payment* id (dense, stable),
/// never the TU slot handle (slots recycle), so decisions survive every
/// cache/backend/shard configuration of the same run.
fn forward_key(tx: TxId, hop: usize, retries: u32, ch: ChannelId) -> u64 {
    mix(tx.raw())
        ^ (hop as u64).rotate_left(24)
        ^ (retries as u64).rotate_left(40)
        ^ (ch.raw() as u64).rotate_left(8)
}

/// The one fault mechanism shared by the discrete-event engine and the
/// crypto-layer `PaymentWorkflow` (splicer-core) — anything that can
/// decide whether a sealed TU is lost in transit.
///
/// A blanket impl keeps the historical `FnMut(usize) -> bool` drop
/// closures working unchanged; `&FaultPlan` implements it so a
/// scenario's plan drives the workflow directly (hash of the plan salt
/// and TU index against [`FaultPlan::drop_prob`] — the workflow has no
/// channel identity, so the channel-fraction gate does not apply).
pub trait TuDropFilter {
    /// Whether the TU at `tu_index` is dropped in transit.
    fn drops_tu(&mut self, tu_index: usize) -> bool;
}

impl<F: FnMut(usize) -> bool> TuDropFilter for F {
    fn drops_tu(&mut self, tu_index: usize) -> bool {
        self(tu_index)
    }
}

impl TuDropFilter for &FaultPlan {
    fn drops_tu(&mut self, tu_index: usize) -> bool {
        self.drop_prob > 0.0
            && unit(mix(self.salt ^ DOM_WORKFLOW ^ (tu_index as u64))) < self.drop_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_injects_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for i in 0..64u64 {
            let ch = ChannelId::new(i as u32);
            let tx = TxId::new(i);
            assert!(!plan.drop_channel(ch));
            assert!(!plan.delay_channel(ch));
            assert!(!plan.drops(ch, tx, 0, 0));
            assert!(plan.jitter(ch, tx, 0, 0).is_zero());
            assert!(!plan.is_adversarial(tx));
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_the_key() {
        let plan = FaultPlan {
            salt: 0xfeed,
            drop_channel_frac: 0.5,
            drop_prob: 0.5,
            delay_channel_frac: 0.5,
            delay_jitter: SimDuration::from_millis(20),
            ..FaultPlan::default()
        };
        for i in 0..128u64 {
            let ch = ChannelId::new((i % 16) as u32);
            let tx = TxId::new(i);
            assert_eq!(plan.drops(ch, tx, 1, 0), plan.drops(ch, tx, 1, 0));
            assert_eq!(plan.jitter(ch, tx, 1, 0), plan.jitter(ch, tx, 1, 0));
        }
        // Distinct retries re-roll: at p=0.5 over 128 keys, both outcomes
        // must occur.
        let ch = ChannelId::new(3);
        let differs = (0..128u64)
            .any(|i| plan.drops(ch, TxId::new(i), 1, 0) != plan.drops(ch, TxId::new(i), 1, 1));
        assert!(differs, "retry attempts must re-roll the drop coin");
    }

    #[test]
    fn channel_fractions_select_a_proportional_subset() {
        let plan = FaultPlan {
            salt: 7,
            drop_channel_frac: 0.3,
            drop_prob: 1.0,
            ..FaultPlan::default()
        };
        let faulty = (0..1000u32)
            .filter(|&c| plan.drop_channel(ChannelId::new(c)))
            .count();
        assert!(
            (200..400).contains(&faulty),
            "~30% of 1000 channels should be drop-faulty, got {faulty}"
        );
    }

    #[test]
    fn membership_uses_binary_search_over_sorted_ids() {
        let plan = FaultPlan {
            griefer_txs: vec![TxId::new(2), TxId::new(5), TxId::new(9)],
            ring_txs: vec![TxId::new(11)],
            ..FaultPlan::default()
        };
        assert!(plan.is_griefer(TxId::new(5)));
        assert!(!plan.is_griefer(TxId::new(4)));
        assert!(plan.is_ring(TxId::new(11)));
        assert!(plan.is_adversarial(TxId::new(2)));
        assert!(plan.is_adversarial(TxId::new(11)));
        assert!(!plan.is_adversarial(TxId::new(0)));
        assert!(!plan.is_empty());
    }

    #[test]
    fn drop_filter_blanket_and_plan_impls_agree_on_shape() {
        let mut closure = |idx: usize| idx == 2;
        assert!(!closure.drops_tu(1));
        assert!(closure.drops_tu(2));

        let plan = FaultPlan {
            salt: 3,
            drop_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut filter = &plan;
        assert!(filter.drops_tu(0), "p=1.0 drops every TU");
        let clean = FaultPlan::default();
        let mut filter = &clean;
        assert!(!filter.drops_tu(0), "the empty plan drops nothing");
    }
}
