//! Waiting-queue scheduling disciplines (Table II).
//!
//! When a channel direction lacks funds (or the rate limiter holds a TU
//! back), TUs wait in a per-direction queue. Which TU to serve when funds
//! free up is the *scheduling algorithm* ablated in Table II: LIFO wins in
//! the paper because it serves transactions farthest from their deadline
//! first, letting fresh TUs through instead of burning funds on nearly
//! expired ones.

use pcn_types::{Amount, SimTime, TuId};

/// Queue discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Discipline {
    /// First in, first out.
    Fifo,
    /// Last in, first out (the paper's best performer).
    #[default]
    Lifo,
    /// Smallest payment first.
    Spf,
    /// Earliest deadline first.
    Edf,
}

impl Discipline {
    /// All disciplines, for Table II sweeps.
    pub const ALL: [Discipline; 4] = [
        Discipline::Fifo,
        Discipline::Lifo,
        Discipline::Spf,
        Discipline::Edf,
    ];

    /// Human-readable name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            Discipline::Fifo => "FIFO",
            Discipline::Lifo => "LIFO",
            Discipline::Spf => "SPF",
            Discipline::Edf => "EDF",
        }
    }
}

/// An entry waiting in a channel queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueEntry {
    /// The queued TU.
    pub tu: TuId,
    /// Value it carries (for SPF and queue-size accounting).
    pub amount: Amount,
    /// Deadline of its transaction (for EDF).
    pub deadline: SimTime,
    /// When it was enqueued (for FIFO/LIFO and delay marking).
    pub enqueued_at: SimTime,
    /// Monotone arrival sequence breaking all ties deterministically.
    pub seq: u64,
}

/// A per-direction waiting queue with a pluggable discipline and a token
/// capacity bound (paper: 8000 tokens per queue).
#[derive(Clone, Debug)]
pub struct WaitQueue {
    entries: Vec<QueueEntry>,
    discipline: Discipline,
    capacity: Amount,
    queued_value: Amount,
    next_seq: u64,
    /// Smallest queued amount (exact; `ZERO` when empty). Lets
    /// [`WaitQueue::pop_eligible`] answer "nothing fits" in O(1), the
    /// common case when a drained direction frees less than one TU: the
    /// hot hop-lock path would otherwise pay a full scan per settle on
    /// a saturated queue. Maintained O(1) on push; a removal recomputes
    /// it only when the departing entry *was* the minimum.
    min_amount: Amount,
}

impl WaitQueue {
    /// Creates an empty queue.
    pub fn new(discipline: Discipline, capacity: Amount) -> WaitQueue {
        WaitQueue {
            entries: Vec::new(),
            discipline,
            capacity,
            queued_value: Amount::ZERO,
            next_seq: 0,
            min_amount: Amount::ZERO,
        }
    }

    /// Number of queued TUs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total queued value (`q_amount` in Algorithm 2).
    pub fn queued_value(&self) -> Amount {
        self.queued_value
    }

    /// Pre-sizes the entry storage (steady-state allocation-freedom).
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Tries to enqueue; returns `false` (rejecting the TU) when the
    /// capacity bound would be exceeded.
    pub fn push(&mut self, tu: TuId, amount: Amount, deadline: SimTime, now: SimTime) -> bool {
        if self.queued_value + amount > self.capacity {
            return false;
        }
        if self.entries.is_empty() || amount < self.min_amount {
            self.min_amount = amount;
        }
        self.entries.push(QueueEntry {
            tu,
            amount,
            deadline,
            enqueued_at: now,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        self.queued_value += amount;
        true
    }

    /// Selects (and removes) the next TU to serve under the discipline,
    /// restricted to entries whose `amount ≤ available`. Returns `None`
    /// when nothing fits.
    ///
    /// Entries are stored in arrival (`seq`) order, so FIFO takes the
    /// first eligible entry from the front and LIFO the first from the
    /// back — early-exit scans. SPF/EDF genuinely need the full
    /// minimum. Selection is identical to a full
    /// `min_by(discipline key, then seq)` scan in every discipline.
    pub fn pop_eligible(&mut self, available: Amount) -> Option<QueueEntry> {
        if self.entries.is_empty() || available < self.min_amount {
            return None;
        }
        let idx = match self.discipline {
            Discipline::Fifo => self.entries.iter().position(|e| e.amount <= available)?,
            Discipline::Lifo => self.entries.iter().rposition(|e| e.amount <= available)?,
            Discipline::Spf => self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.amount <= available)
                .min_by(|(_, a), (_, b)| a.amount.cmp(&b.amount).then(a.seq.cmp(&b.seq)))
                .map(|(i, _)| i)?,
            Discipline::Edf => self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.amount <= available)
                .min_by(|(_, a), (_, b)| a.deadline.cmp(&b.deadline).then(a.seq.cmp(&b.seq)))
                .map(|(i, _)| i)?,
        };
        let entry = self.entries.remove(idx);
        self.queued_value -= entry.amount;
        self.note_removed(entry.amount);
        Some(entry)
    }

    /// Restores the exact `min_amount` after removing an entry of
    /// `amount`: only a departure of the current minimum can raise it,
    /// so the O(n) rescan runs just in that case.
    fn note_removed(&mut self, amount: Amount) {
        if self.entries.is_empty() {
            self.min_amount = Amount::ZERO;
        } else if amount <= self.min_amount {
            self.min_amount = self
                .entries
                .iter()
                .map(|e| e.amount)
                .min()
                .expect("non-empty");
        }
    }

    /// Removes a specific TU (timeout/abort path). Returns the entry if it
    /// was queued.
    pub fn remove(&mut self, tu: TuId) -> Option<QueueEntry> {
        let idx = self.entries.iter().position(|e| e.tu == tu)?;
        let entry = self.entries.remove(idx);
        self.queued_value -= entry.amount;
        self.note_removed(entry.amount);
        Some(entry)
    }

    /// Removes every entry whose deadline is at or before `now` (expired).
    pub fn drain_expired(&mut self, now: SimTime) -> Vec<QueueEntry> {
        let mut expired = Vec::new();
        self.drain_expired_into(now, &mut expired);
        expired
    }

    /// [`WaitQueue::drain_expired`] into a caller-owned buffer (appended;
    /// not cleared), so the engine's periodic tick reuses one buffer
    /// across all queues and allocates nothing when queues are quiet.
    /// Expired entries append in queue-position order; retained entries
    /// keep their relative order.
    pub fn drain_expired_into(&mut self, now: SimTime, out: &mut Vec<QueueEntry>) {
        let mut kept = 0;
        let mut survivor_min = Amount::ZERO;
        for i in 0..self.entries.len() {
            let e = self.entries[i];
            if e.deadline <= now {
                self.queued_value -= e.amount;
                out.push(e);
            } else {
                if kept == 0 || e.amount < survivor_min {
                    survivor_min = e.amount;
                }
                self.entries[kept] = e;
                kept += 1;
            }
        }
        self.entries.truncate(kept);
        // The walk visited every survivor anyway: the min is free.
        self.min_amount = survivor_min;
    }

    /// Entries whose queueing delay exceeds `threshold` at time `now`
    /// (candidates for congestion marking).
    pub fn over_delay(&self, now: SimTime, threshold: pcn_types::SimDuration) -> Vec<TuId> {
        let mut out = Vec::new();
        self.over_delay_into(now, threshold, &mut out);
        out
    }

    /// [`WaitQueue::over_delay`] into a caller-owned buffer (appended;
    /// not cleared) — the allocation-free variant for the periodic tick.
    pub fn over_delay_into(
        &self,
        now: SimTime,
        threshold: pcn_types::SimDuration,
        out: &mut Vec<TuId>,
    ) {
        out.extend(
            self.entries
                .iter()
                .filter(|e| now.saturating_since(e.enqueued_at) > threshold)
                .map(|e| e.tu),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn tok(v: u64) -> Amount {
        Amount::from_tokens(v)
    }

    fn queue_with(discipline: Discipline) -> WaitQueue {
        let mut q = WaitQueue::new(discipline, tok(100));
        // (tu, amount, deadline, enqueue time)
        q.push(TuId::new(1), tok(5), t(300), t(10));
        q.push(TuId::new(2), tok(2), t(100), t(20));
        q.push(TuId::new(3), tok(8), t(200), t(30));
        q
    }

    #[test]
    fn fifo_order() {
        let mut q = queue_with(Discipline::Fifo);
        assert_eq!(q.pop_eligible(tok(10)).unwrap().tu, TuId::new(1));
        assert_eq!(q.pop_eligible(tok(10)).unwrap().tu, TuId::new(2));
        assert_eq!(q.pop_eligible(tok(10)).unwrap().tu, TuId::new(3));
        assert!(q.pop_eligible(tok(10)).is_none());
    }

    #[test]
    fn lifo_order() {
        let mut q = queue_with(Discipline::Lifo);
        assert_eq!(q.pop_eligible(tok(10)).unwrap().tu, TuId::new(3));
        assert_eq!(q.pop_eligible(tok(10)).unwrap().tu, TuId::new(2));
    }

    #[test]
    fn spf_order() {
        let mut q = queue_with(Discipline::Spf);
        assert_eq!(q.pop_eligible(tok(10)).unwrap().tu, TuId::new(2)); // 2 tokens
        assert_eq!(q.pop_eligible(tok(10)).unwrap().tu, TuId::new(1)); // 5 tokens
    }

    #[test]
    fn edf_order() {
        let mut q = queue_with(Discipline::Edf);
        assert_eq!(q.pop_eligible(tok(10)).unwrap().tu, TuId::new(2)); // deadline 100
        assert_eq!(q.pop_eligible(tok(10)).unwrap().tu, TuId::new(3)); // deadline 200
    }

    #[test]
    fn eligibility_filters_by_available_funds() {
        let mut q = queue_with(Discipline::Fifo);
        // Only the 2-token TU fits under 3 tokens available.
        assert_eq!(q.pop_eligible(tok(3)).unwrap().tu, TuId::new(2));
        assert_eq!(q.len(), 2);
        assert!(q.pop_eligible(tok(1)).is_none());
    }

    #[test]
    fn capacity_bound_rejects() {
        let mut q = WaitQueue::new(Discipline::Fifo, tok(10));
        assert!(q.push(TuId::new(1), tok(6), t(100), t(0)));
        assert!(!q.push(TuId::new(2), tok(5), t(100), t(0)));
        assert!(q.push(TuId::new(3), tok(4), t(100), t(0)));
        assert_eq!(q.queued_value(), tok(10));
    }

    #[test]
    fn remove_and_expired() {
        let mut q = queue_with(Discipline::Fifo);
        assert_eq!(q.remove(TuId::new(2)).unwrap().amount, tok(2));
        assert_eq!(q.remove(TuId::new(2)), None);
        let expired = q.drain_expired(t(250));
        assert_eq!(expired.len(), 1); // deadline 200 entry
        assert_eq!(expired[0].tu, TuId::new(3));
        assert_eq!(q.len(), 1);
        assert_eq!(q.queued_value(), tok(5));
    }

    #[test]
    fn over_delay_marks_old_entries() {
        let q = queue_with(Discipline::Fifo);
        let over = q.over_delay(t(500), SimDuration::from_micros(400));
        // enqueued at 10, 20, 30: delays 490, 480, 470 → only > 400: all.
        assert_eq!(over.len(), 3);
        // Delays at t=445: 435/425/415 for enqueue times 10/20/30.
        let over = q.over_delay(t(445), SimDuration::from_micros(430));
        assert_eq!(over, vec![TuId::new(1)]);
    }
}
