//! Deterministic node→shard partitioning for sharded runs.
//!
//! A [`Partition`] assigns every node to one of `K` shards; a payment's
//! route computation is *owned* by the shard of its compute node (the
//! source for source-routing schemes, the responsible hub otherwise —
//! [`crate::engine::Engine`]'s `compute_node`). The partition is a pure
//! function of the routing scheme and the node count, so every shard
//! derives the identical assignment independently — no coordination, no
//! shared state.
//!
//! # The hub-cut invariant
//!
//! The paper's trampoline architecture forces cross-region traffic
//! through hubs, which makes hubs the natural cut line: for
//! [`RouteVia::Hubs`] every hub goes to shard `rank % K` (rank in the
//! sorted hub set, the same ordering the world stage uses for outage
//! resolution) and **every client lands in its assigned hub's shard**.
//! A payment's entire route computation therefore happens where its
//! hub lives, and the per-hub route-computation FIFO (`node_busy`)
//! never splits across shards. [`RouteVia::SingleHub`] degenerates to
//! one owning shard (the single hub serializes all computation by
//! definition — the A2L baseline has no parallelism to extract).
//!
//! Flat schemes (`Direct`, `Landmarks`, `FlashMaxFlow`) have no hub
//! regions; they get a deterministic SplitMix64 hash of the node index,
//! which spreads independent sources uniformly across shards.

use std::collections::BTreeMap;

use pcn_types::NodeId;

use crate::scheme::RouteVia;

/// The SplitMix64 finalizer — a full-avalanche bijection on `u64`, the
/// same mixer the harness uses for seed derivation. Good enough to
/// spread dense node indices uniformly over shards.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic assignment of every node to one of `K` shards.
///
/// Cheap to clone (one dense `u32` per node) — every shard replica
/// carries its own copy.
#[derive(Clone, Debug)]
pub struct Partition {
    k: u32,
    shard_of: Vec<u32>,
}

impl Partition {
    /// Builds the partition for a routing scheme over `node_count`
    /// nodes. `k` is clamped to at least 1.
    ///
    /// Hub schemes partition by hub region (see the module docs); flat
    /// schemes hash the node index. Nodes outside any hub region (a
    /// `Hubs` scheme with unassigned nodes) fall back to the hash —
    /// `compute_node` falls back to the source for them, so ownership
    /// stays well defined.
    pub fn new(route_via: &RouteVia, node_count: usize, k: u32) -> Partition {
        let k = k.max(1);
        let mut shard_of: Vec<u32> = (0..node_count)
            .map(|i| (splitmix64(i as u64) % u64::from(k)) as u32)
            .collect();
        match route_via {
            RouteVia::Hubs { assignment } => {
                // Sorted hub set → rank % K: the same deterministic
                // ordering the outage stage resolves hub ranks with.
                let hubs = route_via.hub_set();
                let hub_shard: BTreeMap<NodeId, u32> = hubs
                    .iter()
                    .enumerate()
                    .map(|(rank, &h)| (h, (rank as u32) % k))
                    .collect();
                for (&hub, &s) in &hub_shard {
                    shard_of[hub.index()] = s;
                }
                for (&client, &hub) in assignment {
                    shard_of[client.index()] = hub_shard[&hub];
                }
            }
            RouteVia::SingleHub { hub } => {
                // One hub owns every computation; pin it to shard 0 so
                // the (degenerate) ownership is obvious in traces.
                shard_of[hub.index()] = 0;
            }
            RouteVia::Direct | RouteVia::Landmarks { .. } | RouteVia::FlashMaxFlow { .. } => {}
        }
        Partition { k, shard_of }
    }

    /// Number of shards.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The shard owning node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside the node range the partition was built
    /// over.
    pub fn shard_of(&self, n: NodeId) -> u32 {
        self.shard_of[n.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn hub_scheme_places_clients_with_their_hub() {
        // Hubs 0 and 1; clients 2,3 → hub 0, clients 4,5 → hub 1.
        let assignment: BTreeMap<NodeId, NodeId> =
            [(n(2), n(0)), (n(3), n(0)), (n(4), n(1)), (n(5), n(1))]
                .into_iter()
                .collect();
        let p = Partition::new(&RouteVia::Hubs { assignment }, 6, 2);
        assert_eq!(p.shard_of(n(0)), 0, "hub rank 0 → shard 0");
        assert_eq!(p.shard_of(n(1)), 1, "hub rank 1 → shard 1");
        assert_eq!(p.shard_of(n(2)), p.shard_of(n(0)));
        assert_eq!(p.shard_of(n(3)), p.shard_of(n(0)));
        assert_eq!(p.shard_of(n(4)), p.shard_of(n(1)));
        assert_eq!(p.shard_of(n(5)), p.shard_of(n(1)));
    }

    #[test]
    fn hub_regions_never_split_across_shards() {
        // 4 hubs over 2 shards: ranks wrap, but every client still
        // shares its hub's shard.
        let assignment: BTreeMap<NodeId, NodeId> = (4u32..40).map(|c| (n(c), n(c % 4))).collect();
        let p = Partition::new(
            &RouteVia::Hubs {
                assignment: assignment.clone(),
            },
            40,
            2,
        );
        for (&client, &hub) in &assignment {
            assert_eq!(p.shard_of(client), p.shard_of(hub));
        }
    }

    #[test]
    fn flat_partition_is_deterministic_and_in_range() {
        let a = Partition::new(&RouteVia::Direct, 1000, 4);
        let b = Partition::new(&RouteVia::Direct, 1000, 4);
        let mut per_shard = [0usize; 4];
        for i in 0..1000u32 {
            let s = a.shard_of(n(i));
            assert_eq!(s, b.shard_of(n(i)), "partition must be reproducible");
            assert!(s < 4);
            per_shard[s as usize] += 1;
        }
        // SplitMix64 over dense indices should spread roughly evenly.
        for (s, &count) in per_shard.iter().enumerate() {
            assert!(
                (150..=350).contains(&count),
                "shard {s} got {count} of 1000 nodes — hash badly skewed"
            );
        }
    }

    #[test]
    fn k_one_maps_everything_to_shard_zero() {
        let p = Partition::new(&RouteVia::Direct, 16, 1);
        assert_eq!(p.k(), 1);
        for i in 0..16u32 {
            assert_eq!(p.shard_of(n(i)), 0);
        }
    }

    #[test]
    fn single_hub_owns_shard_zero() {
        let p = Partition::new(&RouteVia::SingleHub { hub: n(7) }, 16, 4);
        assert_eq!(p.shard_of(n(7)), 0);
    }
}
