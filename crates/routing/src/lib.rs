//! Deadlock-free rate-based PCN routing — the paper's second contribution —
//! plus faithful reimplementations of the comparison schemes and the
//! discrete-event engine they all run on.
//!
//! # Layering
//!
//! * [`channel`] — the HTLC-style channel state machine. Funds move
//!   `spendable → locked → other side` (settle) or back (refund); the
//!   conservation invariant is enforced on every operation.
//! * [`prices`] — the capacity price λ (eq. 21), imbalance price µ
//!   (eq. 22), routing price ξ (eq. 23), forwarding fee (eq. 24) and path
//!   price ϱ (eq. 25).
//! * [`rate`] / [`window`] — per-path sending rates (eq. 26) and
//!   congestion windows (eqs. 27–28).
//! * [`scheduler`] — the waiting-queue disciplines of Table II (FIFO,
//!   LIFO, SPF, EDF).
//! * [`paths`] — path selection strategies of Table II (KSP, Heuristic,
//!   EDW, EDS), each with a `select_paths_in` hot-path variant running on
//!   a reusable [`pcn_graph::SearchWorkspace`].
//! * [`cache`] — the epoch-versioned, footprint-scoped [`PathCache`]:
//!   plan results keyed by `(source, dest, scheme-view class)`, shared
//!   as `Arc<[Path]>`, and invalidated by topology mutations and the
//!   funds movements of exactly the channels the computation read (its
//!   recorded footprint), so a cache hit is bit-identical to
//!   recomputation (the epoch-invalidation contract).
//! * [`scheme`] — declarative scheme descriptions: **Splicer**, **Spider**
//!   \[9\], **Flash** \[10\], **Landmark** \[6,29,30\] and **A2L** \[4\].
//! * [`engine`] — the event loop binding everything, decomposed by
//!   lifecycle stage: `engine::arrivals` (payment admission,
//!   route-computation service queues, per-scheme path planning),
//!   `engine::lifecycle` (TU injection, hop traversal, settlement,
//!   abort/refund/retry), and `engine::control` (price ticks, queue
//!   expiry and marking, rate updates, hub synchronization), dispatched
//!   from `engine::mod`.
//! * [`shard`] + `engine::shard` — K partitioned event loops: a
//!   deterministic hub-cut [`Partition`] assigns route-computation
//!   ownership, and [`ShardedEngine`] runs K replicas whose merged
//!   result is bit-identical to a single-engine run.
//! * [`fault`] — the adversarial layer (threat model below): a pure-data
//!   [`FaultPlan`] the engine evaluates at hop-event boundaries.
//!
//! # Threat model & fault injection
//!
//! The paper's headline claim is *deadlock-free* routing, so the engine
//! must survive workloads engineered to break it. The [`fault`] module
//! models four adversaries, all expressed as one [`FaultPlan`] installed
//! via [`Engine::with_faults`](engine::Engine::with_faults):
//!
//! * **Griefers** — clients whose TUs acquire hop locks normally and
//!   then stall for `griefer_hold` (typically past the transaction
//!   timeout), pinning liquidity until the ordinary deadline → abort →
//!   refund path reclaims it. Counted in `RunStats::griefed_locks`.
//! * **Circular demand** — a ring of adversarial payments circulating
//!   value one direction, tuned to drain a channel cycle (the Fig. 1
//!   deadlock mechanism, scaled up). Ring payments route like honest
//!   ones; the attack is the demand pattern itself.
//! * **Channel faults** — a hash-selected fraction of channels drops or
//!   delays forwarded TUs (`drop(frac, prob)` / `delay(frac, jitter)`).
//! * **Rogue hubs** — a hub that stalls or misorders everything it
//!   forwards ([`RogueBehavior`]).
//!
//! Three guarantees hold under every plan:
//!
//! 1. **No value leak**: every fault resolves through the existing
//!    abort/refund/timeout lifecycle; `NetworkFunds` conservation is
//!    re-verified at end of run (`RunStats::conservation_violations`).
//! 2. **Determinism**: fault decisions are pure hashes of
//!    `(plan salt, payment id, hop, retry, channel)` — never the engine
//!    RNG — so cached ≡ uncached, calendar ≡ heap and sharded ≡ plain
//!    stay bit-identical under attack, and an empty plan is
//!    byte-identical to an honest run.
//! 3. **Detection, not prevention**: a stalled-run watchdog plus a
//!    drained-direction cycle check over the CSR graph fires
//!    `RunStats::deadlocks_detected` when no lock or settle happened for
//!    a whole price tick while a fully-drained channel cycle exists —
//!    the deadlock symptom the honest-traffic counters
//!    (`honest_generated` / `honest_completed`, `RunStats::honest_tsr`)
//!    then quantify. Victims can opt into retry pacing via
//!    [`EngineConfig::retry_backoff`](engine::EngineConfig::retry_backoff).
//!
//! # Example: Fig. 1's local deadlock, then Splicer avoiding it
//!
//! ```
//! use pcn_routing::channel::NetworkFunds;
//! use pcn_types::{Amount, NodeId};
//!
//! // The triangle of Fig. 1 with 10 tokens per direction.
//! let mut g = pcn_graph::Graph::new(3);
//! let ac = g.add_edge(NodeId::new(0), NodeId::new(2));
//! let cb = g.add_edge(NodeId::new(2), NodeId::new(1));
//! let mut funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
//!
//! // Drain C→B by relentless one-way payments (A→C→B faster than refill):
//! for _ in 0..10 {
//!     funds.lock(cb, NodeId::new(2), Amount::from_tokens(1)).unwrap();
//!     funds.settle(cb, NodeId::new(2), Amount::from_tokens(1)).unwrap();
//! }
//! // C's side of (C,B) is now empty: the relay is deadlocked.
//! assert!(funds.balance(cb, NodeId::new(2)).is_zero());
//! assert!(funds.is_drained(cb, NodeId::new(2)));
//! # let _ = ac;
//! ```

// Production builds carry no unsafe at all; the test build allows one
// exception — the counting `GlobalAlloc` behind the hot-loop
// allocation-freedom regression (`engine::tests`), which must be
// `unsafe impl` by its nature.
#![cfg_attr(not(test), forbid(unsafe_code))]
#![cfg_attr(test, deny(unsafe_code))]
#![warn(missing_docs)]

pub mod cache;
pub mod channel;
pub mod engine;
pub mod fault;
pub mod paths;
pub mod prices;
pub mod rate;
pub mod scheduler;
pub mod scheme;
pub mod shard;
pub mod stats;
pub mod tu;
pub mod window;
pub mod world;

pub use cache::{PathCache, PathCacheStats};
pub use engine::{Engine, EngineConfig, ShardedEngine};
pub use fault::{FaultPlan, RogueBehavior, TuDropFilter};
pub use scheme::{ComputeModel, RouteVia, SchemeConfig};
pub use shard::Partition;
pub use stats::RunStats;
pub use world::{RebalancePolicy, WorldEvent};
