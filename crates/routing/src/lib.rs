//! Deadlock-free rate-based PCN routing — the paper's second contribution —
//! plus faithful reimplementations of the comparison schemes and the
//! discrete-event engine they all run on.
//!
//! # Layering
//!
//! * [`channel`] — the HTLC-style channel state machine. Funds move
//!   `spendable → locked → other side` (settle) or back (refund); the
//!   conservation invariant is enforced on every operation.
//! * [`prices`] — the capacity price λ (eq. 21), imbalance price µ
//!   (eq. 22), routing price ξ (eq. 23), forwarding fee (eq. 24) and path
//!   price ϱ (eq. 25).
//! * [`rate`] / [`window`] — per-path sending rates (eq. 26) and
//!   congestion windows (eqs. 27–28).
//! * [`scheduler`] — the waiting-queue disciplines of Table II (FIFO,
//!   LIFO, SPF, EDF).
//! * [`paths`] — path selection strategies of Table II (KSP, Heuristic,
//!   EDW, EDS), each with a `select_paths_in` hot-path variant running on
//!   a reusable [`pcn_graph::SearchWorkspace`].
//! * [`cache`] — the epoch-versioned, footprint-scoped [`PathCache`]:
//!   plan results keyed by `(source, dest, scheme-view class)`, shared
//!   as `Arc<[Path]>`, and invalidated by topology mutations and the
//!   funds movements of exactly the channels the computation read (its
//!   recorded footprint), so a cache hit is bit-identical to
//!   recomputation (the epoch-invalidation contract).
//! * [`scheme`] — declarative scheme descriptions: **Splicer**, **Spider**
//!   \[9\], **Flash** \[10\], **Landmark** \[6,29,30\] and **A2L** \[4\].
//! * [`engine`] — the event loop binding everything, decomposed by
//!   lifecycle stage: `engine::arrivals` (payment admission,
//!   route-computation service queues, per-scheme path planning),
//!   `engine::lifecycle` (TU injection, hop traversal, settlement,
//!   abort/refund/retry), and `engine::control` (price ticks, queue
//!   expiry and marking, rate updates, hub synchronization), dispatched
//!   from `engine::mod`.
//! * [`shard`] + `engine::shard` — K partitioned event loops: a
//!   deterministic hub-cut [`Partition`] assigns route-computation
//!   ownership, and [`ShardedEngine`] runs K replicas whose merged
//!   result is bit-identical to a single-engine run.
//!
//! # Example: Fig. 1's local deadlock, then Splicer avoiding it
//!
//! ```
//! use pcn_routing::channel::NetworkFunds;
//! use pcn_types::{Amount, NodeId};
//!
//! // The triangle of Fig. 1 with 10 tokens per direction.
//! let mut g = pcn_graph::Graph::new(3);
//! let ac = g.add_edge(NodeId::new(0), NodeId::new(2));
//! let cb = g.add_edge(NodeId::new(2), NodeId::new(1));
//! let mut funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
//!
//! // Drain C→B by relentless one-way payments (A→C→B faster than refill):
//! for _ in 0..10 {
//!     funds.lock(cb, NodeId::new(2), Amount::from_tokens(1)).unwrap();
//!     funds.settle(cb, NodeId::new(2), Amount::from_tokens(1)).unwrap();
//! }
//! // C's side of (C,B) is now empty: the relay is deadlocked.
//! assert!(funds.balance(cb, NodeId::new(2)).is_zero());
//! assert!(funds.is_drained(cb, NodeId::new(2)));
//! # let _ = ac;
//! ```

// Production builds carry no unsafe at all; the test build allows one
// exception — the counting `GlobalAlloc` behind the hot-loop
// allocation-freedom regression (`engine::tests`), which must be
// `unsafe impl` by its nature.
#![cfg_attr(not(test), forbid(unsafe_code))]
#![cfg_attr(test, deny(unsafe_code))]
#![warn(missing_docs)]

pub mod cache;
pub mod channel;
pub mod engine;
pub mod paths;
pub mod prices;
pub mod rate;
pub mod scheduler;
pub mod scheme;
pub mod shard;
pub mod stats;
pub mod tu;
pub mod window;
pub mod world;

pub use cache::{PathCache, PathCacheStats};
pub use engine::{Engine, EngineConfig, ShardedEngine};
pub use scheme::{ComputeModel, RouteVia, SchemeConfig};
pub use shard::Partition;
pub use stats::RunStats;
pub use world::{RebalancePolicy, WorldEvent};
