//! Routing prices: the distributed rate-control signals of §IV-D.
//!
//! Every channel carries a capacity price λ (eq. 21, one per channel) and
//! an imbalance price µ per direction (eq. 22). Probes sum the per-channel
//! routing price ξ (eq. 23) along a path into the path price ϱ (eq. 25);
//! the forwarding fee (eq. 24) is a fixed fraction of ξ.

use std::sync::Arc;

use pcn_graph::Path;
use pcn_types::{ChannelId, NodeId};

/// Price state of a single channel `(a, b)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChannelPrices {
    /// Capacity price λ_ab (shared by both directions).
    pub lambda: f64,
    /// Imbalance price µ in the a→b direction.
    pub mu_ab: f64,
    /// Imbalance price µ in the b→a direction.
    pub mu_ba: f64,
}

impl ChannelPrices {
    /// Eq. 21: `λ ← λ + κ(n_a + n_b − c_ab)`, floored at zero.
    ///
    /// `n_a`/`n_b` are the funds required to sustain the current rates on
    /// the two directions (in tokens) and `c_ab` is the channel's total
    /// funds.
    pub fn update_lambda(&mut self, kappa: f64, n_a: f64, n_b: f64, c_ab: f64) {
        self.lambda = (self.lambda + kappa * (n_a + n_b - c_ab)).max(0.0);
    }

    /// Eq. 22: `µ_ab ← µ_ab + η(m_a − m_b)` and symmetrically for µ_ba,
    /// floored at zero. `m_a`/`m_b` are the values (tokens) that arrived
    /// in each direction over the last update interval.
    pub fn update_mu(&mut self, eta: f64, m_a: f64, m_b: f64) {
        self.mu_ab = (self.mu_ab + eta * (m_a - m_b)).max(0.0);
        self.mu_ba = (self.mu_ba + eta * (m_b - m_a)).max(0.0);
    }

    /// Eq. 23: routing price in the given direction,
    /// `ξ = 2λ + µ_fwd − µ_rev` (floored at zero — a negative price would
    /// subsidize congestion).
    pub fn xi(&self, a_to_b: bool) -> f64 {
        let raw = if a_to_b {
            2.0 * self.lambda + self.mu_ab - self.mu_ba
        } else {
            2.0 * self.lambda + self.mu_ba - self.mu_ab
        };
        raw.max(0.0)
    }

    /// Eq. 24: forwarding fee `fee = T_fee · ξ`.
    pub fn fee(&self, t_fee: f64, a_to_b: bool) -> f64 {
        t_fee * self.xi(a_to_b)
    }
}

/// Price table for the whole network plus the per-interval arrival
/// accumulators `m_a`/`m_b`.
#[derive(Clone, Debug, Default)]
pub struct PriceTable {
    prices: Vec<ChannelPrices>,
    /// Value arrived per direction since the last tick (tokens): `[i].0`
    /// is the a→b direction of channel i.
    arrived: Vec<(f64, f64)>,
    /// Channel endpoint table (a, b) shared with the owner (the engine
    /// passes its own table by `Arc`, so construction clones nothing).
    endpoints: Arc<[(NodeId, NodeId)]>,
    /// Monotone tick counter; see [`PriceTable::price_epoch`].
    epoch: u64,
}

impl PriceTable {
    /// Creates a zeroed table for `endpoints[i] = (a, b)` per channel.
    /// Accepts a `Vec` (owned) or a shared `Arc` slice.
    pub fn new(endpoints: impl Into<Arc<[(NodeId, NodeId)]>>) -> PriceTable {
        let endpoints = endpoints.into();
        PriceTable {
            prices: vec![ChannelPrices::default(); endpoints.len()],
            arrived: vec![(0.0, 0.0); endpoints.len()],
            endpoints,
            epoch: 0,
        }
    }

    /// The price epoch: bumped once per [`PriceTable::tick`] (every τ).
    /// Consumed by the routing layer's `PathCache` to invalidate entries
    /// whose computation could observe prices.
    pub fn price_epoch(&self) -> u64 {
        self.epoch
    }

    /// Adopts a grown endpoint table (a dynamic world opened channels
    /// mid-run): new channels start with zeroed prices and accumulators,
    /// existing channels keep their state. The caller passes the same
    /// `Arc` it shares with the engine, so the tables stay one
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the new table is shorter than the current one or
    /// disagrees on an existing channel's endpoints (channel ids are
    /// dense and never re-ordered).
    pub fn set_endpoints(&mut self, endpoints: Arc<[(NodeId, NodeId)]>) {
        assert!(
            endpoints.len() >= self.endpoints.len(),
            "endpoint tables only grow"
        );
        assert!(
            endpoints
                .iter()
                .zip(self.endpoints.iter())
                .all(|(new, old)| new == old),
            "existing channel endpoints must be unchanged"
        );
        self.prices
            .resize(endpoints.len(), ChannelPrices::default());
        self.arrived.resize(endpoints.len(), (0.0, 0.0));
        self.endpoints = endpoints;
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// Records that `tokens` arrived on channel `ch` in direction
    /// `from → other` (feeds eq. 22 at the next tick).
    pub fn record_arrival(&mut self, ch: ChannelId, from: NodeId, tokens: f64) {
        let i = ch.index();
        if i >= self.prices.len() {
            return;
        }
        if self.endpoints[i].0 == from {
            self.arrived[i].0 += tokens;
        } else {
            self.arrived[i].1 += tokens;
        }
    }

    /// Runs the eq. 21/22 updates for every channel. `required` yields the
    /// funds needed per direction (n_a, n_b) and `capacity` the channel
    /// total c_ab.
    pub fn tick<FR, FC>(&mut self, kappa: f64, eta: f64, mut required: FR, mut capacity: FC)
    where
        FR: FnMut(ChannelId) -> (f64, f64),
        FC: FnMut(ChannelId) -> f64,
    {
        for i in 0..self.prices.len() {
            let ch = ChannelId::from_index(i);
            let (n_a, n_b) = required(ch);
            self.prices[i].update_lambda(kappa, n_a, n_b, capacity(ch));
            let (m_a, m_b) = self.arrived[i];
            self.prices[i].update_mu(eta, m_a, m_b);
            self.arrived[i] = (0.0, 0.0);
        }
        self.epoch += 1;
    }

    /// Routing price ξ of channel `ch` in direction `from → other`
    /// (eq. 23).
    pub fn xi(&self, ch: ChannelId, from: NodeId) -> f64 {
        let i = ch.index();
        if i >= self.prices.len() {
            return 0.0;
        }
        self.prices[i].xi(self.endpoints[i].0 == from)
    }

    /// Eq. 25: total path price `ϱ_p = (1 + T_fee)·Σ ξ` measured by a
    /// probe walking `path`.
    pub fn path_price(&self, path: &Path, t_fee: f64) -> f64 {
        let sum: f64 = path
            .hops_iter()
            .map(|(from, ch, _)| self.xi(ch, from))
            .sum();
        (1.0 + t_fee) * sum
    }

    /// Direct access for diagnostics.
    pub fn channel(&self, ch: ChannelId) -> Option<&ChannelPrices> {
        self.prices.get(ch.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn lambda_rises_on_overdemand_and_floors_at_zero() {
        let mut p = ChannelPrices::default();
        p.update_lambda(0.1, 8.0, 7.0, 10.0); // demand 15 > cap 10
        assert!((p.lambda - 0.5).abs() < 1e-12);
        p.update_lambda(0.1, 1.0, 1.0, 10.0); // under capacity → falls
        assert!((p.lambda - 0.0).abs() < 1e-12); // floored
    }

    #[test]
    fn mu_tracks_direction_imbalance() {
        let mut p = ChannelPrices::default();
        p.update_mu(0.2, 10.0, 4.0);
        assert!((p.mu_ab - 1.2).abs() < 1e-12);
        assert_eq!(p.mu_ba, 0.0);
        // Reverse imbalance decays µ_ab and grows µ_ba.
        p.update_mu(0.2, 0.0, 6.0);
        assert!((p.mu_ab - 0.0).abs() < 1e-12);
        assert!((p.mu_ba - 1.2).abs() < 1e-12);
    }

    #[test]
    fn xi_asymmetric_between_directions() {
        let p = ChannelPrices {
            lambda: 1.0,
            mu_ab: 3.0,
            mu_ba: 0.5,
        };
        assert!((p.xi(true) - (2.0 + 3.0 - 0.5)).abs() < 1e-12);
        // Raw reverse price would be 2 + 0.5 − 3 = −0.5; floored at zero.
        assert_eq!(p.xi(false), 0.0);
        // fee is a fraction of xi
        assert!((p.fee(0.1, true) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn xi_never_negative() {
        let p = ChannelPrices {
            lambda: 0.0,
            mu_ab: 0.0,
            mu_ba: 9.0,
        };
        assert_eq!(p.xi(true), 0.0);
    }

    #[test]
    fn table_tick_and_path_price() {
        let mut g = pcn_graph::Graph::new(3);
        let c0 = g.add_edge(n(0), n(1));
        let c1 = g.add_edge(n(1), n(2));
        let endpoints = vec![(n(0), n(1)), (n(1), n(2))];
        let mut table = PriceTable::new(endpoints);
        // Push arrivals only in the 0→1 and 1→2 directions.
        table.record_arrival(c0, n(0), 10.0);
        table.record_arrival(c1, n(1), 6.0);
        table.tick(0.1, 0.5, |_| (12.0, 0.0), |_| 10.0);
        // λ = 0.1·(12−10) = 0.2 per channel; µ_fwd = 0.5·arrivals.
        let path = Path::new(vec![n(0), n(1), n(2)], vec![c0, c1]);
        let xi0 = table.xi(c0, n(0));
        let xi1 = table.xi(c1, n(1));
        assert!((xi0 - (0.4 + 5.0)).abs() < 1e-12);
        assert!((xi1 - (0.4 + 3.0)).abs() < 1e-12);
        let rho = table.path_price(&path, 0.1);
        assert!((rho - 1.1 * (xi0 + xi1)).abs() < 1e-12);
        // Reverse direction is cheap (imbalance favours it).
        assert!(table.xi(c0, n(1)) < xi0);
        // Arrivals reset after tick.
        table.tick(0.1, 0.5, |_| (0.0, 0.0), |_| 10.0);
        let xi0_after = table.xi(c0, n(0));
        assert!(xi0_after <= xi0);
    }

    #[test]
    fn price_epoch_advances_per_tick() {
        let mut table = PriceTable::new(vec![(n(0), n(1))]);
        assert_eq!(table.price_epoch(), 0);
        table.tick(0.1, 0.5, |_| (0.0, 0.0), |_| 10.0);
        table.tick(0.1, 0.5, |_| (0.0, 0.0), |_| 10.0);
        assert_eq!(table.price_epoch(), 2);
        // Recording arrivals alone does not tick the epoch.
        table.record_arrival(ChannelId::new(0), n(0), 1.0);
        assert_eq!(table.price_epoch(), 2);
    }

    #[test]
    fn set_endpoints_grows_preserving_existing_prices() {
        let mut table = PriceTable::new(vec![(n(0), n(1))]);
        table.record_arrival(ChannelId::new(0), n(0), 10.0);
        table.tick(0.1, 0.5, |_| (12.0, 0.0), |_| 10.0);
        let xi_before = table.xi(ChannelId::new(0), n(0));
        assert!(xi_before > 0.0);
        let grown: Arc<[(NodeId, NodeId)]> = vec![(n(0), n(1)), (n(1), n(2))].into();
        table.set_endpoints(grown);
        assert_eq!(table.len(), 2);
        assert_eq!(table.xi(ChannelId::new(0), n(0)), xi_before);
        assert_eq!(table.xi(ChannelId::new(1), n(1)), 0.0, "new channel zeroed");
        table.record_arrival(ChannelId::new(1), n(2), 4.0);
        table.tick(0.1, 0.5, |_| (0.0, 0.0), |_| 10.0);
        assert!(table.xi(ChannelId::new(1), n(2)) > 0.0);
    }

    #[test]
    #[should_panic(expected = "only grow")]
    fn set_endpoints_rejects_shrink() {
        let mut table = PriceTable::new(vec![(n(0), n(1))]);
        table.set_endpoints(Vec::new().into());
    }

    #[test]
    fn out_of_range_channels_are_harmless() {
        let mut table = PriceTable::new(vec![(n(0), n(1))]);
        table.record_arrival(ChannelId::new(9), n(0), 5.0);
        assert_eq!(table.xi(ChannelId::new(9), n(0)), 0.0);
        assert!(table.channel(ChannelId::new(9)).is_none());
    }
}
