//! Path selection strategies (Table II: KSP, Heuristic, EDW, EDS).

use core::cell::RefCell;

use pcn_graph::{
    edge_disjoint_shortest_paths_accel_in, edge_disjoint_shortest_paths_in,
    edge_disjoint_widest_paths_in, k_shortest_paths_accel_in, k_shortest_paths_in,
    k_shortest_paths_until_in, widest_path_in, AccelBounds, EdgeRef, Footprint, Graph, Path,
    SearchWorkspace,
};
use pcn_types::{Amount, NodeId};

use crate::channel::NetworkFunds;

/// Which path type a scheme routes over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PathSelect {
    /// k-shortest paths (Yen).
    Ksp,
    /// Heuristic: k loopless paths ranked by channel funds (the paper's
    /// "picks 5 feasible paths with the highest channel funds").
    Heuristic,
    /// Edge-disjoint widest paths (Splicer's default and Table II winner).
    #[default]
    Edw,
    /// Edge-disjoint shortest paths.
    Eds,
}

impl PathSelect {
    /// All variants, for Table II sweeps.
    pub const ALL: [PathSelect; 4] = [
        PathSelect::Ksp,
        PathSelect::Heuristic,
        PathSelect::Edw,
        PathSelect::Eds,
    ];

    /// Name as printed in Table II.
    pub fn name(self) -> &'static str {
        match self {
            PathSelect::Ksp => "KSP",
            PathSelect::Heuristic => "Heuristic",
            PathSelect::Edw => "EDW",
            PathSelect::Eds => "EDS",
        }
    }
}

/// How much knowledge of channel state the path computation has.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceView {
    /// Live per-direction balances (hub routers with epoch-fresh state).
    Live,
    /// Only static channel totals (source routers: remote balances are
    /// unobservable in a real PCN).
    CapacityOnly,
}

/// Computes up to `k` paths from `src` to `dst` under the given strategy.
///
/// Widths come from channel funds: live directional balance or static
/// total depending on `view`. Paths that cannot carry at least
/// `min_width` are filtered out for the width-based strategies.
///
/// `accel` routes the unit-cost searches (KSP/EDS/Heuristic) through the
/// goal-directed variants ([`pcn_graph::shortest_path_accel_in`]);
/// results are bit-identical either way.
#[allow(clippy::too_many_arguments)] // the routing tuple is the paper's Table II axes
pub fn select_paths(
    g: &Graph,
    funds: &NetworkFunds,
    src: NodeId,
    dst: NodeId,
    k: usize,
    strategy: PathSelect,
    view: BalanceView,
    min_width: Amount,
    accel: bool,
) -> Vec<Path> {
    select_paths_in(
        g,
        &mut SearchWorkspace::new(),
        funds,
        src,
        dst,
        k,
        strategy,
        view,
        min_width,
        accel,
    )
}

/// [`select_paths`] running its graph searches on a reusable
/// [`SearchWorkspace`]: the engine's hot path calls this with its
/// long-lived workspace so repeated path selection is allocation-free.
/// Results are bit-identical to [`select_paths`].
#[allow(clippy::too_many_arguments)] // the routing tuple is the paper's Table II axes
pub fn select_paths_in(
    g: &Graph,
    ws: &mut SearchWorkspace,
    funds: &NetworkFunds,
    src: NodeId,
    dst: NodeId,
    k: usize,
    strategy: PathSelect,
    view: BalanceView,
    min_width: Amount,
    accel: bool,
) -> Vec<Path> {
    let width = |e: EdgeRef| funds_width(funds, view, e);
    select_paths_core(
        g,
        ws,
        width,
        src,
        dst,
        k,
        strategy,
        min_width,
        accel,
        Scope::Plain,
    )
}

/// [`select_paths_in`] that additionally records the **channel dependency
/// footprint** of the computation into `fp` (cleared first): every
/// channel the width closure was consulted on. The searches only read
/// channel state through that closure and consult every edge whose state
/// can influence the outcome, so the result is bit-identical under any
/// funds movement confined to channels outside the footprint — the
/// scoped-invalidation contract the path cache relies on. Path results
/// are bit-identical to [`select_paths_in`].
///
/// Sufficiency is preserved by running under the footprint scope:
/// goal-directed searches prune with funds-independent bounds only
/// ([`AccelBounds::TopologyOnly`] — the backward probe ball would hide
/// channels a later funds move can flip), and the Heuristic candidate
/// pool never stops early (the early exit skips candidates whose
/// channels a funds increase could promote into the top k).
#[allow(clippy::too_many_arguments)] // the routing tuple is the paper's Table II axes
pub fn select_paths_footprint(
    g: &Graph,
    ws: &mut SearchWorkspace,
    funds: &NetworkFunds,
    src: NodeId,
    dst: NodeId,
    k: usize,
    strategy: PathSelect,
    view: BalanceView,
    min_width: Amount,
    accel: bool,
    fp: &mut Footprint,
) -> Vec<Path> {
    fp.clear();
    let width = |e: EdgeRef| {
        fp.record(e.id);
        funds_width(funds, view, e)
    };
    select_paths_core(
        g,
        ws,
        width,
        src,
        dst,
        k,
        strategy,
        min_width,
        accel,
        Scope::Footprint,
    )
}

/// Usable width of a directed edge under a balance view: live
/// directional balance or static channel total.
fn funds_width(funds: &NetworkFunds, view: BalanceView, e: EdgeRef) -> Option<f64> {
    let tokens = match view {
        BalanceView::Live => funds.balance(e.id, e.from).to_tokens_f64(),
        BalanceView::CapacityOnly => funds.total(e.id).to_tokens_f64(),
    };
    (tokens > 0.0).then_some(tokens)
}

/// Whether the computation records a channel dependency footprint.
///
/// Scoped computations restrict themselves to **funds-independent
/// pruning** so that every channel whose funds state can influence the
/// result is consulted (and therefore recorded): goal-directed searches
/// run [`AccelBounds::TopologyOnly`] (the backward probe ball prices
/// edges under the current funds configuration and would prune nodes
/// whose channels a later funds move can flip), and the Heuristic pool
/// never stops early. Results are bit-identical in both scopes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Scope {
    Plain,
    Footprint,
}

/// Strategy dispatch over an arbitrary width closure — the single body
/// behind [`select_paths_in`] and [`select_paths_footprint`].
#[allow(clippy::too_many_arguments)]
fn select_paths_core<W>(
    g: &Graph,
    ws: &mut SearchWorkspace,
    mut width: W,
    src: NodeId,
    dst: NodeId,
    k: usize,
    strategy: PathSelect,
    min_width: Amount,
    accel: bool,
    scope: Scope,
) -> Vec<Path>
where
    W: FnMut(EdgeRef) -> Option<f64>,
{
    let min_w = min_width.to_tokens_f64();
    let bounds = match scope {
        Scope::Plain => AccelBounds::Full,
        Scope::Footprint => AccelBounds::TopologyOnly,
    };
    match strategy {
        PathSelect::Ksp => {
            if accel {
                k_shortest_paths_accel_in(
                    g,
                    ws,
                    src,
                    dst,
                    k,
                    |e| width(e).map(|_| 1.0),
                    |_| false,
                    bounds,
                )
            } else {
                k_shortest_paths_in(g, ws, src, dst, k, |e| width(e).map(|_| 1.0))
            }
        }
        PathSelect::Eds => {
            if accel {
                edge_disjoint_shortest_paths_accel_in(
                    g,
                    ws,
                    src,
                    dst,
                    k,
                    |e| width(e).map(|_| 1.0),
                    bounds,
                )
            } else {
                edge_disjoint_shortest_paths_in(g, ws, src, dst, k, |e| width(e).map(|_| 1.0))
            }
        }
        PathSelect::Edw => {
            edge_disjoint_widest_paths_in(g, ws, src, dst, k, |e| width(e).filter(|w| *w >= min_w))
        }
        PathSelect::Heuristic => {
            // Rank a KSP candidate pool by bottleneck funds, keep the top
            // k — but stop pool generation early. One widest-path query
            // yields the best bottleneck any pool path can achieve; once
            // k accepted paths hit that bound, the stable descending sort
            // below can never rank a later (by construction no wider)
            // candidate into the top k, so the remaining — and most
            // expensive — Yen rounds cannot change the selection.
            //
            // Footprint scope generates the full pool instead: skipped
            // candidates' channels are never priced, so a funds increase
            // lifting one of them above the old widest bound would not
            // invalidate a scoped cache entry whose selection it changes.
            let width = RefCell::new(&mut width);
            let wmax = match scope {
                Scope::Plain => {
                    widest_path_in(g, ws, src, dst, |e| (width.borrow_mut())(e)).map(|(w, _)| w)
                }
                Scope::Footprint => None,
            };
            let mut at_max = 0usize;
            let until = |p: &Path| {
                let Some(wm) = wmax else { return false };
                let bottleneck = p
                    .hops_iter()
                    .map(|(from, ch, to)| {
                        (width.borrow_mut())(EdgeRef { id: ch, from, to }).unwrap_or(0.0)
                    })
                    .fold(f64::INFINITY, f64::min);
                if bottleneck >= wm {
                    at_max += 1;
                }
                at_max >= k
            };
            let cost = |e: EdgeRef| (width.borrow_mut())(e).map(|_| 1.0);
            let pool = if accel {
                k_shortest_paths_accel_in(g, ws, src, dst, 3 * k, cost, until, bounds)
            } else {
                k_shortest_paths_until_in(g, ws, src, dst, 3 * k, cost, until)
            };
            let mut scored: Vec<(f64, Path)> = pool
                .into_iter()
                .map(|p| {
                    let bottleneck = p
                        .hops_iter()
                        .map(|(from, ch, to)| {
                            (width.borrow_mut())(EdgeRef { id: ch, from, to }).unwrap_or(0.0)
                        })
                        .fold(f64::INFINITY, f64::min);
                    (bottleneck, p)
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            scored.into_iter().take(k).map(|(_, p)| p).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::Amount;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Diamond with one fat route (0-2-3) and one thin route (0-1-3).
    fn setup() -> (Graph, NetworkFunds) {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1)); // ch0 thin
        g.add_edge(n(1), n(3)); // ch1 thin
        g.add_edge(n(0), n(2)); // ch2 fat
        g.add_edge(n(2), n(3)); // ch3 fat
        let funds = NetworkFunds::from_graph(&g, |id, _| {
            if id.index() < 2 {
                Amount::from_tokens(2)
            } else {
                Amount::from_tokens(50)
            }
        });
        (g, funds)
    }

    #[test]
    fn edw_prefers_fat_route_first() {
        let (g, funds) = setup();
        let paths = select_paths(
            &g,
            &funds,
            n(0),
            n(3),
            5,
            PathSelect::Edw,
            BalanceView::Live,
            Amount::from_tokens(1),
            false,
        );
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].nodes()[1], n(2), "fat route first");
    }

    #[test]
    fn edw_min_width_filters_thin_paths() {
        let (g, funds) = setup();
        let paths = select_paths(
            &g,
            &funds,
            n(0),
            n(3),
            5,
            PathSelect::Edw,
            BalanceView::Live,
            Amount::from_tokens(10),
            false,
        );
        assert_eq!(paths.len(), 1, "thin route excluded");
    }

    #[test]
    fn all_strategies_return_valid_paths() {
        let (g, funds) = setup();
        for strategy in PathSelect::ALL {
            for view in [BalanceView::Live, BalanceView::CapacityOnly] {
                for accel in [false, true] {
                    let paths = select_paths(
                        &g,
                        &funds,
                        n(0),
                        n(3),
                        4,
                        strategy,
                        view,
                        Amount::from_millitokens(1),
                        accel,
                    );
                    assert!(!paths.is_empty(), "{strategy:?}/{view:?}/accel={accel}");
                    for p in &paths {
                        p.validate(&g).unwrap();
                        assert_eq!(p.source(), n(0));
                        assert_eq!(p.target(), n(3));
                    }
                }
            }
        }
    }

    #[test]
    fn heuristic_ranks_by_bottleneck() {
        let (g, funds) = setup();
        let paths = select_paths(
            &g,
            &funds,
            n(0),
            n(3),
            1,
            PathSelect::Heuristic,
            BalanceView::Live,
            Amount::from_millitokens(1),
            false,
        );
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes()[1], n(2));
    }

    /// The heuristic's bottleneck scorer builds each hop's real forward
    /// [`EdgeRef`] from `hops_iter`. The old degenerate `to: from` ref
    /// was *latent* — today's width closure reads only `e.id`/`e.from`,
    /// so scoring was already forward-correct — but this pins the
    /// forward ranking on asymmetric balances (route via node 1 thin
    /// forward / fat backward, via node 2 the opposite) so a future
    /// direction-sensitive width closure cannot silently regress it.
    #[test]
    fn heuristic_scores_hops_in_forward_direction() {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1)); // ch0
        g.add_edge(n(1), n(3)); // ch1
        g.add_edge(n(0), n(2)); // ch2
        g.add_edge(n(2), n(3)); // ch3
        let funds = NetworkFunds::from_graph(&g, |id, side| {
            let via1 = id.index() < 2;
            let forward = side == n(0) || (via1 && side == n(1)) || (!via1 && side == n(2));
            let tokens = match (via1, forward) {
                (true, true) => 3,   // thin forward via 1
                (true, false) => 9,  // fat backward via 1
                (false, true) => 6,  // fat forward via 2
                (false, false) => 1, // thin backward via 2
            };
            Amount::from_tokens(tokens)
        });
        let paths = select_paths(
            &g,
            &funds,
            n(0),
            n(3),
            1,
            PathSelect::Heuristic,
            BalanceView::Live,
            Amount::from_millitokens(1),
            false,
        );
        assert_eq!(paths.len(), 1);
        assert_eq!(
            paths[0].nodes()[1],
            n(2),
            "forward bottleneck via 2 (6) beats via 1 (3); a \
             backward-reading scorer would rank via 1 (backward 9) first"
        );
    }

    /// The footprint variant returns bit-identical paths and records
    /// exactly the channels the search consulted.
    #[test]
    fn footprint_variant_matches_and_scopes() {
        let (mut g, _) = setup();
        // Unreachable island: can never enter the footprint.
        let i0 = g.add_node();
        let i1 = g.add_node();
        let island = g.add_edge(i0, i1);
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        let mut fp = pcn_graph::Footprint::new();
        for (strategy, accel) in PathSelect::ALL
            .into_iter()
            .flat_map(|s| [(s, false), (s, true)])
        {
            let mut ws = pcn_graph::SearchWorkspace::new();
            ws.prepare_landmarks(&g);
            let plain = select_paths_in(
                &g,
                &mut ws,
                &funds,
                n(0),
                n(3),
                4,
                strategy,
                BalanceView::Live,
                Amount::from_millitokens(1),
                accel,
            );
            let mut ws2 = pcn_graph::SearchWorkspace::new();
            ws2.prepare_landmarks(&g);
            let tracked = select_paths_footprint(
                &g,
                &mut ws2,
                &funds,
                n(0),
                n(3),
                4,
                strategy,
                BalanceView::Live,
                Amount::from_millitokens(1),
                accel,
                &mut fp,
            );
            assert_eq!(plain, tracked, "{strategy:?}/accel={accel}");
            assert!(!fp.is_empty(), "{strategy:?} consulted channels");
            // Every channel on a returned path was consulted.
            for p in &tracked {
                for ch in p.channels() {
                    assert!(fp.contains(*ch), "{strategy:?} path channel {ch}");
                }
            }
            assert!(!fp.contains(island), "{strategy:?} island unreachable");
        }
    }

    #[test]
    fn capacity_view_ignores_drained_balances() {
        let (g, mut funds) = setup();
        // Drain the fat route's live balances in the forward direction.
        let fat0 = pcn_types::ChannelId::new(2);
        funds.lock(fat0, n(0), Amount::from_tokens(50)).unwrap();
        funds.settle(fat0, n(0), Amount::from_tokens(50)).unwrap();
        let live = select_paths(
            &g,
            &funds,
            n(0),
            n(3),
            5,
            PathSelect::Edw,
            BalanceView::Live,
            Amount::from_tokens(1),
            false,
        );
        // Live view: fat route unusable forward, only thin remains.
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].nodes()[1], n(1));
        // Capacity view still "sees" the fat route (stale knowledge).
        let stale = select_paths(
            &g,
            &funds,
            n(0),
            n(3),
            5,
            PathSelect::Edw,
            BalanceView::CapacityOnly,
            Amount::from_tokens(1),
            false,
        );
        assert_eq!(stale.len(), 2);
        assert_eq!(stale[0].nodes()[1], n(2));
    }

    /// The Heuristic early exit must not change the selection: once k
    /// accepted pool paths reach the widest-path bound, generation stops
    /// — and the picked top-k is bit-identical to ranking the full 3·k
    /// pool the old code built. The wide routes are also the shortest
    /// here, so the exit fires before the narrow 3-hop candidates are
    /// generated, which the settled-node counter makes observable.
    #[test]
    fn heuristic_early_exit_preserves_selection() {
        let mut g = Graph::new(10);
        // Two wide 2-hop routes …
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(9));
        g.add_edge(n(0), n(2));
        g.add_edge(n(2), n(9));
        // … and three narrow 3-hop routes.
        for (a, b) in [(3, 4), (5, 6), (7, 8)] {
            g.add_edge(n(0), n(a));
            g.add_edge(n(a), n(b));
            g.add_edge(n(b), n(9));
        }
        let funds = NetworkFunds::from_graph(&g, |id, _| {
            Amount::from_tokens(if id.index() < 4 { 100 } else { 10 })
        });
        let k = 2;
        // The old behaviour, spelled out: full 3·k pool, stable
        // descending bottleneck sort, take k.
        let mut ws = SearchWorkspace::new();
        let full_pool = pcn_graph::k_shortest_paths_in(&g, &mut ws, n(0), n(9), 3 * k, |e| {
            (funds.balance(e.id, e.from) > Amount::ZERO).then_some(1.0)
        });
        assert_eq!(full_pool.len(), 5, "all routes are in the full pool");
        let mut scored: Vec<(f64, Path)> = full_pool
            .into_iter()
            .map(|p| {
                let b = p
                    .hops_iter()
                    .map(|(from, ch, _)| funds.balance(ch, from).to_tokens_f64())
                    .fold(f64::INFINITY, f64::min);
                (b, p)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let baseline: Vec<Path> = scored.into_iter().take(k).map(|(_, p)| p).collect();
        for accel in [false, true] {
            let mut ws = SearchWorkspace::new();
            ws.prepare_landmarks(&g);
            let warmup = ws.nodes_settled();
            let _ = warmup;
            let before = ws.nodes_settled();
            let picked = select_paths_in(
                &g,
                &mut ws,
                &funds,
                n(0),
                n(9),
                k,
                PathSelect::Heuristic,
                BalanceView::Live,
                Amount::from_millitokens(1),
                accel,
            );
            let settled = ws.nodes_settled() - before;
            assert_eq!(picked, baseline, "accel={accel}");
            // Full Yen over this graph costs well over 60 settles; the
            // early exit stops after the two wide routes are accepted.
            assert!(settled < 60, "accel={accel}: settled {settled}");
        }
    }

    /// The scoped-invalidation contract itself: funds movement confined
    /// to channels **outside** the recorded footprint must leave the
    /// selection bit-identical — including funding previously-unusable
    /// channels, the direction the goal-directed pruning could hide.
    /// With backward-ball pruning (or the Heuristic early exit) active
    /// under a footprint, a pruned node's unfunded out-channel would be
    /// missing from the footprint, and funding it could change a fresh
    /// recomputation while the stale scoped entry survives.
    #[test]
    fn footprint_survives_funds_movement_outside_it() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for round in 0..40u64 {
            let nn = rng.random_range(6..18usize);
            let mut g = Graph::new(nn);
            let mut m = 0usize;
            for a in 0..nn {
                for b in (a + 1)..nn {
                    if rng.random_bool(0.3) {
                        g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
                        m += 1;
                    }
                }
            }
            if m == 0 {
                continue;
            }
            // A quarter of the channels start unfunded: funding one of
            // them later is exactly the move that can reveal a path the
            // original computation never priced.
            let base: Vec<u64> = (0..m)
                .map(|_| {
                    if rng.random_bool(0.25) {
                        0
                    } else {
                        rng.random_range(1..50)
                    }
                })
                .collect();
            let funds = NetworkFunds::from_graph(&g, |id, _| Amount::from_tokens(base[id.index()]));
            let (src, dst) = (n(0), NodeId::from_index(nn - 1));
            for strategy in PathSelect::ALL {
                for accel in [false, true] {
                    let mut ws = SearchWorkspace::new();
                    ws.prepare_landmarks(&g);
                    let mut fp = pcn_graph::Footprint::new();
                    let tracked = select_paths_footprint(
                        &g,
                        &mut ws,
                        &funds,
                        src,
                        dst,
                        3,
                        strategy,
                        BalanceView::Live,
                        Amount::from_millitokens(1),
                        accel,
                        &mut fp,
                    );
                    // Move funds on every channel outside the footprint
                    // (fund the unfunded, widen the rest); footprint
                    // channels keep their exact state.
                    let moved = NetworkFunds::from_graph(&g, |id, _| {
                        let boost = if fp.contains(id) { 0 } else { 75 };
                        Amount::from_tokens(base[id.index()] + boost)
                    });
                    let mut ws2 = SearchWorkspace::new();
                    let fresh = select_paths_in(
                        &g,
                        &mut ws2,
                        &moved,
                        src,
                        dst,
                        3,
                        strategy,
                        BalanceView::Live,
                        Amount::from_millitokens(1),
                        false,
                    );
                    assert_eq!(
                        tracked, fresh,
                        "round {round} {strategy:?} accel={accel}: a funds move \
                         outside the footprint changed the selection"
                    );
                }
            }
        }
    }

    /// Under a footprint the Heuristic generates the full 3·k pool: the
    /// skipped candidates' channels must be recorded, because a funds
    /// increase on one of them can lift its bottleneck above the old
    /// widest bound and change the selection. The selection itself stays
    /// bit-identical to the early-exiting plain computation.
    #[test]
    fn heuristic_footprint_covers_skipped_candidates() {
        // Same topology as `heuristic_early_exit_preserves_selection`:
        // two wide 2-hop routes (channels 0..4) and three narrow 3-hop
        // routes (channels 4..13) the early exit never generates.
        let mut g = Graph::new(10);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(9));
        g.add_edge(n(0), n(2));
        g.add_edge(n(2), n(9));
        for (a, b) in [(3, 4), (5, 6), (7, 8)] {
            g.add_edge(n(0), n(a));
            g.add_edge(n(a), n(b));
            g.add_edge(n(b), n(9));
        }
        let funds = NetworkFunds::from_graph(&g, |id, _| {
            Amount::from_tokens(if id.index() < 4 { 100 } else { 10 })
        });
        let k = 2;
        for accel in [false, true] {
            let mut ws = SearchWorkspace::new();
            ws.prepare_landmarks(&g);
            let plain = select_paths_in(
                &g,
                &mut ws,
                &funds,
                n(0),
                n(9),
                k,
                PathSelect::Heuristic,
                BalanceView::Live,
                Amount::from_millitokens(1),
                accel,
            );
            let mut ws2 = SearchWorkspace::new();
            ws2.prepare_landmarks(&g);
            let mut fp = pcn_graph::Footprint::new();
            let tracked = select_paths_footprint(
                &g,
                &mut ws2,
                &funds,
                n(0),
                n(9),
                k,
                PathSelect::Heuristic,
                BalanceView::Live,
                Amount::from_millitokens(1),
                accel,
                &mut fp,
            );
            assert_eq!(plain, tracked, "accel={accel}");
            for ch in 4..13u32 {
                assert!(
                    fp.contains(pcn_types::ChannelId::new(ch)),
                    "accel={accel}: narrow-route channel {ch} missing from footprint"
                );
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(PathSelect::Ksp.name(), "KSP");
        assert_eq!(PathSelect::Heuristic.name(), "Heuristic");
        assert_eq!(PathSelect::Edw.name(), "EDW");
        assert_eq!(PathSelect::Eds.name(), "EDS");
    }
}
