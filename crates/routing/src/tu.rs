//! Payments and transaction units (TUs).

use std::sync::Arc;

use pcn_graph::Path;
use pcn_types::{Amount, NodeId, SimTime, TuId, TxId};

/// A payment demand `D_tid = (P_s, P_r, val_tid)` (§III-A).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Payment {
    /// Transaction id.
    pub id: TxId,
    /// Sender client.
    pub source: NodeId,
    /// Recipient client.
    pub dest: NodeId,
    /// Payment value.
    pub value: Amount,
    /// Arrival (creation) time.
    pub created: SimTime,
    /// Hard completion deadline (`created + timeout`).
    pub deadline: SimTime,
}

/// One in-flight transaction unit.
#[derive(Clone, Debug)]
pub struct TransactionUnit {
    /// TU id (unique per run).
    pub id: TuId,
    /// Parent transaction.
    pub tx: TxId,
    /// Value carried.
    pub amount: Amount,
    /// The parent flow's path plan, shared by reference count: TU
    /// injection and retry hand out the plan `Arc` instead of
    /// deep-cloning a [`Path`] per TU.
    pub plan: Arc<[Path]>,
    /// Which path of the plan this TU travels.
    pub flow_path: usize,
    /// Index of the next hop to traverse (0 = at the source).
    pub next_hop: usize,
    /// Number of hops currently holding a lock for this TU.
    pub locked_hops: usize,
    /// Congestion mark (queueing delay exceeded the threshold T).
    pub marked: bool,
    /// Deadline inherited from the transaction.
    pub deadline: SimTime,
    /// When this TU entered the current queue (None when not queued).
    pub enqueued_at: Option<SimTime>,
    /// Retry attempts consumed (Flash's alternate-path retry budget).
    pub retries: u32,
}

impl TransactionUnit {
    /// The full path this TU travels.
    pub fn path(&self) -> &Path {
        &self.plan[self.flow_path]
    }
}

/// Splits a demand value into TU amounts within `[min_tu, max_tu]`
/// (§IV-D: "we limit Min-TU ≤ |d_i| ≤ Max-TU to control the number of
/// split TUs").
///
/// Values below `min_tu` travel as a single undersized TU (a payment
/// smaller than Min-TU must still be routable); the final chunk merges
/// into its predecessor when it would fall below `min_tu`.
///
/// The returned amounts always sum to `value`.
///
/// # Panics
///
/// Panics if `min_tu` or `max_tu` is zero or `min_tu > max_tu`.
///
/// # Examples
///
/// ```
/// use pcn_routing::tu::split_demand;
/// use pcn_types::Amount;
///
/// let parts = split_demand(
///     Amount::from_tokens(10),
///     Amount::from_tokens(1),
///     Amount::from_tokens(4),
/// );
/// assert_eq!(parts.iter().copied().sum::<Amount>(), Amount::from_tokens(10));
/// assert!(parts.iter().all(|p| *p <= Amount::from_tokens(4)));
/// ```
pub fn split_demand(value: Amount, min_tu: Amount, max_tu: Amount) -> Vec<Amount> {
    assert!(
        !min_tu.is_zero() && !max_tu.is_zero(),
        "TU bounds must be positive"
    );
    assert!(min_tu <= max_tu, "Min-TU must not exceed Max-TU");
    if value.is_zero() {
        return Vec::new();
    }
    if value <= max_tu {
        return vec![value];
    }
    let mut parts = Vec::new();
    let mut remaining = value;
    while remaining > max_tu {
        let next_rem = remaining - max_tu;
        if next_rem < min_tu {
            // Prefer two near-equal halves when both can stay ≥ Min-TU;
            // otherwise accept one undersized tail (unavoidable when
            // Min-TU and Max-TU pinch, e.g. Min = Max).
            let half = Amount::from_millitokens(remaining.millitokens() / 2);
            if half >= min_tu && (remaining - half) <= max_tu {
                parts.push(half);
                parts.push(remaining - half);
                remaining = Amount::ZERO;
                break;
            }
        }
        parts.push(max_tu);
        remaining = next_rem;
    }
    if !remaining.is_zero() {
        parts.push(remaining);
    }
    debug_assert_eq!(parts.iter().copied().sum::<Amount>(), value);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u64) -> Amount {
        Amount::from_tokens(v)
    }

    #[test]
    fn small_values_single_tu() {
        assert_eq!(split_demand(t(3), t(1), t(4)), vec![t(3)]);
        assert_eq!(
            split_demand(Amount::from_millitokens(500), t(1), t(4)),
            vec![Amount::from_millitokens(500)]
        );
        assert!(split_demand(Amount::ZERO, t(1), t(4)).is_empty());
    }

    #[test]
    fn exact_multiples() {
        let parts = split_demand(t(12), t(1), t(4));
        assert_eq!(parts, vec![t(4), t(4), t(4)]);
    }

    #[test]
    fn tail_merge_keeps_bounds() {
        // 9.5 tokens with max 4, min 1: 4 + 4 + 1.5 → fine.
        let parts = split_demand(Amount::from_millitokens(9_500), t(1), t(4));
        assert_eq!(
            parts.iter().copied().sum::<Amount>(),
            Amount::from_millitokens(9_500)
        );
        for p in &parts {
            assert!(*p >= t(1) || parts.len() == 1);
            assert!(*p <= t(4));
        }
        // 8.5: 4 + 4 + 0.5 would violate min → merge: 4 + 2.25 + 2.25.
        let parts = split_demand(Amount::from_millitokens(8_500), t(1), t(4));
        assert_eq!(
            parts.iter().copied().sum::<Amount>(),
            Amount::from_millitokens(8_500)
        );
        assert!(parts.iter().all(|p| *p >= t(1) && *p <= t(4)));
    }

    #[test]
    fn sum_is_exact_over_many_values() {
        for millis in (100..30_000).step_by(517) {
            let v = Amount::from_millitokens(millis);
            let parts = split_demand(v, t(1), t(4));
            assert_eq!(parts.iter().copied().sum::<Amount>(), v, "value {millis}");
            assert!(parts.iter().all(|p| *p <= t(4)));
        }
    }

    #[test]
    #[should_panic(expected = "Min-TU must not exceed Max-TU")]
    fn inverted_bounds_panic() {
        split_demand(t(10), t(5), t(4));
    }
}
