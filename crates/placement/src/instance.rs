//! Placement problem instances and their cost model.

use pcn_graph::{bfs_hops, Graph};
use pcn_types::{NodeId, PcnError, Result};

/// Cost-model parameters (§V-A): per-hop coefficients for the management
/// cost ζ, synchronization cost δ, constant synchronization cost ε, and the
/// tradeoff weight ω of eq. 5.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// ζ per communication hop between a client and a candidate (paper: 0.02).
    pub zeta_per_hop: f64,
    /// δ per hop between two candidates (paper: 0.01).
    pub delta_per_hop: f64,
    /// ε per hop between two candidates (paper: 0.05).
    pub eps_per_hop: f64,
    /// Tradeoff weight ω ≥ 0.
    pub omega: f64,
}

impl CostParams {
    /// The paper's coefficients with a chosen ω.
    pub fn paper(omega: f64) -> CostParams {
        CostParams {
            zeta_per_hop: 0.02,
            delta_per_hop: 0.01,
            eps_per_hop: 0.05,
            omega,
        }
    }
}

/// A fully materialized placement instance: clients, candidates and the
/// pairwise cost matrices.
#[derive(Clone, Debug)]
pub struct PlacementInstance {
    clients: Vec<NodeId>,
    candidates: Vec<NodeId>,
    /// ζ[m][n]: management cost of assigning client m to candidate n.
    zeta: Vec<Vec<f64>>,
    /// δ[n][l]: synchronization cost between candidates (zero diagonal).
    delta: Vec<Vec<f64>>,
    /// ε[n][l]: constant synchronization cost (zero diagonal).
    eps: Vec<Vec<f64>>,
    omega: f64,
}

impl PlacementInstance {
    /// Builds an instance from raw matrices.
    ///
    /// # Errors
    ///
    /// Returns [`PcnError::InvalidConfig`] on dimension mismatches,
    /// negative costs, or a negative ω.
    pub fn from_matrices(
        clients: Vec<NodeId>,
        candidates: Vec<NodeId>,
        zeta: Vec<Vec<f64>>,
        delta: Vec<Vec<f64>>,
        eps: Vec<Vec<f64>>,
        omega: f64,
    ) -> Result<PlacementInstance> {
        let m = clients.len();
        let n = candidates.len();
        if n == 0 {
            return Err(PcnError::InvalidConfig("no candidate smooth nodes".into()));
        }
        if zeta.len() != m || zeta.iter().any(|r| r.len() != n) {
            return Err(PcnError::InvalidConfig("zeta must be M×N".into()));
        }
        if delta.len() != n || delta.iter().any(|r| r.len() != n) {
            return Err(PcnError::InvalidConfig("delta must be N×N".into()));
        }
        if eps.len() != n || eps.iter().any(|r| r.len() != n) {
            return Err(PcnError::InvalidConfig("eps must be N×N".into()));
        }
        if omega < 0.0 || !omega.is_finite() {
            return Err(PcnError::InvalidConfig("omega must be ≥ 0".into()));
        }
        let all_finite = zeta
            .iter()
            .chain(delta.iter())
            .chain(eps.iter())
            .flatten()
            .all(|v| v.is_finite() && *v >= 0.0);
        if !all_finite {
            return Err(PcnError::InvalidConfig(
                "costs must be finite and non-negative".into(),
            ));
        }
        Ok(PlacementInstance {
            clients,
            candidates,
            zeta,
            delta,
            eps,
            omega,
        })
    }

    /// Derives an instance from a topology: ζ, δ, ε are per-hop costs over
    /// BFS hop counts in `g` (§V-A). Unreachable pairs get a large finite
    /// penalty (4× graph diameter bound) instead of ∞ so solvers stay
    /// numerically well-behaved.
    pub fn from_graph(
        g: &Graph,
        clients: Vec<NodeId>,
        candidates: Vec<NodeId>,
        params: CostParams,
    ) -> PlacementInstance {
        let n_nodes = g.node_count();
        let unreachable_hops = (4 * n_nodes.max(1)) as f64;
        // BFS from each candidate covers both client→candidate and
        // candidate→candidate hop counts.
        let hops_from: Vec<Vec<u32>> = candidates.iter().map(|&c| bfs_hops(g, c)).collect();
        let hop = |tbl: &Vec<u32>, node: NodeId| -> f64 {
            let h = tbl.get(node.index()).copied().unwrap_or(u32::MAX);
            if h == u32::MAX {
                unreachable_hops
            } else {
                f64::from(h)
            }
        };
        let zeta: Vec<Vec<f64>> = clients
            .iter()
            .map(|&m| {
                hops_from
                    .iter()
                    .map(|tbl| params.zeta_per_hop * hop(tbl, m))
                    .collect()
            })
            .collect();
        let n = candidates.len();
        let mut delta = vec![vec![0.0; n]; n];
        let mut eps = vec![vec![0.0; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    let h = hop(&hops_from[a], self_or(candidates[b]));
                    delta[a][b] = params.delta_per_hop * h;
                    eps[a][b] = params.eps_per_hop * h;
                }
            }
        }
        PlacementInstance {
            clients,
            candidates,
            zeta,
            delta,
            eps,
            omega: params.omega,
        }
    }

    /// Replaces δ with a uniform value (the Lemma 2 supermodular case).
    pub fn with_uniform_delta(mut self, delta: f64) -> PlacementInstance {
        let n = self.candidates.len();
        for a in 0..n {
            for b in 0..n {
                self.delta[a][b] = if a == b { 0.0 } else { delta };
            }
        }
        self
    }

    /// Client node ids (`VCLI`).
    pub fn clients(&self) -> &[NodeId] {
        &self.clients
    }

    /// Candidate node ids (`VSNC`).
    pub fn candidates(&self) -> &[NodeId] {
        &self.candidates
    }

    /// Number of clients M.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Number of candidates N.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// ζ_mn.
    pub fn zeta(&self, m: usize, n: usize) -> f64 {
        self.zeta[m][n]
    }

    /// δ_nl.
    pub fn delta(&self, n: usize, l: usize) -> f64 {
        self.delta[n][l]
    }

    /// ε_nl.
    pub fn eps(&self, n: usize, l: usize) -> f64 {
        self.eps[n][l]
    }

    /// Tradeoff weight ω.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Management cost C_M(y) for an assignment (client → candidate index).
    pub fn management_cost(&self, assignment: &[usize]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .map(|(m, &n)| self.zeta[m][n])
            .sum()
    }

    /// Synchronization cost C_S(x, y) of eq. 4 for a placement set and an
    /// assignment.
    #[allow(clippy::needless_range_loop)] // (a, b) mirror eq. 4's hub pair indices
    pub fn synchronization_cost(&self, placed: &[bool], assignment: &[usize]) -> f64 {
        let n = self.num_candidates();
        // count of clients per candidate (Σ_m y_mn)
        let mut load = vec![0usize; n];
        for &a in assignment {
            load[a] += 1;
        }
        let mut cost = 0.0;
        for a in 0..n {
            if !placed[a] {
                continue;
            }
            for b in 0..n {
                if a != b && placed[b] {
                    cost += self.delta[a][b] * load[a] as f64 + self.eps[a][b];
                }
            }
        }
        cost
    }

    /// Balance cost C_B = C_M + ω·C_S (eq. 5).
    pub fn balance_cost(&self, placed: &[bool], assignment: &[usize]) -> f64 {
        self.management_cost(assignment)
            + self.omega * self.synchronization_cost(placed, assignment)
    }

    /// A finite "infeasible" sentinel larger than any achievable balance
    /// cost, used as f(∅) so the double-greedy stays in finite arithmetic.
    pub fn infeasible_cost(&self) -> f64 {
        let zeta_max: f64 = self.zeta.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        let sync_max: f64 = self
            .delta
            .iter()
            .flatten()
            .chain(self.eps.iter().flatten())
            .sum::<f64>()
            * (self.num_clients() as f64 + 1.0);
        10.0 * (1.0 + zeta_max * self.num_clients() as f64 + self.omega * sync_max)
    }
}

/// Identity helper used to keep `from_graph` readable.
fn self_or(n: NodeId) -> NodeId {
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PlacementInstance {
        // 2 clients, 2 candidates
        PlacementInstance::from_matrices(
            vec![NodeId::new(2), NodeId::new(3)],
            vec![NodeId::new(0), NodeId::new(1)],
            vec![vec![1.0, 4.0], vec![3.0, 2.0]],
            vec![vec![0.0, 0.5], vec![0.5, 0.0]],
            vec![vec![0.0, 0.2], vec![0.2, 0.0]],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn cost_components() {
        let inst = tiny();
        // assign client0→cand0, client1→cand1; both placed
        let placed = vec![true, true];
        let asg = vec![0, 1];
        assert_eq!(inst.management_cost(&asg), 3.0);
        // CS = δ01·load0 + ε01 + δ10·load1 + ε10 = 0.5+0.2+0.5+0.2 = 1.4
        assert!((inst.synchronization_cost(&placed, &asg) - 1.4).abs() < 1e-12);
        assert!((inst.balance_cost(&placed, &asg) - 4.4).abs() < 1e-12);
    }

    #[test]
    fn single_hub_no_sync_cost() {
        let inst = tiny();
        let placed = vec![true, false];
        let asg = vec![0, 0];
        assert_eq!(inst.synchronization_cost(&placed, &asg), 0.0);
        assert_eq!(inst.balance_cost(&placed, &asg), 4.0);
    }

    #[test]
    fn dimension_validation() {
        let bad = PlacementInstance::from_matrices(
            vec![NodeId::new(0)],
            vec![NodeId::new(1)],
            vec![vec![1.0, 2.0]], // wrong width
            vec![vec![0.0]],
            vec![vec![0.0]],
            1.0,
        );
        assert!(bad.is_err());
        let neg = PlacementInstance::from_matrices(
            vec![NodeId::new(0)],
            vec![NodeId::new(1)],
            vec![vec![-1.0]],
            vec![vec![0.0]],
            vec![vec![0.0]],
            1.0,
        );
        assert!(neg.is_err());
    }

    #[test]
    fn from_graph_hop_costs() {
        // path 0-1-2-3; candidates {0,1}, clients {2,3}
        let mut g = pcn_graph::Graph::new(4);
        for i in 0..3 {
            g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
        }
        let inst = PlacementInstance::from_graph(
            &g,
            vec![NodeId::new(2), NodeId::new(3)],
            vec![NodeId::new(0), NodeId::new(1)],
            CostParams::paper(1.0),
        );
        // client 2: hops to cand0 = 2, cand1 = 1
        assert!((inst.zeta(0, 0) - 0.04).abs() < 1e-12);
        assert!((inst.zeta(0, 1) - 0.02).abs() < 1e-12);
        // candidates 0-1 are 1 hop apart
        assert!((inst.delta(0, 1) - 0.01).abs() < 1e-12);
        assert!((inst.eps(1, 0) - 0.05).abs() < 1e-12);
        assert_eq!(inst.delta(0, 0), 0.0);
    }

    #[test]
    fn unreachable_pairs_penalized() {
        let g = pcn_graph::Graph::new(3); // no edges
        let inst = PlacementInstance::from_graph(
            &g,
            vec![NodeId::new(2)],
            vec![NodeId::new(0), NodeId::new(1)],
            CostParams::paper(1.0),
        );
        assert!(inst.zeta(0, 0) > 0.02 * 10.0);
        assert!(inst.delta(0, 1) > 0.0);
    }

    #[test]
    fn uniform_delta_override() {
        let inst = tiny().with_uniform_delta(0.7);
        assert_eq!(inst.delta(0, 1), 0.7);
        assert_eq!(inst.delta(1, 0), 0.7);
        assert_eq!(inst.delta(0, 0), 0.0);
    }

    #[test]
    fn infeasible_cost_dominates() {
        let inst = tiny();
        let placed = vec![true, true];
        for asg in [[0usize, 0], [0, 1], [1, 0], [1, 1]] {
            assert!(inst.infeasible_cost() > inst.balance_cost(&placed, &asg));
        }
    }
}
