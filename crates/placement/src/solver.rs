//! Unified solver front-end.

use pcn_sim::SimRng;
use pcn_types::Result;

use crate::supermodular::{double_greedy_deterministic, double_greedy_randomized};
use crate::{exact, milp_form, PlacementInstance, PlacementPlan};

/// Which algorithm to run on a placement instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementSolver {
    /// Exhaustive subset enumeration (exact; ≤ 24 candidates).
    Exhaustive,
    /// The linearized MILP via branch & bound (exact; small instances,
    /// the paper's "small-scale optimal solution").
    Milp,
    /// Deterministic double greedy (⅓-approximation, the paper's
    /// Algorithm 1 derandomized).
    DoubleGreedyDeterministic,
    /// Randomized double greedy (½-approximation in expectation — the
    /// paper's Algorithm 1 as printed).
    DoubleGreedyRandomized,
    /// Pick automatically: exhaustive when candidates ≤ 16, otherwise the
    /// randomized double greedy ("small-scale" vs "large-scale" in §IV-C).
    Auto,
}

impl PlacementSolver {
    /// Runs the selected algorithm.
    ///
    /// # Errors
    ///
    /// Propagates infeasibility and size-guard errors from the underlying
    /// algorithm.
    pub fn solve(self, inst: &PlacementInstance, rng: &mut SimRng) -> Result<PlacementPlan> {
        match self {
            PlacementSolver::Exhaustive => exact::solve_exhaustive(inst),
            PlacementSolver::Milp => milp_form::solve_milp(inst),
            PlacementSolver::DoubleGreedyDeterministic => {
                let out = double_greedy_deterministic(inst);
                PlacementPlan::from_placement(inst, &ensure_nonempty(inst, out.members))
            }
            PlacementSolver::DoubleGreedyRandomized => {
                let out = double_greedy_randomized(inst, rng);
                PlacementPlan::from_placement(inst, &ensure_nonempty(inst, out.members))
            }
            PlacementSolver::Auto => {
                if inst.num_candidates() <= 16 {
                    exact::solve_exhaustive(inst)
                } else {
                    let out = double_greedy_randomized(inst, rng);
                    PlacementPlan::from_placement(inst, &ensure_nonempty(inst, out.members))
                }
            }
        }
    }
}

/// The double greedy can in principle return the empty set when every
/// marginal says "remove" (possible only under degenerate cost matrices);
/// clients still need a hub, so fall back to the single best candidate.
fn ensure_nonempty(inst: &PlacementInstance, members: Vec<bool>) -> Vec<bool> {
    if members.iter().any(|&b| b) {
        return members;
    }
    let n = inst.num_candidates();
    let best = (0..n)
        .min_by(|&a, &b| {
            let mut ma = vec![false; n];
            ma[a] = true;
            let mut mb = vec![false; n];
            mb[b] = true;
            crate::assignment::balance_cost_for(inst, &ma)
                .total_cmp(&crate::assignment::balance_cost_for(inst, &mb))
        })
        .expect("at least one candidate");
    let mut out = vec![false; n];
    out[best] = true;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostParams;
    use pcn_types::NodeId;

    fn inst(cands: usize) -> PlacementInstance {
        let g = pcn_graph::ring(cands + 8);
        PlacementInstance::from_graph(
            &g,
            (cands..cands + 8).map(NodeId::from_index).collect(),
            (0..cands).map(NodeId::from_index).collect(),
            CostParams::paper(0.4),
        )
    }

    #[test]
    fn all_solvers_produce_valid_plans() {
        let inst = inst(4);
        let mut rng = SimRng::seed(5);
        for solver in [
            PlacementSolver::Exhaustive,
            PlacementSolver::Milp,
            PlacementSolver::DoubleGreedyDeterministic,
            PlacementSolver::DoubleGreedyRandomized,
            PlacementSolver::Auto,
        ] {
            let plan = solver.solve(&inst, &mut rng).unwrap();
            assert!(!plan.hubs().is_empty(), "{solver:?}");
            assert!(plan.balance_cost().is_finite());
        }
    }

    #[test]
    fn auto_switches_to_greedy_for_large_sets() {
        let big = inst(20);
        let mut rng = SimRng::seed(6);
        // Exhaustive would take 2^20 evaluations but still works; Auto must
        // not pick MILP (guarded) and must return something sane quickly.
        let plan = PlacementSolver::Auto.solve(&big, &mut rng).unwrap();
        assert!(!plan.hubs().is_empty());
    }

    #[test]
    fn exact_beats_or_ties_greedy() {
        let inst = inst(6);
        let mut rng = SimRng::seed(7);
        let exact = PlacementSolver::Exhaustive.solve(&inst, &mut rng).unwrap();
        let greedy = PlacementSolver::DoubleGreedyDeterministic
            .solve(&inst, &mut rng)
            .unwrap();
        assert!(exact.balance_cost() <= greedy.balance_cost() + 1e-9);
    }
}
