//! Lemma 1: the optimal client assignment for a fixed placement.
//!
//! Given placement `x`, client `m` goes to the placed candidate minimizing
//! `ω·Σ_{l placed} δ_n'l + ζ_mn'` (eq. 11). The candidate-dependent first
//! term is shared by all clients, so the assignment is computed in
//! O(N² + M·N).

use crate::PlacementInstance;

/// Computes the optimal assignment (client index → candidate index) for
/// `placed`. Ties break towards the lower candidate index, making the
/// result deterministic.
///
/// Returns `None` when no candidate is placed.
///
/// # Examples
///
/// ```
/// use pcn_placement::{assignment::optimal_assignment, PlacementInstance};
/// use pcn_types::NodeId;
///
/// let inst = PlacementInstance::from_matrices(
///     vec![NodeId::new(9)],
///     vec![NodeId::new(0), NodeId::new(1)],
///     vec![vec![5.0, 1.0]],
///     vec![vec![0.0, 0.0], vec![0.0, 0.0]],
///     vec![vec![0.0, 0.0], vec![0.0, 0.0]],
///     1.0,
/// ).unwrap();
/// // Both placed: the client prefers candidate 1 (ζ = 1 < 5).
/// assert_eq!(optimal_assignment(&inst, &[true, true]), Some(vec![1]));
/// ```
pub fn optimal_assignment(inst: &PlacementInstance, placed: &[bool]) -> Option<Vec<usize>> {
    assert_eq!(
        placed.len(),
        inst.num_candidates(),
        "placement vector has wrong length"
    );
    let n = inst.num_candidates();
    let placed_idx: Vec<usize> = (0..n).filter(|&i| placed[i]).collect();
    if placed_idx.is_empty() {
        return None;
    }
    // Shared per-candidate term: ω Σ_{l placed} δ_nl.
    let sync_term: Vec<f64> = placed_idx
        .iter()
        .map(|&cand| {
            inst.omega()
                * placed_idx
                    .iter()
                    .filter(|&&l| l != cand)
                    .map(|&l| inst.delta(cand, l))
                    .sum::<f64>()
        })
        .collect();
    let assignment = (0..inst.num_clients())
        .map(|m| {
            let mut best = placed_idx[0];
            let mut best_cost = sync_term[0] + inst.zeta(m, placed_idx[0]);
            for (k, &cand) in placed_idx.iter().enumerate().skip(1) {
                let c = sync_term[k] + inst.zeta(m, cand);
                if c < best_cost {
                    best_cost = c;
                    best = cand;
                }
            }
            best
        })
        .collect();
    Some(assignment)
}

/// Balance cost of the *optimal* assignment for `placed` — the set
/// function f(X) of eq. 14. Returns the instance's finite infeasibility
/// sentinel when nothing is placed.
pub fn balance_cost_for(inst: &PlacementInstance, placed: &[bool]) -> f64 {
    match optimal_assignment(inst, placed) {
        Some(asg) => inst.balance_cost(placed, &asg),
        None => inst.infeasible_cost(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::NodeId;

    fn instance(m: usize, n: usize, seed: u64) -> PlacementInstance {
        // Deterministic pseudo-random costs.
        let mut state = seed.wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 100.0
        };
        let zeta = (0..m).map(|_| (0..n).map(|_| next()).collect()).collect();
        let mut delta = vec![vec![0.0; n]; n];
        let mut eps = vec![vec![0.0; n]; n];
        for a in 0..n {
            for b in (a + 1)..n {
                let d = next();
                let e = next();
                delta[a][b] = d;
                delta[b][a] = d;
                eps[a][b] = e;
                eps[b][a] = e;
            }
        }
        PlacementInstance::from_matrices(
            (100..100 + m as u32).map(NodeId::new).collect(),
            (0..n as u32).map(NodeId::new).collect(),
            zeta,
            delta,
            eps,
            0.7,
        )
        .unwrap()
    }

    /// Brute force over all N^M assignments restricted to placed candidates.
    fn brute_best(inst: &PlacementInstance, placed: &[bool]) -> f64 {
        let n = inst.num_candidates();
        let m = inst.num_clients();
        let placed_idx: Vec<usize> = (0..n).filter(|&i| placed[i]).collect();
        let mut best = f64::INFINITY;
        let k = placed_idx.len();
        let total = k.pow(m as u32);
        for code in 0..total {
            let mut c = code;
            let asg: Vec<usize> = (0..m)
                .map(|_| {
                    let v = placed_idx[c % k];
                    c /= k;
                    v
                })
                .collect();
            best = best.min(inst.balance_cost(placed, &asg));
        }
        best
    }

    #[test]
    fn lemma1_matches_bruteforce() {
        for seed in 0..15 {
            let inst = instance(4, 4, seed);
            for mask in 1u32..(1 << 4) {
                let placed: Vec<bool> = (0..4).map(|i| mask & (1 << i) != 0).collect();
                let fast = balance_cost_for(&inst, &placed);
                let brute = brute_best(&inst, &placed);
                assert!(
                    (fast - brute).abs() < 1e-9,
                    "seed {seed} mask {mask:b}: {fast} vs {brute}"
                );
            }
        }
    }

    #[test]
    fn empty_placement_is_sentinel() {
        let inst = instance(3, 3, 1);
        assert_eq!(optimal_assignment(&inst, &[false, false, false]), None);
        assert_eq!(
            balance_cost_for(&inst, &[false, false, false]),
            inst.infeasible_cost()
        );
    }

    #[test]
    fn all_clients_assigned_to_placed() {
        let inst = instance(6, 5, 2);
        let placed = vec![false, true, false, true, false];
        let asg = optimal_assignment(&inst, &placed).unwrap();
        assert_eq!(asg.len(), 6);
        for &a in &asg {
            assert!(placed[a], "client assigned to unplaced candidate {a}");
        }
    }

    #[test]
    fn deterministic_tie_break() {
        // Identical costs: expect the lowest candidate index.
        let inst = PlacementInstance::from_matrices(
            vec![NodeId::new(5)],
            vec![NodeId::new(0), NodeId::new(1)],
            vec![vec![2.0, 2.0]],
            vec![vec![0.0, 0.0], vec![0.0, 0.0]],
            vec![vec![0.0, 0.0], vec![0.0, 0.0]],
            1.0,
        )
        .unwrap();
        assert_eq!(optimal_assignment(&inst, &[true, true]), Some(vec![0]));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_placement_length_panics() {
        let inst = instance(2, 3, 3);
        let _ = optimal_assignment(&inst, &[true]);
    }
}
