//! Exhaustive exact solver: ground truth for small candidate sets.

use pcn_types::{PcnError, Result};

use crate::assignment::balance_cost_for;
use crate::{PlacementInstance, PlacementPlan};

/// Largest candidate count accepted by the exhaustive solver (2^24 subsets
/// is already ~17M cost evaluations).
pub const MAX_EXHAUSTIVE_CANDIDATES: usize = 24;

/// Enumerates every non-empty placement subset and returns the optimum.
///
/// # Errors
///
/// [`PcnError::InvalidConfig`] when the candidate set exceeds
/// [`MAX_EXHAUSTIVE_CANDIDATES`].
///
/// # Examples
///
/// ```
/// use pcn_placement::{exact::solve_exhaustive, CostParams, PlacementInstance};
/// use pcn_types::NodeId;
///
/// let g = pcn_graph::ring(8);
/// let inst = PlacementInstance::from_graph(
///     &g,
///     (3..8).map(NodeId::from_index).collect(),
///     (0..3).map(NodeId::from_index).collect(),
///     CostParams::paper(0.2),
/// );
/// let plan = solve_exhaustive(&inst).unwrap();
/// assert!(plan.balance_cost() > 0.0);
/// ```
pub fn solve_exhaustive(inst: &PlacementInstance) -> Result<PlacementPlan> {
    let n = inst.num_candidates();
    if n > MAX_EXHAUSTIVE_CANDIDATES {
        return Err(PcnError::InvalidConfig(format!(
            "{n} candidates exceed the exhaustive solver limit of {MAX_EXHAUSTIVE_CANDIDATES}"
        )));
    }
    let mut best_cost = f64::INFINITY;
    let mut best_mask = 0u32;
    for mask in 1u32..(1u32 << n) {
        let placed: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let cost = balance_cost_for(inst, &placed);
        if cost < best_cost {
            best_cost = cost;
            best_mask = mask;
        }
    }
    let placed: Vec<bool> = (0..n).map(|i| best_mask & (1 << i) != 0).collect();
    PlacementPlan::from_placement(inst, &placed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostParams;
    use pcn_types::NodeId;

    #[test]
    fn high_omega_prefers_fewer_hubs() {
        // With a huge ω, sync costs dominate: one hub is optimal.
        let g = pcn_graph::ring(10);
        let inst = PlacementInstance::from_graph(
            &g,
            (4..10).map(NodeId::from_index).collect(),
            (0..4).map(NodeId::from_index).collect(),
            CostParams::paper(1000.0),
        );
        let plan = solve_exhaustive(&inst).unwrap();
        assert_eq!(plan.hubs().len(), 1);
    }

    #[test]
    fn zero_omega_achieves_minimum_management_cost() {
        // ω = 0: sync is free, so the optimum gives every client its
        // globally closest candidate (extra hubs are only weakly better,
        // so hub count may be below the full candidate set).
        let g = pcn_graph::ring(10);
        let inst = PlacementInstance::from_graph(
            &g,
            (4..10).map(NodeId::from_index).collect(),
            (0..4).map(NodeId::from_index).collect(),
            CostParams::paper(0.0),
        );
        let plan = solve_exhaustive(&inst).unwrap();
        let min_management: f64 = (0..inst.num_clients())
            .map(|m| {
                (0..inst.num_candidates())
                    .map(|n| inst.zeta(m, n))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        assert!((plan.balance_cost() - min_management).abs() < 1e-9);
        assert!((plan.management_cost() - min_management).abs() < 1e-9);
    }

    #[test]
    fn too_many_candidates_rejected() {
        let g = pcn_graph::ring(30);
        let inst = PlacementInstance::from_graph(
            &g,
            (25..30).map(NodeId::from_index).collect(),
            (0..25).map(NodeId::from_index).collect(),
            CostParams::paper(1.0),
        );
        assert!(solve_exhaustive(&inst).is_err());
    }

    #[test]
    fn plan_is_internally_consistent() {
        let g = pcn_graph::ring(9);
        let inst = PlacementInstance::from_graph(
            &g,
            (3..9).map(NodeId::from_index).collect(),
            (0..3).map(NodeId::from_index).collect(),
            CostParams::paper(0.5),
        );
        let plan = solve_exhaustive(&inst).unwrap();
        // Cost decomposition must match CB = CM + ω CS.
        let recomputed = plan.management_cost() + inst.omega() * plan.synchronization_cost();
        assert!((plan.balance_cost() - recomputed).abs() < 1e-9);
    }
}
