//! The small-scale optimal solution: MILP linearization (§IV-C).
//!
//! Standard McCormick linearization of the cubic/quadratic balance cost:
//! auxiliary vectors ϑ (eq. 6) and φ (eq. 7) with the constraint families
//! (8) and (9) replace the products `x_n·x_l` and `x_n·x_l·y_mn`, giving
//! the linear objective `C_M(y) + ω·Ĉ_S(ϑ, φ)` (eq. 10).
//!
//! Only `x` needs integrality: for binary `x`, constraint family (8) pins
//! ϑ to the product and (9) pins φ, and the remaining LP over `y` is a
//! transportation polytope whose vertices are integral — so branch & bound
//! over `x` alone returns the true optimum. The final plan is extracted
//! with the Lemma-1 assignment (provably optimal for the chosen `x`).

use milp::{Bounds, Cmp, Model, Sense, VarId};
use pcn_types::{PcnError, Result};

use crate::{PlacementInstance, PlacementPlan};

/// Guard on candidate count: the dense simplex underneath scales as
/// O((N²M)²) per pivot-sequence; beyond this, use the double greedy.
pub const MAX_MILP_CANDIDATES: usize = 8;
/// Guard on client count for the same reason.
pub const MAX_MILP_CLIENTS: usize = 24;

/// Builds and solves the linearized placement MILP.
///
/// # Errors
///
/// [`PcnError::InvalidConfig`] if the instance exceeds the size guards;
/// solver errors are propagated.
///
/// # Examples
///
/// ```
/// use pcn_placement::{exact::solve_exhaustive, milp_form::solve_milp};
/// use pcn_placement::{CostParams, PlacementInstance};
/// use pcn_types::NodeId;
///
/// let g = pcn_graph::ring(8);
/// let inst = PlacementInstance::from_graph(
///     &g,
///     (3..8).map(NodeId::from_index).collect(),
///     (0..3).map(NodeId::from_index).collect(),
///     CostParams::paper(0.3),
/// );
/// let milp = solve_milp(&inst).unwrap();
/// let exact = solve_exhaustive(&inst).unwrap();
/// assert!((milp.balance_cost() - exact.balance_cost()).abs() < 1e-6);
/// ```
#[allow(clippy::needless_range_loop)] // variable grids mirror eqs. 6-10's index notation
pub fn solve_milp(inst: &PlacementInstance) -> Result<PlacementPlan> {
    let n = inst.num_candidates();
    let m = inst.num_clients();
    if n > MAX_MILP_CANDIDATES || m > MAX_MILP_CLIENTS {
        return Err(PcnError::InvalidConfig(format!(
            "instance {n}×{m} exceeds MILP guards ({MAX_MILP_CANDIDATES} candidates, \
             {MAX_MILP_CLIENTS} clients); use the supermodular approximation"
        )));
    }
    let omega = inst.omega();
    let mut model = Model::new(Sense::Minimize);

    // x_n ∈ {0,1}
    let x: Vec<VarId> = (0..n)
        .map(|i| model.add_var(format!("x{i}"), Bounds::binary(), 0.0))
        .collect();
    // y_mn ∈ [0,1] with objective ζ_mn
    let y: Vec<Vec<VarId>> = (0..m)
        .map(|mi| {
            (0..n)
                .map(|ni| {
                    model.add_var(
                        format!("y{mi}_{ni}"),
                        Bounds::range(0.0, 1.0),
                        inst.zeta(mi, ni),
                    )
                })
                .collect()
        })
        .collect();
    // ϑ_nl for ordered pairs n≠l, objective ω·ε_nl
    let mut theta = vec![vec![None; n]; n];
    for a in 0..n {
        for b in 0..n {
            if a != b {
                theta[a][b] = Some(model.add_var(
                    format!("th{a}_{b}"),
                    Bounds::range(0.0, 1.0),
                    omega * inst.eps(a, b),
                ));
            }
        }
    }
    // φ_nlm, objective ω·δ_nl
    let mut phi = vec![vec![vec![None; m]; n]; n];
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            for mi in 0..m {
                phi[a][b][mi] = Some(model.add_var(
                    format!("ph{a}_{b}_{mi}"),
                    Bounds::range(0.0, 1.0),
                    omega * inst.delta(a, b),
                ));
            }
        }
    }

    // Σ_n y_mn = 1
    for mi in 0..m {
        model.add_constraint((0..n).map(|ni| (y[mi][ni], 1.0)).collect(), Cmp::Eq, 1.0);
    }
    // y_mn ≤ x_n
    for mi in 0..m {
        for ni in 0..n {
            model.add_constraint(vec![(y[mi][ni], 1.0), (x[ni], -1.0)], Cmp::Le, 0.0);
        }
    }
    // Constraint family (8): ϑ_nl ≤ x_n, ϑ_nl ≤ x_l, ϑ_nl ≥ x_n + x_l − 1
    for a in 0..n {
        for b in 0..n {
            let Some(th) = theta[a][b] else { continue };
            model.add_constraint(vec![(th, 1.0), (x[a], -1.0)], Cmp::Le, 0.0);
            model.add_constraint(vec![(th, 1.0), (x[b], -1.0)], Cmp::Le, 0.0);
            model.add_constraint(vec![(th, 1.0), (x[a], -1.0), (x[b], -1.0)], Cmp::Ge, -1.0);
        }
    }
    // Constraint family (9): φ ≤ ϑ, φ ≤ y_mn, φ ≥ ϑ + y_mn − 1
    for a in 0..n {
        for b in 0..n {
            let Some(th) = theta[a][b] else { continue };
            for mi in 0..m {
                let ph = phi[a][b][mi].expect("phi exists when theta does");
                model.add_constraint(vec![(ph, 1.0), (th, -1.0)], Cmp::Le, 0.0);
                model.add_constraint(vec![(ph, 1.0), (y[mi][a], -1.0)], Cmp::Le, 0.0);
                model.add_constraint(vec![(ph, 1.0), (th, -1.0), (y[mi][a], -1.0)], Cmp::Ge, -1.0);
            }
        }
    }
    // At least one hub must be placed (clients need an assignment).
    model.add_constraint((0..n).map(|ni| (x[ni], 1.0)).collect(), Cmp::Ge, 1.0);

    let sol = model.solve()?;
    let placed: Vec<bool> = (0..n).map(|ni| sol.value(x[ni]) > 0.5).collect();
    let plan = PlacementPlan::from_placement(inst, &placed)?;
    debug_assert!(
        (plan.balance_cost() - sol.objective()).abs() < 1e-4,
        "MILP objective {} disagrees with plan cost {}",
        sol.objective(),
        plan.balance_cost()
    );
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exhaustive;
    use crate::CostParams;
    use pcn_sim::SimRng;
    use pcn_types::NodeId;

    fn random_instance(rng: &mut SimRng, n: usize, m: usize, omega: f64) -> PlacementInstance {
        let zeta = (0..m)
            .map(|_| (0..n).map(|_| rng.f64() * 2.0).collect())
            .collect();
        let mut delta = vec![vec![0.0; n]; n];
        let mut eps = vec![vec![0.0; n]; n];
        for a in 0..n {
            for b in (a + 1)..n {
                let d = rng.f64();
                let e = rng.f64() * 0.5;
                delta[a][b] = d;
                delta[b][a] = d;
                eps[a][b] = e;
                eps[b][a] = e;
            }
        }
        PlacementInstance::from_matrices(
            (100..100 + m as u32).map(NodeId::new).collect(),
            (0..n as u32).map(NodeId::new).collect(),
            zeta,
            delta,
            eps,
            omega,
        )
        .unwrap()
    }

    #[test]
    fn milp_matches_exhaustive_on_random_instances() {
        let mut rng = SimRng::seed(17);
        for round in 0..6 {
            let omega = [0.0, 0.1, 0.5, 1.0, 2.0, 5.0][round];
            let inst = random_instance(&mut rng, 3, 5, omega);
            let milp = solve_milp(&inst).unwrap();
            let exact = solve_exhaustive(&inst).unwrap();
            assert!(
                (milp.balance_cost() - exact.balance_cost()).abs() < 1e-6,
                "round {round}: milp {} vs exact {}",
                milp.balance_cost(),
                exact.balance_cost()
            );
        }
    }

    #[test]
    fn milp_on_graph_instance() {
        let g = pcn_graph::ring(10);
        let inst = PlacementInstance::from_graph(
            &g,
            (4..10).map(NodeId::from_index).collect(),
            (0..4).map(NodeId::from_index).collect(),
            CostParams::paper(0.5),
        );
        let milp = solve_milp(&inst).unwrap();
        let exact = solve_exhaustive(&inst).unwrap();
        assert!((milp.balance_cost() - exact.balance_cost()).abs() < 1e-6);
    }

    #[test]
    fn size_guard_enforced() {
        let mut rng = SimRng::seed(1);
        let inst = random_instance(&mut rng, MAX_MILP_CANDIDATES + 1, 3, 1.0);
        assert!(matches!(solve_milp(&inst), Err(PcnError::InvalidConfig(_))));
    }
}
