//! PCH (payment channel hub) placement — the paper's first contribution.
//!
//! Given a PCN topology, a set of candidate smooth nodes `VSNC` and the
//! client set `VCLI`, choose which candidates to *place* as actual hubs
//! (vector `x`, eq. 1) and how to *assign* clients to them (matrix `y`,
//! eq. 2) so as to minimize the balance cost (eq. 5)
//!
//! ```text
//! C_B(x, y) = C_M(y) + ω·C_S(x, y)
//! C_M(y)   = Σ_m Σ_n ζ_mn y_mn                      (management, eq. 3)
//! C_S(x,y) = Σ_n Σ_l x_n x_l (δ_nl Σ_m y_mn + ε_nl) (synchronization, eq. 4)
//! ```
//!
//! The problem is NP-hard; the crate implements every solution path the
//! paper describes plus a ground-truth oracle:
//!
//! * [`assignment::optimal_assignment`] — Lemma 1: the closed-form optimal
//!   `y` for a fixed placement `x`.
//! * [`exact::solve_exhaustive`] — exhaustive subset enumeration (ground
//!   truth for small candidate sets).
//! * [`milp_form::solve_milp`] — the standard-linearization MILP (eqs.
//!   6–10) solved by this workspace's own branch-and-bound solver
//!   (§IV-C "small-scale optimal solution").
//! * [`supermodular`] — the large-scale ½-approximation: the balance cost
//!   as a set function `f(X)` (eq. 14), its supermodularity check
//!   (Definition 2 / Lemma 2), and the Buchbinder et al. double-greedy
//!   (Algorithm 1) in deterministic and randomized variants.
//!
//! # Examples
//!
//! ```
//! use pcn_placement::{CostParams, PlacementInstance, PlacementSolver};
//! use pcn_sim::SimRng;
//! use rand::SeedableRng;
//!
//! // A small ring topology: 12 nodes, first 4 are hub candidates.
//! let g = pcn_graph::ring(12);
//! let candidates: Vec<_> = (0..4).map(pcn_types::NodeId::from_index).collect();
//! let clients: Vec<_> = (4..12).map(pcn_types::NodeId::from_index).collect();
//! let inst = PlacementInstance::from_graph(&g, clients, candidates, CostParams::paper(0.5));
//!
//! let plan = PlacementSolver::Exhaustive.solve(&inst, &mut SimRng::seed(1)).unwrap();
//! assert!(!plan.hubs().is_empty());
//! assert!(plan.balance_cost() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod exact;
mod instance;
pub mod milp_form;
mod plan;
mod solver;
pub mod supermodular;

pub use instance::{CostParams, PlacementInstance};
pub use plan::PlacementPlan;
pub use solver::PlacementSolver;
