//! Placement plans: the solver output consumed by the system builder.

use pcn_types::{NodeId, PcnError, Result};

use crate::assignment::optimal_assignment;
use crate::PlacementInstance;

/// A concrete placement decision: which candidates become hubs and which
/// hub each client is assigned to, with the cost breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct PlacementPlan {
    /// Indices into the instance's candidate list.
    hub_indices: Vec<usize>,
    /// Hub node ids (parallel to `hub_indices`).
    hub_nodes: Vec<NodeId>,
    /// Per-client candidate index.
    assignment: Vec<usize>,
    management: f64,
    synchronization: f64,
    balance: f64,
}

impl PlacementPlan {
    /// Builds a plan from a placement vector using the Lemma-1 assignment.
    ///
    /// # Errors
    ///
    /// [`PcnError::Infeasible`] when `placed` selects no candidate.
    pub fn from_placement(inst: &PlacementInstance, placed: &[bool]) -> Result<PlacementPlan> {
        let assignment = optimal_assignment(inst, placed)
            .ok_or_else(|| PcnError::Infeasible("no candidate placed".into()))?;
        let hub_indices: Vec<usize> = (0..inst.num_candidates()).filter(|&i| placed[i]).collect();
        let hub_nodes = hub_indices.iter().map(|&i| inst.candidates()[i]).collect();
        let management = inst.management_cost(&assignment);
        let synchronization = inst.synchronization_cost(placed, &assignment);
        let balance = management + inst.omega() * synchronization;
        Ok(PlacementPlan {
            hub_indices,
            hub_nodes,
            assignment,
            management,
            synchronization,
            balance,
        })
    }

    /// Candidate indices chosen as hubs.
    pub fn hub_indices(&self) -> &[usize] {
        &self.hub_indices
    }

    /// Hub node ids in the PCN graph.
    pub fn hubs(&self) -> &[NodeId] {
        &self.hub_nodes
    }

    /// Per-client assignment (candidate *index*, parallel to the
    /// instance's client list).
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The hub node a given client (by position in the instance's client
    /// list) is assigned to.
    pub fn hub_of_client(&self, inst: &PlacementInstance, client_pos: usize) -> NodeId {
        inst.candidates()[self.assignment[client_pos]]
    }

    /// Management cost C_M.
    pub fn management_cost(&self) -> f64 {
        self.management
    }

    /// Synchronization cost C_S.
    pub fn synchronization_cost(&self) -> f64 {
        self.synchronization
    }

    /// Balance cost C_B = C_M + ω·C_S.
    pub fn balance_cost(&self) -> f64 {
        self.balance
    }

    /// Number of placed hubs.
    pub fn num_hubs(&self) -> usize {
        self.hub_indices.len()
    }
}

impl core::fmt::Display for PlacementPlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} hubs, C_M={:.3} C_S={:.3} C_B={:.3}",
            self.num_hubs(),
            self.management,
            self.synchronization,
            self.balance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostParams;

    fn inst() -> PlacementInstance {
        let g = pcn_graph::ring(8);
        PlacementInstance::from_graph(
            &g,
            (3..8).map(NodeId::from_index).collect(),
            (0..3).map(NodeId::from_index).collect(),
            CostParams::paper(0.4),
        )
    }

    #[test]
    fn from_placement_builds_consistent_plan() {
        let inst = inst();
        let plan = PlacementPlan::from_placement(&inst, &[true, false, true]).unwrap();
        assert_eq!(plan.num_hubs(), 2);
        assert_eq!(plan.hub_indices(), &[0, 2]);
        assert_eq!(plan.hubs(), &[NodeId::new(0), NodeId::new(2)]);
        assert_eq!(plan.assignment().len(), 5);
        for &a in plan.assignment() {
            assert!(a == 0 || a == 2);
        }
        let recomputed = plan.management_cost() + inst.omega() * plan.synchronization_cost();
        assert!((plan.balance_cost() - recomputed).abs() < 1e-12);
    }

    #[test]
    fn empty_placement_fails() {
        let inst = inst();
        assert!(PlacementPlan::from_placement(&inst, &[false, false, false]).is_err());
    }

    #[test]
    fn hub_of_client_resolves_node_ids() {
        let inst = inst();
        let plan = PlacementPlan::from_placement(&inst, &[false, true, false]).unwrap();
        for pos in 0..inst.num_clients() {
            assert_eq!(plan.hub_of_client(&inst, pos), NodeId::new(1));
        }
    }

    #[test]
    fn display_summary() {
        let inst = inst();
        let plan = PlacementPlan::from_placement(&inst, &[true, true, true]).unwrap();
        let s = plan.to_string();
        assert!(s.starts_with("3 hubs"));
        assert!(s.contains("C_B="));
    }
}
