//! Large-scale approximation: supermodular minimization by double greedy.
//!
//! §IV-C: the balance cost as a set function `f(X) = C_B(x_X, y(x_X))`
//! (eq. 14) is supermodular for uniform δ (Lemma 2, proved in \[18\]).
//! Minimizing a supermodular `f` equals maximizing the submodular
//! `f̂(X) = f_ub − f(X)`; the Buchbinder–Feldman–Naor–Schwartz double
//! greedy (the paper's Algorithm 1) achieves a ½-approximation in
//! expectation (randomized) or ⅓ deterministically, in a single pass over
//! the candidates.

use pcn_sim::SimRng;

use crate::assignment::balance_cost_for;
use crate::PlacementInstance;

/// Evaluates the set function f(X) of eq. 14 for a candidate subset given
/// as a membership mask.
pub fn f_of(inst: &PlacementInstance, members: &[bool]) -> f64 {
    balance_cost_for(inst, members)
}

/// An upper bound `f_ub ≥ max_X f(X)`, used to build the submodular
/// mirror `f̂ = f_ub − f`.
pub fn f_upper_bound(inst: &PlacementInstance) -> f64 {
    inst.infeasible_cost()
}

/// Checks Definition 2 on sampled chains: for random `A ⊆ B` and
/// `i ∉ B`, `f(A∪i) − f(A) ≤ f(B∪i) − f(B)`. Returns the number of
/// violations over `samples` trials (0 for genuinely supermodular
/// instances, e.g. uniform δ — Lemma 2).
pub fn count_supermodularity_violations(
    inst: &PlacementInstance,
    samples: usize,
    rng: &mut SimRng,
) -> usize {
    let n = inst.num_candidates();
    if n < 2 {
        return 0;
    }
    let mut violations = 0;
    for _ in 0..samples {
        // Sample B, then A ⊆ B, then i outside B.
        let mut b = vec![false; n];
        for bit in b.iter_mut() {
            *bit = rng.chance(0.5);
        }
        let outside: Vec<usize> = (0..n).filter(|&i| !b[i]).collect();
        let Some(&i) = rng.pick(&outside) else {
            continue;
        };
        let mut a = b.clone();
        for bit in a.iter_mut() {
            if *bit {
                *bit = rng.chance(0.6);
            }
        }
        let fa = f_of(inst, &a);
        let fb = f_of(inst, &b);
        let mut ai = a.clone();
        ai[i] = true;
        let mut bi = b.clone();
        bi[i] = true;
        let lhs = f_of(inst, &ai) - fa;
        let rhs = f_of(inst, &bi) - fb;
        if lhs > rhs + 1e-9 {
            violations += 1;
        }
    }
    violations
}

/// Result of a double-greedy run.
#[derive(Clone, Debug, PartialEq)]
pub struct DoubleGreedyOutcome {
    /// Final membership mask (X_z = Y_z).
    pub members: Vec<bool>,
    /// f(X_z) — the achieved balance cost.
    pub cost: f64,
}

/// Algorithm 1, deterministic variant: at step i, add `u_i` to X if the
/// add-gain `a_i` is at least the remove-gain `b_i`, else remove it from Y.
/// Guarantees f̂(result) ≥ ⅓·f̂(opt).
pub fn double_greedy_deterministic(inst: &PlacementInstance) -> DoubleGreedyOutcome {
    double_greedy_impl(inst, |a, b, _| a >= b, &mut SimRng::seed(0))
}

/// Algorithm 1 as printed (randomized): add with probability
/// `a'/(a'+b')` (and 1 when both are zero — line 10). Guarantees
/// E[f̂] ≥ ½·f̂(opt).
pub fn double_greedy_randomized(inst: &PlacementInstance, rng: &mut SimRng) -> DoubleGreedyOutcome {
    double_greedy_impl(
        inst,
        |a, b, rng| {
            if a == 0.0 && b == 0.0 {
                true // line 10: a'/(a'+b') defined as 1
            } else {
                rng.chance(a / (a + b))
            }
        },
        rng,
    )
}

fn double_greedy_impl<F>(
    inst: &PlacementInstance,
    mut choose_add: F,
    rng: &mut SimRng,
) -> DoubleGreedyOutcome
where
    F: FnMut(f64, f64, &mut SimRng) -> bool,
{
    let n = inst.num_candidates();
    // X starts empty, Y starts full (S); maintain f̂ via f evaluations.
    let mut x = vec![false; n];
    let mut y = vec![true; n];
    let mut f_x = f_of(inst, &x);
    let mut f_y = f_of(inst, &y);
    for u in 0..n {
        // a_i = f̂(X∪u) − f̂(X) = f(X) − f(X∪u)
        let mut xu = x.clone();
        xu[u] = true;
        let f_xu = f_of(inst, &xu);
        let a = f_x - f_xu;
        // b_i = f̂(Y\u) − f̂(Y) = f(Y) − f(Y\u)
        let mut yu = y.clone();
        yu[u] = false;
        let f_yu = f_of(inst, &yu);
        let b = f_y - f_yu;
        let a_pos = a.max(0.0);
        let b_pos = b.max(0.0);
        if choose_add(a_pos, b_pos, rng) {
            x[u] = true;
            f_x = f_xu;
        } else {
            y[u] = false;
            f_y = f_yu;
        }
    }
    debug_assert_eq!(x, y, "double greedy solutions must coincide");
    DoubleGreedyOutcome {
        cost: f_x,
        members: x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exhaustive;
    use crate::{CostParams, PlacementInstance};
    use pcn_types::NodeId;

    fn ring_instance(nodes: usize, cands: usize, omega: f64) -> PlacementInstance {
        let g = pcn_graph::ring(nodes);
        PlacementInstance::from_graph(
            &g,
            (cands..nodes).map(NodeId::from_index).collect(),
            (0..cands).map(NodeId::from_index).collect(),
            CostParams::paper(omega),
        )
    }

    #[test]
    fn uniform_delta_is_supermodular() {
        let inst = ring_instance(14, 6, 0.8).with_uniform_delta(0.05);
        let mut rng = SimRng::seed(3);
        assert_eq!(count_supermodularity_violations(&inst, 300, &mut rng), 0);
    }

    #[test]
    fn deterministic_greedy_hits_its_bound() {
        for omega in [0.0, 0.05, 0.3, 1.0, 5.0] {
            let inst = ring_instance(16, 8, omega).with_uniform_delta(0.02);
            let opt = solve_exhaustive(&inst).unwrap().balance_cost();
            let got = double_greedy_deterministic(&inst).cost;
            let fub = f_upper_bound(&inst);
            // f̂ guarantee: fub − got ≥ (fub − opt)/3.
            assert!(
                fub - got >= (fub - opt) / 3.0 - 1e-9,
                "omega {omega}: got {got}, opt {opt}, fub {fub}"
            );
            // And in absolute terms the approximation should not be absurd.
            assert!(got <= inst.infeasible_cost());
        }
    }

    #[test]
    fn randomized_greedy_usually_matches_deterministic_quality() {
        let inst = ring_instance(16, 8, 0.4).with_uniform_delta(0.02);
        let opt = solve_exhaustive(&inst).unwrap().balance_cost();
        let fub = f_upper_bound(&inst);
        let mut total_fhat = 0.0;
        let trials = 20;
        for seed in 0..trials {
            let mut rng = SimRng::seed(seed);
            let got = double_greedy_randomized(&inst, &mut rng);
            assert_eq!(
                got.members.iter().filter(|&&b| b).count() > 0,
                got.cost < inst.infeasible_cost(),
                "nonempty ⇔ feasible cost"
            );
            total_fhat += fub - got.cost;
        }
        let mean_fhat = total_fhat / trials as f64;
        // Expectation guarantee is ½·f̂(opt); allow slack for sampling.
        assert!(
            mean_fhat >= 0.45 * (fub - opt),
            "mean f̂ {mean_fhat} vs opt f̂ {}",
            fub - opt
        );
    }

    #[test]
    fn greedy_matches_optimum_on_easy_instances() {
        // ω = 0 means "place everything" — greedy must find exactly that.
        let inst = ring_instance(12, 5, 0.0);
        let out = double_greedy_deterministic(&inst);
        assert_eq!(out.members, vec![true; 5]);
        let opt = solve_exhaustive(&inst).unwrap();
        assert!((out.cost - opt.balance_cost()).abs() < 1e-9);
    }

    #[test]
    fn randomized_deterministic_same_when_forced() {
        // With a huge ω, marginals are decisive; both variants agree.
        let inst = ring_instance(12, 5, 100.0).with_uniform_delta(0.5);
        let det = double_greedy_deterministic(&inst);
        let mut rng = SimRng::seed(7);
        let rnd = double_greedy_randomized(&inst, &mut rng);
        assert_eq!(det.members.iter().filter(|&&b| b).count(), 1);
        assert_eq!(rnd.members.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn f_of_empty_is_upper_bound() {
        let inst = ring_instance(10, 4, 0.3);
        assert_eq!(f_of(&inst, &[false; 4]), f_upper_bound(&inst));
    }
}
