//! Hybrid public-key envelopes for payment demands.
//!
//! `Enc(pk, D)` in the workflow (§III-A step 1): an ElGamal key
//! encapsulation over GF(2⁶¹ − 1) establishes a shared field element, a
//! SHA-256-based stream cipher encrypts the payload, and a SHA-256 tag
//! authenticates it. Intermediaries forwarding an envelope learn nothing
//! about the payment demand — which is all the simulation needs.
//!
//! **Simulation only; see the crate-level security note.**

use crate::field::Fp;
use crate::keys::{PublicKey, SecretKey};
use crate::rng64::SplitMix64;
use crate::sha256::Sha256;

/// A sealed payload (`c1`, ciphertext, tag).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Ephemeral ElGamal element `g^r`.
    c1: Fp,
    /// Stream-ciphered payload.
    ciphertext: Vec<u8>,
    /// SHA-256 authentication tag over key material and ciphertext.
    tag: [u8; 32],
}

fn keystream_block(shared: Fp, counter: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"splicer-envelope-stream");
    h.update(&shared.value().to_le_bytes());
    h.update(&counter.to_le_bytes());
    h.finalize()
}

fn xor_stream(shared: Fp, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (i, chunk) in data.chunks(32).enumerate() {
        let block = keystream_block(shared, i as u64);
        out.extend(chunk.iter().zip(block.iter()).map(|(d, k)| d ^ k));
    }
    out
}

fn auth_tag(shared: Fp, c1: Fp, ciphertext: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"splicer-envelope-tag");
    h.update(&shared.value().to_le_bytes());
    h.update(&c1.value().to_le_bytes());
    h.update(ciphertext);
    h.finalize()
}

impl Envelope {
    /// Seals `plaintext` to `pk` using entropy from `rng`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcn_crypto::{envelope::Envelope, keys::KeyPair, rng64::SplitMix64};
    ///
    /// let kp = KeyPair::from_seed(5);
    /// let mut rng = SplitMix64::new(6);
    /// let sealed = Envelope::seal(&kp.public, b"demand", &mut rng);
    /// assert_eq!(sealed.open(&kp.secret).unwrap(), b"demand");
    /// ```
    pub fn seal(pk: &PublicKey, plaintext: &[u8], rng: &mut SplitMix64) -> Envelope {
        let r = 1 + rng.next_below(crate::field::MODULUS - 2);
        let c1 = Fp::GENERATOR.pow(r);
        let shared = pk.element().pow(r);
        let ciphertext = xor_stream(shared, plaintext);
        let tag = auth_tag(shared, c1, &ciphertext);
        Envelope {
            c1,
            ciphertext,
            tag,
        }
    }

    /// Opens the envelope with the matching secret key.
    ///
    /// # Errors
    ///
    /// Returns [`pcn_types::PcnError::CryptoFailure`] when the key is wrong
    /// or the ciphertext was tampered with.
    pub fn open(&self, sk: &SecretKey) -> pcn_types::Result<Vec<u8>> {
        let shared = self.c1.pow(sk.exponent());
        let expect = auth_tag(shared, self.c1, &self.ciphertext);
        if expect != self.tag {
            return Err(pcn_types::PcnError::CryptoFailure(
                "envelope authentication failed".into(),
            ));
        }
        Ok(xor_stream(shared, &self.ciphertext))
    }

    /// Size of the sealed message in bytes (for overhead accounting).
    pub fn wire_size(&self) -> usize {
        8 + self.ciphertext.len() + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    #[test]
    fn roundtrip_various_lengths() {
        let kp = KeyPair::from_seed(1);
        let mut rng = SplitMix64::new(2);
        for len in [0usize, 1, 31, 32, 33, 100, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let sealed = Envelope::seal(&kp.public, &msg, &mut rng);
            assert_eq!(sealed.open(&kp.secret).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn wrong_key_fails() {
        let kp = KeyPair::from_seed(1);
        let other = KeyPair::from_seed(2);
        let mut rng = SplitMix64::new(3);
        let sealed = Envelope::seal(&kp.public, b"secret demand", &mut rng);
        let err = sealed.open(&other.secret).unwrap_err();
        assert!(matches!(err, pcn_types::PcnError::CryptoFailure(_)));
    }

    #[test]
    fn tampering_detected() {
        let kp = KeyPair::from_seed(4);
        let mut rng = SplitMix64::new(5);
        let mut sealed = Envelope::seal(&kp.public, b"pay 10 to n3", &mut rng);
        sealed.ciphertext[0] ^= 1;
        assert!(sealed.open(&kp.secret).is_err());
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let kp = KeyPair::from_seed(6);
        let mut rng = SplitMix64::new(7);
        let msg = b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
        let sealed = Envelope::seal(&kp.public, msg, &mut rng);
        assert_ne!(&sealed.ciphertext[..], &msg[..]);
        // Two seals of the same message differ (fresh ephemeral keys).
        let sealed2 = Envelope::seal(&kp.public, msg, &mut rng);
        assert_ne!(sealed.ciphertext, sealed2.ciphertext);
    }

    #[test]
    fn wire_size_accounts_overhead() {
        let kp = KeyPair::from_seed(8);
        let mut rng = SplitMix64::new(9);
        let sealed = Envelope::seal(&kp.public, &[0u8; 10], &mut rng);
        assert_eq!(sealed.wire_size(), 8 + 10 + 32);
    }
}
