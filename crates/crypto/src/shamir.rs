//! Shamir secret sharing over GF(2⁶¹ − 1).
//!
//! The KMG (§III-A) holds its group secret in `t`-of-`n` shares; any `t`
//! smooth nodes can reconstruct (or derive per-transaction keys), fewer
//! learn nothing.

use crate::field::Fp;
use crate::rng64::SplitMix64;

/// One share: the evaluation point `x` and value `y = f(x)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Share {
    /// Evaluation point (non-zero).
    pub x: Fp,
    /// Polynomial value at `x`.
    pub y: Fp,
}

/// Splits `secret` into `n` shares, any `threshold` of which reconstruct.
///
/// # Panics
///
/// Panics if `threshold == 0`, `n == 0` or `threshold > n`.
///
/// # Examples
///
/// ```
/// use pcn_crypto::{shamir, Fp};
///
/// let shares = shamir::split(Fp::new(42), 3, 5, 7);
/// let got = shamir::reconstruct(&shares[..3]).unwrap();
/// assert_eq!(got, Fp::new(42));
/// ```
pub fn split(secret: Fp, threshold: usize, n: usize, seed: u64) -> Vec<Share> {
    assert!(threshold >= 1, "threshold must be at least 1");
    assert!(n >= threshold, "need at least `threshold` shares");
    let mut rng = SplitMix64::new(seed);
    // f(x) = secret + c1 x + … + c_{t-1} x^{t-1}
    let coeffs: Vec<Fp> = core::iter::once(secret)
        .chain((1..threshold).map(|_| Fp::new(rng.next_u64())))
        .collect();
    (1..=n as u64)
        .map(|xi| {
            let x = Fp::new(xi);
            let mut y = Fp::ZERO;
            // Horner evaluation.
            for &c in coeffs.iter().rev() {
                y = y * x + c;
            }
            Share { x, y }
        })
        .collect()
}

/// Reconstructs the secret from `shares` via Lagrange interpolation at 0.
///
/// Returns `None` when `shares` is empty or contains duplicate points.
/// With fewer than `threshold` *valid* shares the result is simply a wrong
/// field element — exactly the secrecy property.
pub fn reconstruct(shares: &[Share]) -> Option<Fp> {
    if shares.is_empty() {
        return None;
    }
    // Duplicate x would divide by zero.
    for (i, a) in shares.iter().enumerate() {
        for b in &shares[i + 1..] {
            if a.x == b.x {
                return None;
            }
        }
    }
    let mut secret = Fp::ZERO;
    for (i, si) in shares.iter().enumerate() {
        let mut num = Fp::ONE;
        let mut den = Fp::ONE;
        for (j, sj) in shares.iter().enumerate() {
            if i != j {
                num = num * (Fp::ZERO - sj.x);
                den = den * (si.x - sj.x);
            }
        }
        secret = secret + si.y * num * den.inv()?;
    }
    Some(secret)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_threshold() {
        let secret = Fp::new(0xdead_beef);
        let shares = split(secret, 3, 5, 1);
        assert_eq!(shares.len(), 5);
        assert_eq!(reconstruct(&shares[..3]), Some(secret));
        assert_eq!(reconstruct(&shares[2..5]), Some(secret));
        assert_eq!(reconstruct(&shares), Some(secret));
    }

    #[test]
    fn below_threshold_is_wrong() {
        let secret = Fp::new(777);
        let shares = split(secret, 3, 5, 2);
        // Two shares interpolate a line — almost surely not the secret.
        let wrong = reconstruct(&shares[..2]).unwrap();
        assert_ne!(wrong, secret);
    }

    #[test]
    fn single_share_threshold_one() {
        let secret = Fp::new(5);
        let shares = split(secret, 1, 4, 3);
        // Degree-0 polynomial: every share carries the secret.
        for s in &shares {
            assert_eq!(reconstruct(&[*s]), Some(secret));
        }
    }

    #[test]
    fn duplicate_points_rejected() {
        let shares = split(Fp::new(9), 2, 3, 4);
        let dup = vec![shares[0], shares[0]];
        assert_eq!(reconstruct(&dup), None);
        assert_eq!(reconstruct(&[]), None);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_parameters_panic() {
        split(Fp::new(1), 4, 3, 0);
    }

    #[test]
    fn share_points_are_distinct_and_nonzero() {
        let shares = split(Fp::new(11), 2, 8, 5);
        let mut xs: Vec<u64> = shares.iter().map(|s| s.x.value()).collect();
        xs.sort_unstable();
        xs.dedup();
        assert_eq!(xs.len(), 8);
        assert!(xs.iter().all(|&x| x != 0));
    }

    #[test]
    fn linearity_of_shares() {
        // Shamir is linear: sharing s1 and s2 with the same points then
        // adding shares pointwise shares s1+s2 — the property the DKG uses.
        let s1 = Fp::new(100);
        let s2 = Fp::new(233);
        let sh1 = split(s1, 3, 4, 6);
        let sh2 = split(s2, 3, 4, 7);
        let sum: Vec<Share> = sh1
            .iter()
            .zip(&sh2)
            .map(|(a, b)| {
                assert_eq!(a.x, b.x);
                Share {
                    x: a.x,
                    y: a.y + b.y,
                }
            })
            .collect();
        assert_eq!(reconstruct(&sum[..3]), Some(s1 + s2));
    }
}
