//! Arithmetic in GF(p) for the Mersenne prime p = 2⁶¹ − 1.
//!
//! Small enough that products fit in `u128`, large enough that random
//! collisions never occur in simulation. Backs Shamir sharing, the DKG and
//! the toy ElGamal scheme.

use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};

/// The field modulus p = 2⁶¹ − 1 (a Mersenne prime).
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of GF(2⁶¹ − 1).
///
/// # Examples
///
/// ```
/// use pcn_crypto::Fp;
///
/// let a = Fp::new(7);
/// let b = a.inv().unwrap();
/// assert_eq!(a * b, Fp::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp(u64);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);
    /// A fixed multiplicative generator used as the ElGamal base.
    /// (7 generates a large subgroup of GF(p)*; sufficient for simulation.)
    pub const GENERATOR: Fp = Fp(7);

    /// Creates an element, reducing mod p.
    pub const fn new(v: u64) -> Fp {
        Fp(v % MODULUS)
    }

    /// Raw canonical representative in `[0, p)`.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Whether this is the zero element.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Modular exponentiation `self^e`.
    pub fn pow(self, mut e: u64) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// Returns `None` for zero.
    pub fn inv(self) -> Option<Fp> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(MODULUS - 2))
        }
    }
}

impl Add for Fp {
    type Output = Fp;

    fn add(self, rhs: Fp) -> Fp {
        let s = self.0 + rhs.0; // < 2^62, no overflow
        Fp(if s >= MODULUS { s - MODULUS } else { s })
    }
}

impl Sub for Fp {
    type Output = Fp;

    fn sub(self, rhs: Fp) -> Fp {
        Fp(if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + MODULUS - rhs.0
        })
    }
}

impl Neg for Fp {
    type Output = Fp;

    fn neg(self) -> Fp {
        Fp::ZERO - self
    }
}

impl Mul for Fp {
    type Output = Fp;

    fn mul(self, rhs: Fp) -> Fp {
        let prod = u128::from(self.0) * u128::from(rhs.0);
        // Mersenne reduction: x = hi*2^61 + lo ≡ hi + lo (mod 2^61 - 1).
        let lo = (prod & u128::from(MODULUS)) as u64;
        let hi = (prod >> 61) as u64;
        Fp::new(lo) + Fp::new(hi)
    }
}

impl Div for Fp {
    type Output = Fp;

    /// # Panics
    ///
    /// Panics on division by zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the inverse
    fn div(self, rhs: Fp) -> Fp {
        self * rhs.inv().expect("division by zero in GF(p)")
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({})", self.0)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Fp {
    fn from(v: u64) -> Fp {
        Fp::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_is_mersenne() {
        assert_eq!(MODULUS, 2_305_843_009_213_693_951);
    }

    #[test]
    fn add_sub_wraparound() {
        let a = Fp::new(MODULUS - 1);
        assert_eq!(a + Fp::ONE, Fp::ZERO);
        assert_eq!(Fp::ZERO - Fp::ONE, a);
        assert_eq!(-Fp::ONE, a);
        assert_eq!(a + a, Fp::new(MODULUS - 2));
    }

    #[test]
    fn mul_reduction() {
        let a = Fp::new(MODULUS - 1); // ≡ -1
        assert_eq!(a * a, Fp::ONE);
        assert_eq!(Fp::new(1 << 60) * Fp::new(2), Fp::new((1 << 61) % MODULUS));
        assert_eq!(Fp::ZERO * a, Fp::ZERO);
    }

    #[test]
    fn pow_and_fermat() {
        let g = Fp::GENERATOR;
        assert_eq!(g.pow(0), Fp::ONE);
        assert_eq!(g.pow(1), g);
        assert_eq!(g.pow(3), g * g * g);
        // Fermat: g^(p-1) = 1.
        assert_eq!(g.pow(MODULUS - 1), Fp::ONE);
    }

    #[test]
    fn inverse_roundtrip() {
        for v in [1u64, 2, 3, 7, 1_000_003, MODULUS - 2] {
            let x = Fp::new(v);
            assert_eq!(x * x.inv().unwrap(), Fp::ONE, "v={v}");
            assert_eq!(x / x, Fp::ONE);
        }
        assert_eq!(Fp::ZERO.inv(), None);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Fp::ONE / Fp::ZERO;
    }

    #[test]
    fn field_axioms_sampled() {
        // Distributivity and associativity over pseudo-random triples.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200 {
            let a = Fp::new(next());
            let b = Fp::new(next());
            let c = Fp::new(next());
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!((a + b) + c, a + (b + c));
            assert_eq!(a + b, b + a);
            assert_eq!(a * b, b * a);
            assert_eq!(a - a, Fp::ZERO);
        }
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Fp::from(MODULUS), Fp::ZERO);
        assert_eq!(Fp::new(42).to_string(), "42");
        assert_eq!(format!("{:?}", Fp::new(42)), "Fp(42)");
    }
}
