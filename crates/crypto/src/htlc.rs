//! Hash time-locked contract (HTLC) primitives.
//!
//! §II-A: HTLCs guarantee an intermediary is paid on channel (A, C) only
//! after paying on (C, B) within a bounded time. The simulation models the
//! *funds* side of HTLCs in the routing crate; this module supplies the
//! hash-lock objects so the workflow carries honest preimage/lock pairs.

use crate::rng64::SplitMix64;
use crate::sha256::Sha256;

/// A 32-byte secret preimage.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Preimage([u8; 32]);

/// The SHA-256 lock of a preimage.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HashLock([u8; 32]);

impl Preimage {
    /// Draws a fresh preimage from entropy.
    pub fn random(rng: &mut SplitMix64) -> Preimage {
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        Preimage(bytes)
    }

    /// Builds a preimage from raw bytes (e.g. for tests).
    pub const fn from_bytes(bytes: [u8; 32]) -> Preimage {
        Preimage(bytes)
    }

    /// Computes the lock `H(preimage)`.
    pub fn lock(&self) -> HashLock {
        HashLock(Sha256::digest(&self.0))
    }
}

impl core::fmt::Debug for Preimage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Preimages unlock funds — never print them.
        write!(f, "Preimage(<redacted>)")
    }
}

impl HashLock {
    /// Verifies that `candidate` opens this lock.
    pub fn verify(&self, candidate: &Preimage) -> bool {
        // Constant-time comparison is irrelevant in simulation, but cheap.
        let got = Sha256::digest(&candidate.0);
        let mut diff = 0u8;
        for (a, b) in got.iter().zip(self.0.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_verifies_own_preimage() {
        let mut rng = SplitMix64::new(1);
        let p = Preimage::random(&mut rng);
        let lock = p.lock();
        assert!(lock.verify(&p));
    }

    #[test]
    fn wrong_preimage_rejected() {
        let mut rng = SplitMix64::new(2);
        let p = Preimage::random(&mut rng);
        let q = Preimage::random(&mut rng);
        assert_ne!(p, q);
        assert!(!p.lock().verify(&q));
    }

    #[test]
    fn deterministic_lock() {
        let p = Preimage::from_bytes([7u8; 32]);
        assert_eq!(p.lock(), Preimage::from_bytes([7u8; 32]).lock());
        assert_ne!(p.lock(), Preimage::from_bytes([8u8; 32]).lock());
    }

    #[test]
    fn preimage_debug_redacted() {
        let p = Preimage::from_bytes([1u8; 32]);
        assert_eq!(format!("{p:?}"), "Preimage(<redacted>)");
    }

    #[test]
    fn lock_exposes_digest() {
        let p = Preimage::from_bytes([0u8; 32]);
        assert_eq!(
            crate::sha256::to_hex(p.lock().as_bytes()),
            "66687aadf862bd776c8fc18b8e9f8e20089714856ee233b3902a591d0d5f2925"
        );
    }
}
