//! Toy ElGamal-style key pairs over GF(2⁶¹ − 1).
//!
//! A secret key is a random exponent `sk`; the public key is `g^sk`. The
//! KMG issues one pair per transaction/TU so intermediaries cannot link TUs
//! of the same payment (§III-C, unlinkability). **Simulation only — a
//! 61-bit group offers no real security.**

use crate::field::{Fp, MODULUS};
use crate::rng64::SplitMix64;

/// A public key `g^sk`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PublicKey(pub(crate) Fp);

/// A secret exponent.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(pub(crate) u64);

/// A matching key pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyPair {
    /// The public half (safe to circulate).
    pub public: PublicKey,
    /// The secret half.
    pub secret: SecretKey,
}

impl core::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print secret material, even in a simulation: downstream
        // logging shouldn't leak workflow-correlatable values.
        write!(f, "SecretKey(<redacted>)")
    }
}

impl KeyPair {
    /// Derives a key pair deterministically from the given seeded RNG.
    /// (Deliberately *not* named `from_entropy`: there is no OS entropy
    /// anywhere in the workspace — splicer-lint R2 enforces this.)
    pub fn from_rng(rng: &mut SplitMix64) -> KeyPair {
        // sk ∈ [1, p-1)
        let sk = 1 + rng.next_below(MODULUS - 2);
        KeyPair {
            public: PublicKey(Fp::GENERATOR.pow(sk)),
            secret: SecretKey(sk),
        }
    }

    /// Convenience constructor from a raw seed.
    pub fn from_seed(seed: u64) -> KeyPair {
        KeyPair::from_rng(&mut SplitMix64::new(seed))
    }
}

impl PublicKey {
    /// The group element (for envelope construction).
    pub fn element(self) -> Fp {
        self.0
    }
}

impl SecretKey {
    /// The secret exponent (crate-internal use by envelopes).
    pub(crate) fn exponent(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a = KeyPair::from_seed(42);
        let b = KeyPair::from_seed(42);
        assert_eq!(a, b);
        assert_ne!(a.public, KeyPair::from_seed(43).public);
    }

    #[test]
    fn public_matches_secret() {
        let kp = KeyPair::from_seed(7);
        assert_eq!(kp.public.element(), Fp::GENERATOR.pow(kp.secret.exponent()));
    }

    #[test]
    fn secret_debug_redacted() {
        let kp = KeyPair::from_seed(1);
        assert_eq!(format!("{:?}", kp.secret), "SecretKey(<redacted>)");
    }

    #[test]
    fn secret_exponent_in_range() {
        for seed in 0..50 {
            let kp = KeyPair::from_seed(seed);
            let e = kp.secret.exponent();
            assert!((1..MODULUS - 1).contains(&e));
        }
    }
}
