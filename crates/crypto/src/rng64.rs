//! Minimal deterministic entropy source for simulated key material.
//!
//! The crypto substrate must not depend on the simulator's RNG crate (it
//! sits below it in the dependency graph), so it carries its own SplitMix64
//! generator. SplitMix64 passes BigCrush for this use and is the standard
//! seeding primitive of the xoshiro family.

/// SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use pcn_crypto::rng64::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next value reduced into `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Fills a byte buffer.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_first_output() {
        // Reference value for seed 0 from the SplitMix64 reference code.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn bounded_outputs_in_range() {
        let mut g = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(g.next_below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn fill_bytes_lengths() {
        let mut g = SplitMix64::new(4);
        let mut buf = [0u8; 13];
        g.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
