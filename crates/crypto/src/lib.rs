//! Simulated cryptography substrate for the Splicer workflow (§III-A).
//!
//! The paper's payment workflow relies on: a key-management group (KMG)
//! running distributed key generation \[14\] to issue per-transaction key
//! pairs, public-key envelopes hiding payment demands from intermediaries,
//! and HTLC hash locks guaranteeing atomic forwarding. None of that
//! cryptography is the paper's contribution — the system only needs the
//! *interfaces* and their costs — so this crate provides working but
//! **deliberately toy** constructions:
//!
//! * [`sha256`] — a real, from-scratch SHA-256 (verified against NIST
//!   vectors); used for HTLC locks and key derivation.
//! * [`field`] — arithmetic in GF(p) for the Mersenne prime p = 2⁶¹ − 1.
//! * [`shamir`] — Shamir secret sharing over that field.
//! * [`dkg`] — a simulated Joint-Feldman-style DKG for the KMG.
//! * [`keys`]/[`envelope`] — ElGamal-style key pairs and hybrid envelopes.
//! * [`htlc`] — hash time-locked contract preimages/locks.
//!
//! # Security
//!
//! **THIS CRATE IS NOT SECURE AND MUST NEVER PROTECT REAL FUNDS.** The
//! 61-bit field makes discrete logs trivially breakable; the DKG runs all
//! "participants" in one process. The constructions exist so the simulated
//! workflow exercises the same code paths (encrypt → route → decrypt →
//! acknowledge) with honest data dependencies and realistic message sizes.
//!
//! # Examples
//!
//! ```
//! use pcn_crypto::{dkg::KeyManagementGroup, envelope::Envelope};
//!
//! let mut kmg = KeyManagementGroup::new(4, 3, 99);
//! let pair = kmg.issue_keypair();
//! let sealed = Envelope::seal(&pair.public, b"pay 5 tokens to n7", kmg.entropy());
//! let opened = sealed.open(&pair.secret).unwrap();
//! assert_eq!(opened, b"pay 5 tokens to n7");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dkg;
pub mod envelope;
pub mod field;
pub mod htlc;
pub mod keys;
pub mod rng64;
pub mod sha256;
pub mod shamir;

pub use dkg::KeyManagementGroup;
pub use envelope::Envelope;
pub use field::Fp;
pub use htlc::{HashLock, Preimage};
pub use keys::{KeyPair, PublicKey, SecretKey};
pub use sha256::Sha256;
