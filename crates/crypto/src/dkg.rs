//! Simulated distributed key generation for the key-management group.
//!
//! §III-A: "multiple smooth nodes form a key management group (KMG) to
//! create or retrieve keys with any distributed key generate protocol
//! \[14\]". We simulate a Joint-Feldman-style DKG: each of the ι participants
//! contributes a random degree-(t−1) polynomial; the group secret is the
//! sum of constant terms and every participant holds a Shamir share of it.
//! Per-transaction key pairs are then derived from group entropy.
//!
//! All participants run in-process — the *protocol messages* are not
//! simulated, only the resulting key material and its threshold property,
//! which is what the payment workflow consumes.

use crate::field::Fp;
use crate::keys::KeyPair;
use crate::rng64::SplitMix64;
use crate::shamir::{self, Share};

/// The KMG: ι participants holding a t-of-ι shared secret, issuing
/// per-transaction key pairs (§III-A payment preparation).
///
/// # Examples
///
/// ```
/// use pcn_crypto::KeyManagementGroup;
///
/// let mut kmg = KeyManagementGroup::new(5, 3, 1234);
/// let pair_a = kmg.issue_keypair();
/// let pair_b = kmg.issue_keypair();
/// assert_ne!(pair_a.public, pair_b.public); // fresh pair per transaction
/// assert!(kmg.verify_group_secret());
/// ```
#[derive(Clone, Debug)]
pub struct KeyManagementGroup {
    participants: usize,
    threshold: usize,
    group_secret: Fp,
    shares: Vec<Share>,
    entropy: SplitMix64,
    issued: u64,
}

impl KeyManagementGroup {
    /// Runs the simulated DKG among `participants` nodes with the given
    /// reconstruction `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` or `threshold > participants`.
    pub fn new(participants: usize, threshold: usize, seed: u64) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        assert!(
            threshold <= participants,
            "threshold cannot exceed participant count"
        );
        let mut rng = SplitMix64::new(seed);
        // Each participant contributes a secret; shares add pointwise
        // (Shamir linearity, tested in the shamir module).
        let mut group_secret = Fp::ZERO;
        let mut combined: Vec<Share> = Vec::new();
        for p in 0..participants {
            let contrib = Fp::new(rng.next_u64());
            group_secret = group_secret + contrib;
            let shares = shamir::split(contrib, threshold, participants, rng.next_u64());
            if p == 0 {
                combined = shares;
            } else {
                for (acc, s) in combined.iter_mut().zip(shares) {
                    debug_assert_eq!(acc.x, s.x);
                    acc.y = acc.y + s.y;
                }
            }
        }
        let entropy_seed = rng.next_u64() ^ group_secret.value();
        KeyManagementGroup {
            participants,
            threshold,
            group_secret,
            shares: combined,
            entropy: SplitMix64::new(entropy_seed),
            issued: 0,
        }
    }

    /// Number of participants ι.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Reconstruction threshold t.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Issues a fresh per-transaction key pair (`pk_tid`, `sk_tid`).
    pub fn issue_keypair(&mut self) -> KeyPair {
        self.issued += 1;
        KeyPair::from_rng(&mut self.entropy)
    }

    /// Number of key pairs issued so far.
    pub fn issued_count(&self) -> u64 {
        self.issued
    }

    /// Mutable access to group entropy (for sealing envelopes in tests and
    /// the workflow simulation).
    pub fn entropy(&mut self) -> &mut SplitMix64 {
        &mut self.entropy
    }

    /// Checks that any `threshold` shares reconstruct the group secret —
    /// the invariant the simulation relies on.
    pub fn verify_group_secret(&self) -> bool {
        shamir::reconstruct(&self.shares[..self.threshold]) == Some(self.group_secret)
            && shamir::reconstruct(&self.shares[self.participants - self.threshold..])
                == Some(self.group_secret)
    }

    /// The share held by participant `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= participants`.
    pub fn share(&self, idx: usize) -> Share {
        self.shares[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_secret_reconstructs() {
        let kmg = KeyManagementGroup::new(7, 4, 11);
        assert!(kmg.verify_group_secret());
        assert_eq!(kmg.participants(), 7);
        assert_eq!(kmg.threshold(), 4);
    }

    #[test]
    fn below_threshold_fails() {
        let kmg = KeyManagementGroup::new(5, 3, 12);
        let partial: Vec<Share> = (0..2).map(|i| kmg.share(i)).collect();
        let got = shamir::reconstruct(&partial).unwrap();
        assert_ne!(got, kmg.group_secret);
    }

    #[test]
    fn issues_fresh_pairs() {
        let mut kmg = KeyManagementGroup::new(4, 2, 13);
        let pairs: Vec<KeyPair> = (0..10).map(|_| kmg.issue_keypair()).collect();
        assert_eq!(kmg.issued_count(), 10);
        let mut pubs: Vec<u64> = pairs.iter().map(|p| p.public.element().value()).collect();
        pubs.sort_unstable();
        pubs.dedup();
        assert_eq!(pubs.len(), 10, "issued keys must be unique");
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = KeyManagementGroup::new(4, 2, 99);
        let mut b = KeyManagementGroup::new(4, 2, 99);
        assert_eq!(a.issue_keypair(), b.issue_keypair());
    }

    #[test]
    fn different_seeds_produce_different_groups() {
        let a = KeyManagementGroup::new(4, 2, 1);
        let b = KeyManagementGroup::new(4, 2, 2);
        assert_ne!(a.group_secret, b.group_secret);
    }

    #[test]
    #[should_panic(expected = "threshold cannot exceed")]
    fn bad_threshold_panics() {
        KeyManagementGroup::new(3, 4, 0);
    }

    #[test]
    fn end_to_end_with_envelope() {
        use crate::envelope::Envelope;
        let mut kmg = KeyManagementGroup::new(5, 3, 21);
        let pair = kmg.issue_keypair();
        let sealed = Envelope::seal(&pair.public, b"D_tid = (Ps, Pr, 17)", kmg.entropy());
        assert_eq!(sealed.open(&pair.secret).unwrap(), b"D_tid = (Ps, Pr, 17)");
    }
}
