//! The encrypted payment workflow of §III-A.
//!
//! Implements the preparation/execution state machine verbatim:
//!
//! 1. **Preparation** — the sender's smooth node obtains a fresh
//!    transaction id `tid` and key pair `(pk_tid, sk_tid)` from the KMG and
//!    creates `state_tid = (tid, θ_tid = false)`.
//! 2. **Execution step 1** — the sender computes `inp = Enc(pk_tid, D_tid)`
//!    and ships it with the funds.
//! 3. **Steps 2–3** — the smooth node decrypts, splits `D_tid` into K TUs,
//!    each sealed to an *independent* key pair (unlinkability: no
//!    intermediary can correlate TUs of one payment); the recipient-side
//!    smooth node acknowledges each TU, flipping `θ_tuid`.
//! 4. **Step 4** — once `θ_tid = ∧ θ_tuid`, the recipient is paid in one
//!    shot and the final ACK travels back.
//!
//! Fund movement itself is the engine's job; this module carries the
//! cryptographic and state-machine truth (and its costs), and is exercised
//! per-payment by the system layer's workflow accounting.

use pcn_crypto::envelope::Envelope;
use pcn_crypto::{KeyManagementGroup, KeyPair};
use pcn_types::{Amount, NodeId, PcnError, Result, TuId, TxId};

/// A payment demand as serialized into the encrypted envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Demand {
    /// Sender client P_s.
    pub sender: NodeId,
    /// Recipient client P_r.
    pub recipient: NodeId,
    /// Payment value val_tid.
    pub value: Amount,
}

impl Demand {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend(self.sender.raw().to_le_bytes());
        out.extend(self.recipient.raw().to_le_bytes());
        out.extend(self.value.millitokens().to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Demand> {
        if bytes.len() != 16 {
            return Err(PcnError::CryptoFailure("demand payload size".into()));
        }
        let sender = NodeId::new(u32::from_le_bytes(bytes[0..4].try_into().expect("len")));
        let recipient = NodeId::new(u32::from_le_bytes(bytes[4..8].try_into().expect("len")));
        let value =
            Amount::from_millitokens(u64::from_le_bytes(bytes[8..16].try_into().expect("len")));
        Ok(Demand {
            sender,
            recipient,
            value,
        })
    }
}

/// Transcript of one executed payment workflow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkflowTranscript {
    /// The transaction id.
    pub tid: TxId,
    /// TU ids created by the split.
    pub tuids: Vec<TuId>,
    /// θ_tid — true iff every TU acknowledged.
    pub theta: bool,
    /// Total ciphertext bytes moved (overhead accounting).
    pub wire_bytes: usize,
}

/// The smooth-node-side workflow executor holding the KMG handle.
#[derive(Debug)]
pub struct PaymentWorkflow {
    kmg: KeyManagementGroup,
    next_tid: u64,
    next_tuid: u64,
    min_tu: Amount,
    max_tu: Amount,
}

impl PaymentWorkflow {
    /// Creates a workflow executor over a KMG of `participants` smooth
    /// nodes with reconstruction threshold ι.
    pub fn new(participants: usize, threshold: usize, seed: u64) -> PaymentWorkflow {
        PaymentWorkflow {
            kmg: KeyManagementGroup::new(participants, threshold, seed),
            next_tid: 0,
            next_tuid: 0,
            min_tu: pcn_types::constants::MIN_TU,
            max_tu: pcn_types::constants::MAX_TU,
        }
    }

    /// Overrides the TU bounds.
    pub fn with_tu_bounds(mut self, min_tu: Amount, max_tu: Amount) -> PaymentWorkflow {
        self.min_tu = min_tu;
        self.max_tu = max_tu;
        self
    }

    /// Runs payment preparation + execution for one demand and returns the
    /// transcript.
    ///
    /// `drop_tu` injects the threat model: TUs whose index satisfies the
    /// filter are dropped in transit (adversarial message drop); the
    /// workflow must then leave `θ_tid = false` and the payment is
    /// withdrawn without loss (§III-B threat model). Any
    /// `FnMut(usize) -> bool` closure works via the blanket
    /// [`pcn_routing::TuDropFilter`] impl, as does a materialized
    /// [`pcn_routing::FaultPlan`] reference — the same plan the routing
    /// engine consumes, so workflow-level and engine-level drop
    /// decisions share one source of truth.
    ///
    /// # Errors
    ///
    /// [`PcnError::InvalidDemand`] for zero-value or self-payments;
    /// [`PcnError::CryptoFailure`] if an envelope fails to open.
    pub fn execute<F>(&mut self, demand: Demand, mut drop_tu: F) -> Result<WorkflowTranscript>
    where
        F: pcn_routing::TuDropFilter,
    {
        if demand.value.is_zero() {
            return Err(PcnError::InvalidDemand("zero value".into()));
        }
        if demand.sender == demand.recipient {
            return Err(PcnError::InvalidDemand("self payment".into()));
        }
        // Preparation: fresh tid and (pk_tid, sk_tid) from the KMG.
        let tid = TxId::new(self.next_tid);
        self.next_tid += 1;
        let tx_pair: KeyPair = self.kmg.issue_keypair();
        // Execution (1): the sender seals D_tid to pk_tid.
        let inp = Envelope::seal(&tx_pair.public, &demand.encode(), self.kmg.entropy());
        let mut wire_bytes = inp.wire_size();
        // (2): the sender's smooth node opens it.
        let opened = Demand::decode(&inp.open(&tx_pair.secret)?)?;
        debug_assert_eq!(opened, demand);
        // Split into TUs; each TU gets an independent key pair so
        // intermediaries cannot link them (unlinkability).
        let parts = pcn_routing::tu::split_demand(opened.value, self.min_tu, self.max_tu);
        let mut tuids = Vec::with_capacity(parts.len());
        let mut theta_parts = Vec::with_capacity(parts.len());
        for (idx, part) in parts.iter().enumerate() {
            let tuid = TuId::new(self.next_tuid);
            self.next_tuid += 1;
            tuids.push(tuid);
            let tu_pair = self.kmg.issue_keypair();
            let tu_demand = Demand {
                value: *part,
                ..opened
            };
            let sealed = Envelope::seal(&tu_pair.public, &tu_demand.encode(), self.kmg.entropy());
            wire_bytes += sealed.wire_size();
            if drop_tu.drops_tu(idx) {
                // Adversary dropped the TU: no ACK, θ_tuid stays false.
                theta_parts.push(false);
                continue;
            }
            // (3): recipient-side smooth node opens and ACKs.
            let received = Demand::decode(&sealed.open(&tu_pair.secret)?)?;
            theta_parts.push(received.value == *part);
        }
        // θ_tid = ∧ θ_tuid (eq. in §III-A step 2-3).
        let theta = !theta_parts.is_empty() && theta_parts.iter().all(|&t| t);
        Ok(WorkflowTranscript {
            tid,
            tuids,
            theta,
            wire_bytes,
        })
    }

    /// Number of key pairs issued so far (one per tid + one per tuid).
    pub fn keys_issued(&self) -> u64 {
        self.kmg.issued_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(v: u64) -> Demand {
        Demand {
            sender: NodeId::new(1),
            recipient: NodeId::new(2),
            value: Amount::from_tokens(v),
        }
    }

    #[test]
    fn successful_payment_sets_theta() {
        let mut wf = PaymentWorkflow::new(5, 3, 42);
        let t = wf.execute(demand(10), |_| false).unwrap();
        assert!(t.theta);
        // 10 tokens with Max-TU 4 → 3 TUs.
        assert_eq!(t.tuids.len(), 3);
        assert!(t.wire_bytes > 0);
        // tid pair + 3 TU pairs issued.
        assert_eq!(wf.keys_issued(), 4);
    }

    #[test]
    fn dropped_tu_leaves_theta_false() {
        let mut wf = PaymentWorkflow::new(5, 3, 43);
        let t = wf.execute(demand(10), |idx| idx == 1).unwrap();
        assert!(!t.theta, "a dropped TU must block completion");
        assert_eq!(t.tuids.len(), 3);
    }

    #[test]
    fn tu_ids_and_tids_unique_across_payments() {
        let mut wf = PaymentWorkflow::new(4, 2, 44);
        let a = wf.execute(demand(8), |_| false).unwrap();
        let b = wf.execute(demand(8), |_| false).unwrap();
        assert_ne!(a.tid, b.tid);
        let mut all: Vec<TuId> = a.tuids.iter().chain(b.tuids.iter()).copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), a.tuids.len() + b.tuids.len());
    }

    #[test]
    fn invalid_demands_rejected() {
        let mut wf = PaymentWorkflow::new(4, 2, 45);
        assert!(matches!(
            wf.execute(demand(0), |_| false),
            Err(PcnError::InvalidDemand(_))
        ));
        let selfpay = Demand {
            sender: NodeId::new(1),
            recipient: NodeId::new(1),
            value: Amount::from_tokens(1),
        };
        assert!(wf.execute(selfpay, |_| false).is_err());
    }

    #[test]
    fn demand_roundtrip() {
        let d = Demand {
            sender: NodeId::new(7),
            recipient: NodeId::new(9),
            value: Amount::from_millitokens(123_456),
        };
        assert_eq!(Demand::decode(&d.encode()).unwrap(), d);
        assert!(Demand::decode(&[0u8; 3]).is_err());
    }

    #[test]
    fn custom_tu_bounds() {
        let mut wf = PaymentWorkflow::new(4, 2, 46)
            .with_tu_bounds(Amount::from_tokens(1), Amount::from_tokens(2));
        let t = wf.execute(demand(10), |_| false).unwrap();
        assert_eq!(t.tuids.len(), 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PaymentWorkflow::new(4, 2, 47);
        let mut b = PaymentWorkflow::new(4, 2, 47);
        let ta = a.execute(demand(6), |_| false).unwrap();
        let tb = b.execute(demand(6), |_| false).unwrap();
        assert_eq!(ta.wire_bytes, tb.wire_bytes);
    }
}
