//! One-call system builders: Splicer and every baseline on a shared world.
//!
//! [`SystemBuilder`] takes a [`Scenario`] (topology + candidates + payment
//! trace) and produces [`PreparedRun`]s. All schemes replay the *same*
//! payment trace; hub-based schemes get their rewired topologies
//! (multi-star for Splicer, single star for A2L) funded from the same
//! channel-size distribution.

use std::collections::BTreeMap;

use pcn_placement::{CostParams, PlacementInstance, PlacementPlan, PlacementSolver};
use pcn_routing::tu::Payment;
use pcn_routing::{Engine, EngineConfig, RunStats, SchemeConfig, ShardedEngine};
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, Result, SimDuration};
use pcn_workload::{PcnTopology, Scenario};

use crate::voting::{elect_candidates, VotingWeights};

/// Summary of a placement decision attached to hub-based runs.
#[derive(Clone, Debug, PartialEq)]
pub struct PlacementSummary {
    /// Number of placed hubs.
    pub hubs: usize,
    /// Management cost C_M.
    pub management_cost: f64,
    /// Synchronization cost C_S.
    pub synchronization_cost: f64,
    /// Balance cost C_B.
    pub balance_cost: f64,
    /// Tradeoff weight ω used.
    pub omega: f64,
}

/// Outcome of one scheme run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scheme name ("Splicer", "Spider", …).
    pub scheme: String,
    /// Engine statistics.
    pub stats: RunStats,
    /// Placement decision, for hub-based schemes.
    pub placement: Option<PlacementSummary>,
    /// Fraction of the scenario's candidate list the multiwinner vote
    /// reproduces (diagnostic for the trust model).
    pub voting_overlap: f64,
}

/// A scheme instance ready to execute.
pub struct PreparedRun {
    name: String,
    topology: PcnTopology,
    scheme: SchemeConfig,
    engine_cfg: EngineConfig,
    payments: Vec<Payment>,
    /// Materialized world-event timeline, shared by every scheme of the
    /// scenario (the engine resolves selectors against its own topology).
    timeline: Vec<pcn_routing::world::WorldEvent>,
    /// Materialized fault plan, likewise shared by every scheme (the
    /// engine resolves rogue-hub ranks against its own hub set; an
    /// empty plan installs nothing).
    faults: pcn_routing::FaultPlan,
    seed: u64,
    /// `Some(k)` routes execution through [`ShardedEngine`] with `k`
    /// partitioned event loops — even `k = 1`, so the sharded machinery
    /// itself is testable against the plain engine. `None` (the default
    /// when the scenario says one shard) runs the plain [`Engine`].
    shards: Option<u32>,
    placement: Option<PlacementSummary>,
    voting_overlap: f64,
}

impl PreparedRun {
    /// The scheme name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies a scheme override in place. This is how the harness's
    /// `SchemeTuning` reaches *every* scheme — Splicer and the baselines
    /// alike — so ablation rows can tune a baseline's path selection,
    /// discipline or controllers too.
    pub fn tune_scheme<F>(&mut self, tweak: F)
    where
        F: FnOnce(&mut SchemeConfig),
    {
        tweak(&mut self.scheme);
    }

    /// Applies an engine-config override in place (cache toggles, τ, …).
    pub fn tune_engine<F>(&mut self, tweak: F)
    where
        F: FnOnce(&mut EngineConfig),
    {
        tweak(&mut self.engine_cfg);
    }

    /// The topology this run executes on (inspection/tests).
    pub fn topology(&self) -> &PcnTopology {
        &self.topology
    }

    /// Forces execution through the sharded engine with `k` partitioned
    /// event loops (clamped to at least 1). Explicitly setting `k = 1`
    /// still exercises the sharded machinery — which the determinism
    /// suite pins bit-identical to the plain engine.
    pub fn set_shards(&mut self, k: u32) {
        self.shards = Some(k.max(1));
    }

    /// Executes the run.
    pub fn run(self) -> RunReport {
        let stats = match self.shards {
            Some(k) => ShardedEngine::new(
                self.topology.graph,
                self.topology.funds,
                self.scheme,
                self.engine_cfg,
                SimRng::seed(self.seed),
                k,
            )
            .with_timeline(self.timeline)
            .with_faults(self.faults)
            .run(self.payments),
            None => Engine::new(
                self.topology.graph,
                self.topology.funds,
                self.scheme,
                self.engine_cfg,
                SimRng::seed(self.seed),
            )
            .with_timeline(self.timeline)
            .with_faults(self.faults)
            .run(self.payments),
        };
        RunReport {
            scheme: self.name,
            stats,
            placement: self.placement,
            voting_overlap: self.voting_overlap,
        }
    }
}

/// Builder over a scenario; see the crate-level example.
pub struct SystemBuilder {
    scenario: Scenario,
    omega: f64,
    solver: PlacementSolver,
    engine_cfg: EngineConfig,
    hub_fund_factor: f64,
    a2l_crypto: SimDuration,
    flash_threshold: Amount,
    run_seed: u64,
}

impl SystemBuilder {
    /// Creates a builder with paper-default knobs (ω = 0.5, automatic
    /// placement solver, default engine config).
    pub fn new(scenario: Scenario) -> SystemBuilder {
        SystemBuilder {
            scenario,
            omega: 0.04,
            solver: PlacementSolver::Auto,
            engine_cfg: EngineConfig::default(),
            hub_fund_factor: 20.0,
            a2l_crypto: SimDuration::from_millis(42),
            flash_threshold: Amount::from_tokens(40),
            run_seed: 7,
        }
    }

    /// Sets the placement tradeoff weight ω.
    pub fn omega(mut self, omega: f64) -> SystemBuilder {
        self.omega = omega;
        self
    }

    /// Selects the placement solver.
    pub fn solver(mut self, solver: PlacementSolver) -> SystemBuilder {
        self.solver = solver;
        self
    }

    /// Overrides the engine configuration (τ sweeps etc.).
    pub fn engine_config(mut self, cfg: EngineConfig) -> SystemBuilder {
        self.engine_cfg = cfg;
        self
    }

    /// Overrides the hub capitalization multiplier.
    pub fn hub_fund_factor(mut self, factor: f64) -> SystemBuilder {
        self.hub_fund_factor = factor;
        self
    }

    /// Overrides A2L's per-transaction cryptographic service time.
    pub fn a2l_crypto(mut self, cost: SimDuration) -> SystemBuilder {
        self.a2l_crypto = cost;
        self
    }

    /// Access to the underlying scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Solves the placement problem on the scenario (exposed for the
    /// placement-evaluation harness, Fig. 9).
    ///
    /// # Errors
    ///
    /// Propagates solver failures (infeasibility, size guards).
    pub fn solve_placement(&self) -> Result<(PlacementInstance, PlacementPlan)> {
        let inst = PlacementInstance::from_graph(
            &self.scenario.flat.graph,
            self.scenario.clients.clone(),
            self.scenario.candidates.clone(),
            CostParams::paper(self.omega),
        );
        let mut rng = SimRng::seed(self.scenario.params.seed ^ 0x9e37);
        let plan = self.solver.solve(&inst, &mut rng)?;
        Ok((inst, plan))
    }

    /// The scenario's shard request: `k > 1` engages the sharded
    /// engine; one shard means the plain engine (tests opt into the
    /// K=1 machinery explicitly via [`PreparedRun::set_shards`]).
    fn scenario_shards(&self) -> Option<u32> {
        let k = self.scenario.params.shards;
        (k > 1).then_some(k)
    }

    fn voting_overlap(&self) -> f64 {
        let elected = elect_candidates(
            &self.scenario.flat.graph,
            &self.scenario.flat.funds,
            self.scenario.candidates.len(),
            VotingWeights::default(),
        );
        if elected.is_empty() {
            return 0.0;
        }
        let hits = elected
            .iter()
            .filter(|e| self.scenario.candidates.contains(e))
            .count();
        hits as f64 / elected.len() as f64
    }

    /// The hub backbone: a minimum-spanning skeleton over the hubs'
    /// flat-graph hop distances plus each hub's two nearest peers. This
    /// keeps the backbone connected but *sparse*, so Splicer's path
    /// selection between hubs is non-trivial (the paper's hubs are
    /// "connected directly or indirectly", not a clique).
    #[allow(clippy::needless_range_loop)] // pairwise matrix walks read clearer indexed
    fn hub_mesh(&self, hubs: &[NodeId]) -> Vec<(NodeId, NodeId)> {
        let g = &self.scenario.flat.graph;
        let h = hubs.len();
        if h <= 1 {
            return Vec::new();
        }
        let mut dist = vec![vec![u32::MAX; h]; h];
        for (i, &a) in hubs.iter().enumerate() {
            let hops = pcn_graph::bfs_hops(g, a);
            for (j, &b) in hubs.iter().enumerate() {
                dist[i][j] = hops[b.index()];
            }
        }
        let mut edges: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        // Kruskal over hop distances guarantees a connected skeleton.
        let mut pairs: Vec<(u32, usize, usize)> = Vec::new();
        for i in 0..h {
            for j in (i + 1)..h {
                pairs.push((dist[i][j], i, j));
            }
        }
        pairs.sort();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let mut parent: Vec<usize> = (0..h).collect();
        for &(_, i, j) in &pairs {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                parent[ri] = rj;
                edges.insert((i, j));
            }
        }
        // Redundancy: each hub also links to its two nearest peers.
        for i in 0..h {
            let mut near: Vec<usize> = (0..h).filter(|&j| j != i).collect();
            near.sort_by_key(|&j| dist[i][j]);
            for &j in near.iter().take(2) {
                edges.insert((i.min(j), i.max(j)));
            }
        }
        edges.into_iter().map(|(i, j)| (hubs[i], hubs[j])).collect()
    }

    /// Builds the Splicer run: placement → multi-star rewiring → hub
    /// routing with rate/congestion control.
    ///
    /// # Errors
    ///
    /// Fails when the placement problem is infeasible.
    pub fn build_splicer(&self) -> Result<PreparedRun> {
        let (inst, plan) = self.solve_placement()?;
        let assignment: BTreeMap<NodeId, NodeId> = self
            .scenario
            .clients
            .iter()
            .enumerate()
            .map(|(pos, &client)| (client, plan.hub_of_client(&inst, pos)))
            .collect();
        let mut rng = SimRng::seed(self.scenario.params.seed ^ 0x5151);
        let mesh = self.hub_mesh(plan.hubs());
        let topology = PcnTopology::multi_star_with_mesh(
            self.scenario.params.nodes,
            plan.hubs(),
            &mesh,
            &assignment,
            &self.scenario.sampler,
            self.hub_fund_factor,
            &mut rng,
        );
        Ok(PreparedRun {
            name: "Splicer".into(),
            topology,
            scheme: SchemeConfig::splicer(assignment),
            engine_cfg: self.engine_cfg.clone(),
            payments: self.scenario.payments.clone(),
            timeline: self.scenario.timeline.clone(),
            faults: self.scenario.faults.clone(),
            seed: self.run_seed,
            shards: self.scenario_shards(),
            placement: Some(PlacementSummary {
                hubs: plan.num_hubs(),
                management_cost: plan.management_cost(),
                synchronization_cost: plan.synchronization_cost(),
                balance_cost: plan.balance_cost(),
                omega: self.omega,
            }),
            voting_overlap: self.voting_overlap(),
        })
    }

    /// Builds a Splicer run with an explicit scheme override (Table II
    /// sweeps: path type / path count / scheduler).
    ///
    /// # Errors
    ///
    /// Same as [`SystemBuilder::build_splicer`].
    pub fn build_splicer_with<F>(&self, tweak: F) -> Result<PreparedRun>
    where
        F: FnOnce(&mut SchemeConfig),
    {
        let mut run = self.build_splicer()?;
        tweak(&mut run.scheme);
        Ok(run)
    }

    fn flat_run(&self, name: &str, scheme: SchemeConfig) -> PreparedRun {
        PreparedRun {
            name: name.into(),
            topology: self.scenario.flat.clone(),
            scheme,
            engine_cfg: self.engine_cfg.clone(),
            payments: self.scenario.payments.clone(),
            timeline: self.scenario.timeline.clone(),
            faults: self.scenario.faults.clone(),
            seed: self.run_seed,
            shards: self.scenario_shards(),
            placement: None,
            voting_overlap: self.voting_overlap(),
        }
    }

    /// Builds the Spider baseline (source routing on the flat topology).
    pub fn build_spider(&self) -> PreparedRun {
        self.flat_run("Spider", SchemeConfig::spider())
    }

    /// Builds the Flash baseline.
    pub fn build_flash(&self) -> PreparedRun {
        let mut cfg = self.engine_cfg.clone();
        cfg.max_retries = 1;
        let mut run = self.flat_run("Flash", SchemeConfig::flash(self.flash_threshold));
        run.engine_cfg = cfg;
        run
    }

    /// Builds the Landmark baseline (top candidates as landmarks).
    pub fn build_landmark(&self) -> PreparedRun {
        let landmarks: Vec<NodeId> = self.scenario.candidates.iter().copied().take(5).collect();
        self.flat_run("Landmark", SchemeConfig::landmark(landmarks))
    }

    /// Builds the A2L baseline: a single-hub star with per-transaction
    /// crypto cost at the hub.
    pub fn build_a2l(&self) -> PreparedRun {
        let hub = self.scenario.candidates[0];
        let mut rng = SimRng::seed(self.scenario.params.seed ^ 0xa21);
        let topology = PcnTopology::single_star(
            self.scenario.params.nodes,
            hub,
            &self.scenario.clients,
            &self.scenario.sampler,
            self.hub_fund_factor,
            &mut rng,
        );
        PreparedRun {
            name: "A2L".into(),
            topology,
            scheme: SchemeConfig::a2l(hub, self.a2l_crypto),
            engine_cfg: self.engine_cfg.clone(),
            payments: self.scenario.payments.clone(),
            timeline: self.scenario.timeline.clone(),
            faults: self.scenario.faults.clone(),
            seed: self.run_seed,
            shards: self.scenario_shards(),
            placement: None,
            voting_overlap: self.voting_overlap(),
        }
    }

    /// Builds the naive shortest-path strawman (deadlock demos).
    pub fn build_shortest_path(&self) -> PreparedRun {
        self.flat_run("ShortestPath", SchemeConfig::shortest_path())
    }

    /// Builds all five compared schemes (Figs. 7–8).
    ///
    /// # Errors
    ///
    /// Fails if the Splicer placement is infeasible.
    pub fn build_all(&self) -> Result<Vec<PreparedRun>> {
        Ok(vec![
            self.build_splicer()?,
            self.build_spider(),
            self.build_flash(),
            self.build_landmark(),
            self.build_a2l(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_workload::ScenarioParams;

    fn tiny_builder() -> SystemBuilder {
        SystemBuilder::new(Scenario::build(ScenarioParams::tiny()))
    }

    #[test]
    fn splicer_pipeline_builds_and_runs() {
        let report = tiny_builder().build_splicer().unwrap().run();
        assert_eq!(report.scheme, "Splicer");
        let placement = report.placement.expect("splicer has a placement");
        assert!(placement.hubs >= 1);
        assert!(placement.balance_cost > 0.0);
        assert!(report.stats.generated > 0);
        assert!(report.stats.tsr() > 0.5, "{}", report.stats);
    }

    #[test]
    fn all_schemes_run_on_shared_trace() {
        let builder = tiny_builder();
        let runs = builder.build_all().unwrap();
        assert_eq!(runs.len(), 5);
        let expected = ["Splicer", "Spider", "Flash", "Landmark", "A2L"];
        for (run, name) in runs.into_iter().zip(expected) {
            assert_eq!(run.name(), name);
            let report = run.run();
            assert_eq!(
                report.stats.generated,
                builder.scenario().payments.len() as u64,
                "{name} replays the full trace"
            );
        }
    }

    #[test]
    fn splicer_topology_is_multi_star() {
        let builder = tiny_builder();
        let run = builder.build_splicer().unwrap();
        let hubs = run
            .topology()
            .graph
            .nodes()
            .filter(|&v| run.topology().graph.degree(v) > 1)
            .count();
        // Clients are degree-1 leaves.
        let clients = builder.scenario().clients.len();
        let leaves = run
            .topology()
            .graph
            .nodes()
            .filter(|&v| run.topology().graph.degree(v) == 1)
            .count();
        assert_eq!(leaves, clients);
        assert!(hubs >= 1);
    }

    #[test]
    fn omega_changes_placement() {
        let low = tiny_builder().omega(0.01).build_splicer().unwrap();
        let high = tiny_builder().omega(50.0).build_splicer().unwrap();
        let low_hubs = low.run().placement.unwrap().hubs;
        let high_hubs = high.run().placement.unwrap().hubs;
        assert!(
            low_hubs >= high_hubs,
            "cheap sync ⇒ at least as many hubs ({low_hubs} vs {high_hubs})"
        );
    }

    #[test]
    fn voting_overlap_reported() {
        let report = tiny_builder().build_spider().run();
        assert!((0.0..=1.0).contains(&report.voting_overlap));
    }

    #[test]
    fn table2_tweaks_apply() {
        use pcn_routing::paths::PathSelect;
        use pcn_routing::scheduler::Discipline;
        let run = tiny_builder()
            .build_splicer_with(|s| {
                s.path_select = PathSelect::Ksp;
                s.discipline = Discipline::Edf;
                s.num_paths = 3;
            })
            .unwrap();
        let report = run.run();
        assert!(report.stats.generated > 0);
    }
}
