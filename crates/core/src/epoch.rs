//! The bounded-synchronous epoch model (§III-B, Fig. 5).
//!
//! At the start of epoch `e+1` every PCH obtains and synchronizes the
//! *final global information* of epoch `e` — topology, channel states,
//! payment flow rates — and makes routing decisions on that snapshot plus
//! its own clients' fresh requests. This module provides the epoch clock
//! and the snapshot structure hubs exchange; the engine consumes the
//! equivalent information through its live `BalanceView` (epoch-fresh for
//! hubs) and counts the synchronization messages.

use pcn_routing::channel::NetworkFunds;
use pcn_types::{Amount, ChannelId, EpochId, NodeId, SimDuration, SimTime};

/// Maps simulation time to epochs of fixed length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochClock {
    interval: SimDuration,
}

impl EpochClock {
    /// Creates a clock with the given epoch length.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval.
    pub fn new(interval: SimDuration) -> EpochClock {
        assert!(!interval.is_zero(), "epoch interval must be positive");
        EpochClock { interval }
    }

    /// The epoch containing `t`.
    pub fn epoch_of(&self, t: SimTime) -> EpochId {
        EpochId::new((t.as_micros() / self.interval.as_micros()) as u32)
    }

    /// Start time of epoch `e`.
    pub fn start_of(&self, e: EpochId) -> SimTime {
        SimTime::from_micros(u64::from(e.raw()) * self.interval.as_micros())
    }

    /// The epoch length.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }
}

/// Per-channel state as shared between hubs at an epoch boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelSnapshot {
    /// The channel.
    pub channel: ChannelId,
    /// Spendable balance on the `a` side.
    pub balance_a: Amount,
    /// Spendable balance on the `b` side.
    pub balance_b: Amount,
}

/// The "final global information" of one epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalState {
    /// Which epoch this snapshot finalizes.
    pub epoch: EpochId,
    /// Channel balances at the epoch boundary.
    pub channels: Vec<ChannelSnapshot>,
}

impl GlobalState {
    /// Captures the global state from live funds.
    pub fn capture(
        epoch: EpochId,
        funds: &NetworkFunds,
        endpoints: &[(NodeId, NodeId)],
    ) -> GlobalState {
        let channels = endpoints
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                let ch = ChannelId::from_index(i);
                ChannelSnapshot {
                    channel: ch,
                    balance_a: funds.balance(ch, a),
                    balance_b: funds.balance(ch, b),
                }
            })
            .collect();
        GlobalState { epoch, channels }
    }

    /// Total spendable liquidity in the snapshot.
    pub fn total_spendable(&self) -> Amount {
        self.channels
            .iter()
            .map(|c| c.balance_a + c.balance_b)
            .sum()
    }

    /// Number of messages needed to disseminate this snapshot among
    /// `hubs` PCHs (full pairwise exchange, as counted in the engine's
    /// overhead metric).
    pub fn sync_messages(hubs: usize) -> usize {
        hubs.saturating_mul(hubs.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_graph::Graph;

    #[test]
    fn epoch_arithmetic() {
        let clock = EpochClock::new(SimDuration::from_millis(200));
        assert_eq!(clock.epoch_of(SimTime::ZERO), EpochId::new(0));
        assert_eq!(
            clock.epoch_of(SimTime::from_micros(199_999)),
            EpochId::new(0)
        );
        assert_eq!(
            clock.epoch_of(SimTime::from_micros(200_000)),
            EpochId::new(1)
        );
        assert_eq!(
            clock.start_of(EpochId::new(3)),
            SimTime::from_micros(600_000)
        );
        assert_eq!(clock.interval(), SimDuration::from_millis(200));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_panics() {
        EpochClock::new(SimDuration::ZERO);
    }

    #[test]
    fn capture_reflects_funds() {
        let mut g = Graph::new(3);
        let c0 = g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(1), NodeId::new(2));
        let mut funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        funds
            .lock(c0, NodeId::new(0), Amount::from_tokens(4))
            .unwrap();
        let endpoints = vec![
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(1), NodeId::new(2)),
        ];
        let snap = GlobalState::capture(EpochId::new(2), &funds, &endpoints);
        assert_eq!(snap.epoch, EpochId::new(2));
        assert_eq!(snap.channels.len(), 2);
        assert_eq!(snap.channels[0].balance_a, Amount::from_tokens(6));
        assert_eq!(snap.channels[0].balance_b, Amount::from_tokens(10));
        // Locked funds are absent from the snapshot (in flight).
        assert_eq!(snap.total_spendable(), Amount::from_tokens(36));
    }

    #[test]
    fn sync_message_count() {
        assert_eq!(GlobalState::sync_messages(0), 0);
        assert_eq!(GlobalState::sync_messages(1), 0);
        assert_eq!(GlobalState::sync_messages(4), 12);
    }
}
