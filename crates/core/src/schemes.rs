//! Scheme capability metadata (Table I).
//!
//! The paper's Table I compares ten systems across six properties. The
//! matrix below encodes the paper's claims so the `table1` harness can
//! regenerate the table, and tests pin the rows the paper asserts.

/// The six properties of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// Improving throughput.
    pub improving_throughput: bool,
    /// Support large transactions.
    pub large_transactions: bool,
    /// Payment channel balance.
    pub channel_balance: bool,
    /// Deadlock-free routing.
    pub deadlock_free: bool,
    /// Transaction unlinkability.
    pub unlinkability: bool,
    /// Optimal hub placement.
    pub optimal_placement: bool,
}

/// One row of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchemeRow {
    /// Scheme name as printed in the table.
    pub name: &'static str,
    /// Venue annotation from the paper (empty when none given).
    pub venue: &'static str,
    /// The capability column values.
    pub caps: Capabilities,
}

/// The full Table I matrix, in the paper's column order.
pub const TABLE1: [SchemeRow; 10] = [
    SchemeRow {
        name: "Lightning/Raiden",
        venue: "",
        caps: Capabilities {
            improving_throughput: false,
            large_transactions: false,
            channel_balance: false,
            deadlock_free: false,
            unlinkability: false,
            optimal_placement: false,
        },
    },
    SchemeRow {
        name: "Flare/Sprites",
        venue: "FC '19",
        caps: Capabilities {
            improving_throughput: true,
            large_transactions: false,
            channel_balance: false,
            deadlock_free: false,
            unlinkability: false,
            optimal_placement: false,
        },
    },
    SchemeRow {
        name: "REVIVE",
        venue: "CCS '17",
        caps: Capabilities {
            improving_throughput: true,
            large_transactions: false,
            channel_balance: true,
            deadlock_free: false,
            unlinkability: false,
            optimal_placement: false,
        },
    },
    SchemeRow {
        name: "Spider",
        venue: "NSDI '20",
        caps: Capabilities {
            improving_throughput: true,
            large_transactions: true,
            channel_balance: true,
            deadlock_free: true,
            unlinkability: false,
            optimal_placement: false,
        },
    },
    SchemeRow {
        name: "Flash",
        venue: "CoNEXT '19",
        caps: Capabilities {
            improving_throughput: true,
            large_transactions: true,
            channel_balance: false,
            deadlock_free: false,
            unlinkability: false,
            optimal_placement: false,
        },
    },
    SchemeRow {
        name: "TumbleBit",
        venue: "NDSS '17",
        caps: Capabilities {
            improving_throughput: false,
            large_transactions: false,
            channel_balance: false,
            deadlock_free: false,
            unlinkability: true,
            optimal_placement: false,
        },
    },
    SchemeRow {
        name: "A2L",
        venue: "S&P '21",
        caps: Capabilities {
            improving_throughput: false,
            large_transactions: false,
            channel_balance: false,
            deadlock_free: false,
            unlinkability: true,
            optimal_placement: false,
        },
    },
    SchemeRow {
        name: "Perun",
        venue: "S&P '19",
        caps: Capabilities {
            improving_throughput: true,
            large_transactions: false,
            channel_balance: false,
            deadlock_free: false,
            unlinkability: false,
            optimal_placement: false,
        },
    },
    SchemeRow {
        name: "Commit-Chains",
        venue: "",
        caps: Capabilities {
            improving_throughput: true,
            large_transactions: false,
            channel_balance: false,
            deadlock_free: false,
            unlinkability: true,
            optimal_placement: false,
        },
    },
    SchemeRow {
        name: "Splicer (this work)",
        venue: "ICDCS '23",
        caps: Capabilities {
            improving_throughput: true,
            large_transactions: true,
            channel_balance: true,
            deadlock_free: true,
            unlinkability: true,
            optimal_placement: true,
        },
    },
];

/// Renders Table I as markdown.
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(
        "| Scheme | Throughput | Large tx | Balance | Deadlock-free | Unlinkable | Placement |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    for row in TABLE1 {
        let mark = |b: bool| if b { "✓" } else { "–" };
        out.push_str(&format!(
            "| {} {} | {} | {} | {} | {} | {} | {} |\n",
            row.name,
            if row.venue.is_empty() {
                String::new()
            } else {
                format!("({})", row.venue)
            },
            mark(row.caps.improving_throughput),
            mark(row.caps.large_transactions),
            mark(row.caps.channel_balance),
            mark(row.caps.deadlock_free),
            mark(row.caps.unlinkability),
            mark(row.caps.optimal_placement),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str) -> SchemeRow {
        TABLE1
            .iter()
            .find(|r| r.name.starts_with(name))
            .copied()
            .unwrap_or_else(|| panic!("row {name} missing"))
    }

    #[test]
    fn splicer_claims_every_property() {
        let s = row("Splicer").caps;
        assert!(
            s.improving_throughput
                && s.large_transactions
                && s.channel_balance
                && s.deadlock_free
                && s.unlinkability
                && s.optimal_placement
        );
    }

    #[test]
    fn only_splicer_has_placement() {
        let with_placement: Vec<&str> = TABLE1
            .iter()
            .filter(|r| r.caps.optimal_placement)
            .map(|r| r.name)
            .collect();
        assert_eq!(with_placement, vec!["Splicer (this work)"]);
    }

    #[test]
    fn spider_is_deadlock_free_but_not_unlinkable() {
        let s = row("Spider").caps;
        assert!(s.deadlock_free && !s.unlinkability);
    }

    #[test]
    fn pch_schemes_are_unlinkable() {
        for name in ["TumbleBit", "A2L", "Commit-Chains"] {
            assert!(row(name).caps.unlinkability, "{name}");
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let md = render_table1();
        assert_eq!(md.lines().count(), 2 + TABLE1.len());
        assert!(md.contains("Splicer"));
        assert!(md.contains("✓"));
    }
}
