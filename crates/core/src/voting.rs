//! Multiwinner voting for the smooth-node candidate list (§III-B).
//!
//! "Splicer runs a multiwinner voting algorithm in the smart contract that
//! effectively allows all entities to fairly select a smooth node candidate
//! list … (i) Excellence means the selected candidates are better for
//! outsourcing routing tasks (e.g., have more client connections,
//! transaction funds, and lower operational overhead). (ii) Diversity means
//! that the candidate positions are as diverse as possible."
//!
//! We implement the greedy submodular multiwinner rule: each round picks
//! the node maximizing `excellence + λ_div · min-hop-distance to the
//! already-elected set`, the standard (1−1/e)-style greedy for coverage-
//! flavoured committee selection. The paper leaves the optimal rule as
//! future work; this captures both stated criteria.

use pcn_graph::{bfs_hops, Graph};
use pcn_routing::channel::NetworkFunds;
use pcn_types::NodeId;

/// Weights for the two voting criteria.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VotingWeights {
    /// Weight of normalized degree (client connections).
    pub degree: f64,
    /// Weight of normalized adjacent funds (transaction funds).
    pub funds: f64,
    /// Weight of closeness to the rest of the network (lower average hops
    /// = lower operational overhead).
    pub closeness: f64,
    /// Weight of diversity (distance to already-elected candidates).
    pub diversity: f64,
}

impl Default for VotingWeights {
    fn default() -> Self {
        VotingWeights {
            degree: 1.0,
            funds: 1.0,
            closeness: 1.0,
            diversity: 1.5,
        }
    }
}

/// Elects `committee_size` candidates from the nodes of `g`.
///
/// Returns the elected nodes in election order (strongest first). The
/// result is deterministic: ties break towards lower node ids.
///
/// # Examples
///
/// ```
/// use splicer_core::voting::{elect_candidates, VotingWeights};
/// use pcn_routing::channel::NetworkFunds;
/// use pcn_types::Amount;
///
/// let g = pcn_graph::star(7); // node 0 is the obvious winner
/// let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
/// let elected = elect_candidates(&g, &funds, 3, VotingWeights::default());
/// assert_eq!(elected[0], pcn_types::NodeId::new(0));
/// assert_eq!(elected.len(), 3);
/// ```
pub fn elect_candidates(
    g: &Graph,
    funds: &NetworkFunds,
    committee_size: usize,
    weights: VotingWeights,
) -> Vec<NodeId> {
    let n = g.node_count();
    if n == 0 || committee_size == 0 {
        return Vec::new();
    }
    let committee_size = committee_size.min(n);
    // Excellence ingredients, normalized to [0, 1].
    let degrees: Vec<f64> = (0..n)
        .map(|i| g.degree(NodeId::from_index(i)) as f64)
        .collect();
    let max_degree = degrees.iter().fold(1.0f64, |a, &b| a.max(b));
    let adjacent_funds: Vec<f64> = (0..n)
        .map(|i| {
            let v = NodeId::from_index(i);
            g.out_edges(v)
                .map(|e| funds.total(e.id).to_tokens_f64())
                .sum::<f64>()
        })
        .collect();
    let max_funds = adjacent_funds.iter().fold(1.0f64, |a, &b| a.max(b));
    // Closeness: 1 / (1 + mean hops to all nodes). BFS per node is O(VE)
    // total; fine at candidate-list scale. For big graphs sample sources.
    let closeness: Vec<f64> = (0..n)
        .map(|i| {
            let hops = bfs_hops(g, NodeId::from_index(i));
            let (sum, cnt) = hops
                .iter()
                .filter(|&&h| h != u32::MAX && h > 0)
                .fold((0u64, 0u64), |(s, c), &h| (s + u64::from(h), c + 1));
            if cnt == 0 {
                0.0
            } else {
                1.0 / (1.0 + sum as f64 / cnt as f64)
            }
        })
        .collect();
    let excellence: Vec<f64> = (0..n)
        .map(|i| {
            weights.degree * degrees[i] / max_degree
                + weights.funds * adjacent_funds[i] / max_funds
                + weights.closeness * closeness[i]
        })
        .collect();

    let mut elected: Vec<NodeId> = Vec::new();
    let mut min_dist_to_elected: Vec<f64> = vec![f64::INFINITY; n];
    for _ in 0..committee_size {
        let diameter_norm = (n as f64).sqrt().max(1.0);
        let best = (0..n)
            .filter(|&i| !elected.contains(&NodeId::from_index(i)))
            .max_by(|&a, &b| {
                let score = |i: usize| {
                    let div = if elected.is_empty() {
                        0.0
                    } else {
                        (min_dist_to_elected[i] / diameter_norm).min(1.0)
                    };
                    excellence[i] + weights.diversity * div
                };
                score(a).total_cmp(&score(b)).then(b.cmp(&a)) // lower id wins ties
            });
        let Some(winner) = best else { break };
        let w = NodeId::from_index(winner);
        elected.push(w);
        let hops = bfs_hops(g, w);
        for i in 0..n {
            let d = if hops[i] == u32::MAX {
                f64::INFINITY
            } else {
                f64::from(hops[i])
            };
            min_dist_to_elected[i] = min_dist_to_elected[i].min(d);
        }
    }
    elected
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_sim::SimRng;
    use pcn_types::Amount;

    #[test]
    fn star_hub_elected_first() {
        let g = pcn_graph::star(10);
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(5));
        let elected = elect_candidates(&g, &funds, 4, VotingWeights::default());
        assert_eq!(elected[0], NodeId::new(0));
        assert_eq!(elected.len(), 4);
    }

    #[test]
    fn diversity_spreads_committee_on_ring() {
        let g = pcn_graph::ring(12);
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(5));
        let elected = elect_candidates(&g, &funds, 3, VotingWeights::default());
        // On a symmetric ring, diversity forces the committee apart:
        // pairwise hop distance must exceed 2.
        for (i, &a) in elected.iter().enumerate() {
            for &b in elected.iter().skip(i + 1) {
                let hops = bfs_hops(&g, a);
                assert!(hops[b.index()] >= 3, "{a} and {b} too close");
            }
        }
    }

    #[test]
    fn funds_break_degree_ties() {
        // Two identical-degree nodes; one is adjacent to a fat channel.
        let mut g = pcn_graph::Graph::new(4);
        let fat = g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(2), NodeId::new(3));
        g.add_edge(NodeId::new(1), NodeId::new(2));
        let funds = NetworkFunds::from_graph(&g, |id, _| {
            if id == fat {
                Amount::from_tokens(1_000)
            } else {
                Amount::from_tokens(1)
            }
        });
        let elected = elect_candidates(&g, &funds, 1, VotingWeights::default());
        assert!(elected[0] == NodeId::new(0) || elected[0] == NodeId::new(1));
    }

    #[test]
    fn committee_bounded_by_node_count() {
        let g = pcn_graph::ring(4);
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(1));
        assert_eq!(
            elect_candidates(&g, &funds, 99, VotingWeights::default()).len(),
            4
        );
        assert!(elect_candidates(&g, &funds, 0, VotingWeights::default()).is_empty());
    }

    #[test]
    fn deterministic() {
        let mut rng = SimRng::seed(5);
        let g = pcn_graph::watts_strogatz(40, 4, 0.3, rng.as_rand());
        let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        let a = elect_candidates(&g, &funds, 6, VotingWeights::default());
        let b = elect_candidates(&g, &funds, 6, VotingWeights::default());
        assert_eq!(a, b);
    }
}
