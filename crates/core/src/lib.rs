//! Splicer, end to end: the paper's system assembled from the workspace
//! substrates.
//!
//! The crate glues together the pipeline of Figs. 4–6:
//!
//! 1. [`voting`] — the community multiwinner vote electing the smooth-node
//!    *candidate list* (trust model, §III-B), balancing **excellence**
//!    (connectivity, funds, proximity to clients) and **diversity**
//!    (geographic spread).
//! 2. [`pcn_placement`] — the placement optimization choosing the *actual
//!    PCHs* from the candidates and assigning every client (§IV-B/C).
//! 3. [`pcn_workload::topology`] — the multi-star rewiring (Fig. 2b,
//!    including "the removal of redundant payment channels" of Fig. 4).
//! 4. [`workflow`] — the encrypted payment workflow of §III-A (KMG key
//!    issuance, envelope encryption of demands, TU-level unlinkability,
//!    acknowledgement aggregation).
//! 5. [`pcn_routing`] — the deadlock-free rate-based routing protocol
//!    (§IV-D) executed by the discrete-event engine.
//!
//! [`system`] exposes one-call builders for Splicer and every baseline
//! (Spider, Flash, Landmark, A2L), all replaying the *same* payment trace
//! on the *same* world — the apples-to-apples comparison behind Figs. 7–8.
//!
//! # Quickstart
//!
//! ```
//! use splicer_core::system::SystemBuilder;
//! use pcn_workload::{Scenario, ScenarioParams};
//!
//! let scenario = Scenario::build(ScenarioParams::tiny());
//! let report = SystemBuilder::new(scenario).build_splicer().unwrap().run();
//! assert_eq!(report.scheme, "Splicer");
//! assert!(report.stats.tsr() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod schemes;
pub mod system;
pub mod voting;
pub mod workflow;

pub use system::{PreparedRun, RunReport, SystemBuilder};
