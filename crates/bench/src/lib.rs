//! Shared harness for regenerating the paper's tables and figures.
//!
//! Every `fig*`/`table*` binary in `src/bin` drives the same machinery:
//! describe the sweep as a `pcn-harness` [`ExperimentGrid`], fan the
//! cells across worker threads, and print the series the paper plots.
//! All schemes within a sweep point replay the identical payment trace
//! (the grid's `Shared` seed policy), so the comparison stays
//! apples-to-apples while cells run in parallel. Absolute numbers differ
//! from the paper (different hardware, a simulator instead of LND); the
//! *shapes* are the reproduction target — see EXPERIMENTS.md.

#![forbid(unsafe_code)]

use pcn_harness::{CellResult, ExperimentGrid};
use pcn_types::SimDuration;
use pcn_workload::ScenarioParams;

/// One measured point of a sweep.
#[derive(Clone, Debug)]
pub struct Point {
    /// Scheme name.
    pub scheme: String,
    /// Sweep x value.
    pub x: f64,
    /// Transaction success ratio.
    pub tsr: f64,
    /// Normalized throughput.
    pub throughput: f64,
    /// Mean completion latency (seconds).
    pub latency: f64,
    /// Overhead (messages × hops).
    pub overhead: u64,
    /// Drained channel directions at end (deadlock symptom).
    pub drained: usize,
}

impl Point {
    /// Builds a point from a grid cell result.
    pub fn from_cell(c: &CellResult) -> Point {
        Point {
            scheme: c.scheme.clone(),
            x: c.x,
            tsr: c.stats.tsr(),
            throughput: c.stats.normalized_throughput(),
            latency: c.stats.avg_latency_secs(),
            overhead: c.stats.overhead_msgs,
            drained: c.stats.drained_directions_end,
        }
    }
}

/// Which scale a figure runs at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// 100-node network (Fig. 7).
    Small,
    /// 3000-node network (Fig. 8).
    Large,
}

/// Harness-wide run options.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Reduce durations/sweep points for a fast smoke run (`--quick`).
    pub quick: bool,
    /// Root seed.
    pub seed: u64,
    /// Worker threads for grid execution (`--workers N`).
    pub workers: usize,
}

impl HarnessOpts {
    /// Parses `--quick`, `--seed N` and `--workers N` from the raw CLI
    /// args, returning the remaining positional args.
    pub fn from_args() -> (HarnessOpts, Vec<String>) {
        let mut opts = HarnessOpts {
            quick: false,
            seed: 1,
            workers: default_workers(),
        };
        let mut rest = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs a number");
                }
                "--workers" => {
                    opts.workers = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&w| w > 0)
                        .expect("--workers needs a positive number");
                }
                _ => rest.push(a),
            }
        }
        (opts, rest)
    }

    /// Scenario parameters for a scale under these options.
    pub fn params(&self, scale: Scale) -> ScenarioParams {
        let mut p = match scale {
            Scale::Small => ScenarioParams::small(),
            Scale::Large => ScenarioParams::large(),
        };
        p.seed = self.seed;
        if self.quick {
            p.duration = SimDuration::from_secs(15);
            if scale == Scale::Large {
                p.nodes = 600;
                p.candidate_count = 20;
                p.arrivals_per_sec = 40.0;
            }
        } else if scale == Scale::Large {
            // Full large scale is expensive; keep the trace bounded.
            p.duration = SimDuration::from_secs(30);
            p.arrivals_per_sec = 60.0;
        }
        p
    }
}

/// Worker-thread default: the machine's parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs a grid and maps its cells to plot points.
pub fn run_grid(grid: &ExperimentGrid, workers: usize) -> Vec<Point> {
    grid.run(workers).iter().map(Point::from_cell).collect()
}

/// Prints a sweep as a markdown table, one row per x value, one column per
/// scheme, using the selected metric.
pub fn print_series(
    title: &str,
    xlabel: &str,
    points: &[Point],
    metric: fn(&Point) -> f64,
    unit: &str,
) {
    println!("\n## {title}\n");
    let mut schemes: Vec<String> = Vec::new();
    for p in points {
        if !schemes.contains(&p.scheme) {
            schemes.push(p.scheme.clone());
        }
    }
    let mut xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    print!("| {xlabel} |");
    for s in &schemes {
        print!(" {s} |");
    }
    println!();
    print!("|---|");
    for _ in &schemes {
        print!("---|");
    }
    println!();
    for &x in &xs {
        print!("| {x} |");
        for s in &schemes {
            let v = points
                .iter()
                .find(|p| p.x == x && &p.scheme == s)
                .map(&metric)
                .unwrap_or(f64::NAN);
            print!(" {v:.3}{unit} |");
        }
        println!();
    }
}

/// CSV dump for downstream plotting.
pub fn print_csv(points: &[Point]) {
    println!("\nscheme,x,tsr,throughput,latency_s,overhead_msgs,drained");
    for p in points {
        println!(
            "{},{},{:.4},{:.4},{:.4},{},{}",
            p.scheme, p.x, p.tsr, p.throughput, p.latency, p.overhead, p.drained
        );
    }
}

/// The Fig. 7/8 driver shared by the `fig7` and `fig8` binaries.
pub mod figures {
    use super::*;

    /// Runs the requested panel(s) of Fig. 7 (small) or Fig. 8 (large).
    pub fn run(scale: Scale, opts: &HarnessOpts, which: &str) {
        let label = match scale {
            Scale::Small => "Fig. 7 (small scale, 100 nodes)",
            Scale::Large => "Fig. 8 (large scale)",
        };
        println!("# {label}");

        if which == "a" || which == "all" {
            let scales: &[f64] = if opts.quick {
                &[0.5, 2.0, 8.0]
            } else {
                &[0.5, 1.0, 2.0, 4.0, 8.0]
            };
            let grid = ExperimentGrid::new(opts.params(scale)).sweep_channel_scale(scales);
            let pts = run_grid(&grid, opts.workers);
            print_series(
                "(a) Influence of the channel size — TSR",
                "channel scale",
                &pts,
                |p| p.tsr,
                "",
            );
            print_csv(&pts);
        }

        if which == "b" || which == "all" {
            let sizes: &[f64] = if opts.quick {
                &[4.0, 12.0, 32.0]
            } else {
                &[4.0, 8.0, 12.0, 20.0, 32.0]
            };
            let grid = ExperimentGrid::new(opts.params(scale)).sweep_mean_tx(sizes);
            let pts = run_grid(&grid, opts.workers);
            print_series(
                "(b) Influence of the transaction size — TSR",
                "mean tx (tokens)",
                &pts,
                |p| p.tsr,
                "",
            );
            print_csv(&pts);
        }

        if which == "c" || which == "d" || which == "all" {
            let taus: &[u64] = if opts.quick {
                &[100, 400, 800]
            } else {
                &[100, 200, 400, 600, 800]
            };
            let grid = ExperimentGrid::new(opts.params(scale)).sweep_tau_ms(taus);
            let pts = run_grid(&grid, opts.workers);
            if which != "d" {
                print_series(
                    "(c) Influence of the update time — TSR",
                    "τ (ms)",
                    &pts,
                    |p| p.tsr,
                    "",
                );
            }
            if which != "c" {
                print_series(
                    "(d) Normalized throughput",
                    "τ (ms)",
                    &pts,
                    |p| p.throughput,
                    "",
                );
            }
            print_csv(&pts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_workload::SchemeChoice;

    #[test]
    fn quick_params_shrink_scale() {
        let opts = HarnessOpts {
            quick: true,
            seed: 3,
            workers: 1,
        };
        let p = opts.params(Scale::Large);
        assert!(p.nodes < 3000);
        assert_eq!(p.seed, 3);
        let p = opts.params(Scale::Small);
        assert_eq!(p.nodes, 100);
    }

    #[test]
    fn point_from_cell_maps_metrics() {
        let grid = ExperimentGrid::new(ScenarioParams::tiny())
            .schemes([SchemeChoice::Spider])
            .sweep_channel_scale(&[2.5]);
        let cells = grid.run(1);
        let p = Point::from_cell(&cells[0]);
        assert_eq!(p.scheme, "Spider");
        assert_eq!(p.x, 2.5);
        assert!((p.tsr - cells[0].stats.tsr()).abs() < 1e-12);
    }
}
