//! Diagnostic: full stats breakdown per scheme on one configuration.
//!
//! Usage: `cargo run --release -p splicer-bench --bin probe -- [channel_scale] [--workers N]`

use pcn_harness::ExperimentGrid;
use splicer_bench::{HarnessOpts, Scale};

fn main() {
    let (opts, rest) = HarnessOpts::from_args();
    let scale: f64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let mut p = opts.params(Scale::Small);
    p.channel_scale = scale;
    let grid = ExperimentGrid::new(p).sweep_channel_scale(&[scale]);
    for r in grid.run(opts.workers) {
        let s = &r.stats;
        println!(
            "{:12} tsr={:.3} thr={:.3} lat={:.3}s gen={} done={} fail={} unroutable={} \
             tus: del={} abort={} marked={} drained={} hubs={:?} \
             cache={}h/{}m/{}i[{}t/{}f/{}p/{}fp]/{}e ({:.0}% hit) world={}ev/{}exp \
             adv={}f/{}g/{}dl honest={:.3} planner={}gd/{}lr/{}ns pps={:.0}",
            r.scheme,
            s.tsr(),
            s.normalized_throughput(),
            s.avg_latency_secs(),
            s.generated,
            s.completed,
            s.failed,
            s.unroutable,
            s.delivered_tus,
            s.aborted_tus,
            s.marked_tus,
            s.drained_directions_end,
            r.placement_hubs,
            s.path_cache.hits,
            s.path_cache.misses,
            s.path_cache.invalidations(),
            s.path_cache.inv_topology,
            s.path_cache.inv_funds,
            s.path_cache.inv_price,
            s.path_cache.inv_footprint,
            s.path_cache.evictions,
            100.0 * s.path_cache.hit_rate(),
            s.world_events_applied,
            s.tus_expired_by_close,
            s.faults_injected,
            s.griefed_locks,
            s.deadlocks_detected,
            s.honest_tsr(),
            s.goal_directed_plans,
            s.landmark_rebuilds,
            s.nodes_settled,
            s.payments_per_sec(),
        );
    }
}
