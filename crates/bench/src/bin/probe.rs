//! Diagnostic: full stats breakdown per scheme on one configuration.
//!
//! Usage: `cargo run --release -p splicer-bench --bin probe -- [channel_scale]`

use pcn_workload::Scenario;
use splicer_bench::{HarnessOpts, Scale};
use splicer_core::SystemBuilder;

fn main() {
    let (opts, rest) = HarnessOpts::from_args();
    let scale: f64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let mut p = opts.params(Scale::Small);
    p.channel_scale = scale;
    let scenario = Scenario::build(p);
    let builder = SystemBuilder::new(scenario);
    for run in builder.build_all().expect("feasible") {
        let name = run.name().to_string();
        let r = run.run();
        let s = &r.stats;
        println!(
            "{name:12} tsr={:.3} thr={:.3} lat={:.3}s gen={} done={} fail={} unroutable={} \
             tus: del={} abort={} marked={} drained={} hubs={:?}",
            s.tsr(),
            s.normalized_throughput(),
            s.avg_latency_secs(),
            s.generated,
            s.completed,
            s.failed,
            s.unroutable,
            s.delivered_tus,
            s.aborted_tus,
            s.marked_tus,
            s.drained_directions_end,
            r.placement.map(|p| p.hubs),
        );
    }
}
