//! Ablation study: which of Splicer's mechanisms buys what.
//!
//! Usage: `cargo run --release -p splicer-bench --bin ablation -- [--quick] [--seed N]`
//!
//! Starting from full Splicer, each row disables one mechanism:
//! * no rate control (eq. 26 off — TUs blast immediately),
//! * no congestion control (no queues/windows — Lightning-style instant
//!   failure on empty channels),
//! * stale knowledge (capacity-only path selection instead of the
//!   epoch-fresh balance view),
//! * single path (k = 1 instead of 5).

use pcn_routing::paths::BalanceView;
use pcn_workload::Scenario;
use splicer_bench::{HarnessOpts, Scale};
use splicer_core::SystemBuilder;

fn main() {
    let (opts, _) = HarnessOpts::from_args();
    println!("# Ablation: Splicer minus one mechanism at a time");
    println!("(small scale, capacity-stressed: channel scale 0.5)\n");
    let mut params = opts.params(Scale::Small);
    params.channel_scale = 0.5;
    let scenario = Scenario::build(params);
    let builder = SystemBuilder::new(scenario);

    let variants: Vec<(&str, Box<dyn Fn(&mut pcn_routing::SchemeConfig)>)> = vec![
        ("full Splicer", Box::new(|_| {})),
        (
            "− rate control",
            Box::new(|s| s.rate_control = false),
        ),
        (
            "− congestion control",
            Box::new(|s| {
                s.rate_control = false;
                s.congestion_control = false;
            }),
        ),
        (
            "− fresh state (capacity view)",
            Box::new(|s| s.balance_view = BalanceView::CapacityOnly),
        ),
        ("− multipath (k = 1)", Box::new(|s| s.num_paths = 1)),
    ];

    println!("| variant | TSR | throughput | latency (s) | aborted TUs |");
    println!("|---|---|---|---|---|");
    for (name, tweak) in variants {
        let report = builder
            .build_splicer_with(|s| tweak(s))
            .expect("feasible placement")
            .run();
        println!(
            "| {name} | {:.3} | {:.3} | {:.3} | {} |",
            report.stats.tsr(),
            report.stats.normalized_throughput(),
            report.stats.avg_latency_secs(),
            report.stats.aborted_tus,
        );
    }
}
