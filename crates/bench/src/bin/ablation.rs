//! Ablation study: which of Splicer's mechanisms buys what.
//!
//! Usage: `cargo run --release -p splicer-bench --bin ablation -- [--quick] [--seed N] [--workers N]`
//!
//! Starting from full Splicer, each row disables one mechanism:
//! * no rate control (eq. 26 off — TUs blast immediately),
//! * no congestion control (no queues/windows — Lightning-style instant
//!   failure on empty channels),
//! * stale knowledge (capacity-only path selection instead of the
//!   epoch-fresh balance view),
//! * single path (k = 1 instead of 5).
//!
//! The five variants form one grid and run in parallel.

use pcn_harness::{ExperimentGrid, Overrides, SchemeTuning};
use pcn_routing::paths::BalanceView;
use pcn_workload::SchemeChoice;
use splicer_bench::{HarnessOpts, Scale};

fn main() {
    let (opts, _) = HarnessOpts::from_args();
    println!("# Ablation: Splicer minus one mechanism at a time");
    println!("(small scale, capacity-stressed: channel scale 0.5)\n");
    let mut params = opts.params(Scale::Small);
    params.channel_scale = 0.5;

    let variants: [(&str, SchemeTuning); 5] = [
        ("full Splicer", SchemeTuning::default()),
        (
            "− rate control",
            SchemeTuning {
                rate_control: Some(false),
                ..SchemeTuning::default()
            },
        ),
        (
            "− congestion control",
            SchemeTuning {
                rate_control: Some(false),
                congestion_control: Some(false),
                ..SchemeTuning::default()
            },
        ),
        (
            "− fresh state (capacity view)",
            SchemeTuning {
                balance_view: Some(BalanceView::CapacityOnly),
                ..SchemeTuning::default()
            },
        ),
        (
            "− multipath (k = 1)",
            SchemeTuning {
                num_paths: Some(1),
                ..SchemeTuning::default()
            },
        ),
    ];

    let mut grid = ExperimentGrid::new(params).schemes([SchemeChoice::Splicer]);
    for (name, tuning) in &variants {
        grid = grid.variant(
            *name,
            0.0,
            Overrides {
                scheme: *tuning,
                ..Overrides::default()
            },
        );
    }
    let results = grid.run(opts.workers);

    println!("| variant | TSR | throughput | latency (s) | aborted TUs |");
    println!("|---|---|---|---|---|");
    for r in &results {
        println!(
            "| {} | {:.3} | {:.3} | {:.3} | {} |",
            r.label,
            r.stats.tsr(),
            r.stats.normalized_throughput(),
            r.stats.avg_latency_secs(),
            r.stats.aborted_tus,
        );
    }
}
