//! Regenerates Table II: the influence of routing choices on Splicer's TSR.
//!
//! Usage: `cargo run --release -p splicer-bench --bin table2 -- [--quick] [--seed N] [--workers N]`
//!
//! Three ablations at both scales: path type {KSP, Heuristic, EDW, EDS},
//! path count {1, 3, 5, 7} and queue scheduler {FIFO, LIFO, SPF, EDF}.
//! All twelve rows per scale form one experiment grid and run in
//! parallel.

use pcn_harness::{ExperimentGrid, Overrides, RunTuning, SchemeTuning};
use pcn_routing::paths::PathSelect;
use pcn_routing::scheduler::Discipline;
use pcn_workload::SchemeChoice;
use splicer_bench::{HarnessOpts, Scale};

fn main() {
    let (opts, _) = HarnessOpts::from_args();
    println!("# Table II: influence of routing choices on Splicer (TSR)");
    println!("(capacity-stressed configuration: channel scale 0.5, lean hub");
    println!("funding, ω = 0.01 — routing choices only differentiate when the");
    println!("hub backbone itself is a bottleneck)");
    for scale in [Scale::Small, Scale::Large] {
        let name = match scale {
            Scale::Small => "Small",
            Scale::Large => "Large",
        };
        let mut params = opts.params(scale);
        params.channel_scale = 0.5;
        let base = Overrides {
            tuning: RunTuning {
                omega: Some(0.01),
                hub_fund_factor: Some(3.0),
                ..RunTuning::default()
            },
            ..Overrides::default()
        };
        let mut grid = ExperimentGrid::new(params)
            .schemes([SchemeChoice::Splicer])
            .base_overrides(base);
        // Rows 0–3: path type; 4–7: path count (EDW); 8–11: scheduler.
        for ps in PathSelect::ALL {
            grid = grid.variant(
                format!("path:{ps:?}"),
                0.0,
                Overrides {
                    scheme: SchemeTuning {
                        path_select: Some(ps),
                        ..SchemeTuning::default()
                    },
                    ..Overrides::default()
                },
            );
        }
        for k in [1usize, 3, 5, 7] {
            grid = grid.variant(
                format!("k:{k}"),
                k as f64,
                Overrides {
                    scheme: SchemeTuning {
                        num_paths: Some(k),
                        ..SchemeTuning::default()
                    },
                    ..Overrides::default()
                },
            );
        }
        for d in Discipline::ALL {
            grid = grid.variant(
                format!("sched:{d:?}"),
                0.0,
                Overrides {
                    scheme: SchemeTuning {
                        discipline: Some(d),
                        ..SchemeTuning::default()
                    },
                    ..Overrides::default()
                },
            );
        }
        let results = grid.run(opts.workers);
        let tsr_row = |range: std::ops::Range<usize>| {
            let mut row = String::from("|");
            for r in &results[range] {
                row.push_str(&format!(" {:.2}% |", r.stats.tsr() * 100.0));
            }
            row
        };

        println!("\n## {name} scale — path type\n");
        println!("| KSP | Heuristic | EDW | EDS |");
        println!("|---|---|---|---|");
        println!("{}", tsr_row(0..4));

        println!("\n## {name} scale — path number (EDW)\n");
        println!("| 1 | 3 | 5 | 7 |");
        println!("|---|---|---|---|");
        println!("{}", tsr_row(4..8));

        println!("\n## {name} scale — scheduling algorithm\n");
        println!("| FIFO | LIFO | SPF | EDF |");
        println!("|---|---|---|---|");
        println!("{}", tsr_row(8..12));
    }
}
