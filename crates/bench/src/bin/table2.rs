//! Regenerates Table II: the influence of routing choices on Splicer's TSR.
//!
//! Usage: `cargo run --release -p splicer-bench --bin table2 -- [--quick] [--seed N]`
//!
//! Three ablations at both scales: path type {KSP, Heuristic, EDW, EDS},
//! path count {1, 3, 5, 7} and queue scheduler {FIFO, LIFO, SPF, EDF}.

use pcn_routing::paths::PathSelect;
use pcn_routing::scheduler::Discipline;
use pcn_workload::Scenario;
use splicer_bench::{HarnessOpts, Scale};
use splicer_core::SystemBuilder;

fn tsr_with<F>(builder: &SystemBuilder, tweak: F) -> f64
where
    F: FnOnce(&mut pcn_routing::SchemeConfig),
{
    builder
        .build_splicer_with(tweak)
        .expect("feasible placement")
        .run()
        .stats
        .tsr()
}

fn main() {
    let (opts, _) = HarnessOpts::from_args();
    println!("# Table II: influence of routing choices on Splicer (TSR)");
    println!("(capacity-stressed configuration: channel scale 0.5, lean hub");
    println!("funding, ω = 0.01 — routing choices only differentiate when the");
    println!("hub backbone itself is a bottleneck)");
    for scale in [Scale::Small, Scale::Large] {
        let name = match scale {
            Scale::Small => "Small",
            Scale::Large => "Large",
        };
        let mut params = opts.params(scale);
        params.channel_scale = 0.5;
        let scenario = Scenario::build(params);
        let builder = SystemBuilder::new(scenario)
            .omega(0.01)
            .hub_fund_factor(3.0);

        println!("\n## {name} scale — path type\n");
        println!("| KSP | Heuristic | EDW | EDS |");
        println!("|---|---|---|---|");
        let mut row = String::from("|");
        for ps in PathSelect::ALL {
            let tsr = tsr_with(&builder, |s| s.path_select = ps);
            row.push_str(&format!(" {:.2}% |", tsr * 100.0));
        }
        println!("{row}");

        println!("\n## {name} scale — path number (EDW)\n");
        println!("| 1 | 3 | 5 | 7 |");
        println!("|---|---|---|---|");
        let mut row = String::from("|");
        for k in [1usize, 3, 5, 7] {
            let tsr = tsr_with(&builder, |s| s.num_paths = k);
            row.push_str(&format!(" {:.2}% |", tsr * 100.0));
        }
        println!("{row}");

        println!("\n## {name} scale — scheduling algorithm\n");
        println!("| FIFO | LIFO | SPF | EDF |");
        println!("|---|---|---|---|");
        let mut row = String::from("|");
        for d in Discipline::ALL {
            let tsr = tsr_with(&builder, |s| s.discipline = d);
            row.push_str(&format!(" {:.2}% |", tsr * 100.0));
        }
        println!("{row}");
    }
}
