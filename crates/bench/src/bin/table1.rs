//! Regenerates Table I: the qualitative property matrix.
//!
//! Usage: `cargo run -p splicer-bench --bin table1`

fn main() {
    println!("# Table I: state-of-the-art PCN scalable schemes\n");
    print!("{}", splicer_core::schemes::render_table1());
}
