//! Regenerates Fig. 7: small-scale (100 nodes) scheme comparison.
//!
//! Usage: `cargo run --release -p splicer-bench --bin fig7 -- [a|b|c|d|all] [--quick] [--seed N] [--workers N]`
//!
//! * `a` — TSR vs channel-size scale.
//! * `b` — TSR vs mean transaction size.
//! * `c` — TSR vs update time τ.
//! * `d` — Normalized throughput vs update time τ.
//!
//! Each panel is one experiment grid (sweep × 5 schemes) fanned across
//! worker threads; results are identical for any `--workers` value.

use splicer_bench::{figures, HarnessOpts, Scale};

fn main() {
    let (opts, rest) = HarnessOpts::from_args();
    let which = rest
        .first()
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    figures::run(Scale::Small, &opts, &which);
}
