//! Regenerates Fig. 8: large-scale scheme comparison.
//!
//! Usage: `cargo run --release -p splicer-bench --bin fig8 -- [a|b|c|d|all] [--quick] [--seed N] [--workers N]`
//!
//! Without `--quick` this runs the full-size network (minutes); `--quick`
//! shrinks to 600 nodes for a fast shape check. Panels run as parallel
//! experiment grids; results are identical for any `--workers` value.

use splicer_bench::{figures, HarnessOpts, Scale};

fn main() {
    let (opts, rest) = HarnessOpts::from_args();
    let which = rest
        .first()
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    figures::run(Scale::Large, &opts, &which);
}
