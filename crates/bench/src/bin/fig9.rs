//! Regenerates Fig. 9: evaluation of smooth-node placement.
//!
//! Usage: `cargo run --release -p splicer-bench --bin fig9 -- [a|b|c|d|e|f|all] [--quick] [--seed N] [--workers N]`
//!
//! * `a` — average balance cost vs ω: approximation vs exhaustive optimum.
//! * `b` — management-vs-synchronization cost tradeoff (annotated ω, hubs).
//! * `c`/`d` — number of placed smooth nodes vs ω (small / large).
//! * `e`/`f` — average transaction delay vs total traffic overhead, with
//!   and without PCHs (small / large) — each an experiment grid over ω,
//!   run in parallel.

use pcn_harness::{ExperimentGrid, Overrides, RunTuning};
use pcn_placement::PlacementSolver;
use pcn_workload::{Scenario, SchemeChoice};
use splicer_bench::{HarnessOpts, Scale};
use splicer_core::SystemBuilder;

const OMEGAS: [f64; 7] = [0.01, 0.02, 0.04, 0.08, 0.2, 0.5, 1.0];

fn main() {
    let (opts, rest) = HarnessOpts::from_args();
    let which = rest
        .first()
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let w = which.as_str();
    println!("# Fig. 9: evaluation of smooth node placement");

    if ["a", "b", "c", "all"].contains(&w) {
        let scenario = Scenario::build(opts.params(Scale::Small));
        if w == "a" || w == "all" {
            println!("\n## (a) Balance cost vs ω (small scale)\n");
            println!("| ω | optimal C_B | approx C_B (double greedy) | MILP-path? |");
            println!("|---|---|---|---|");
            for &omega in &OMEGAS {
                let opt = SystemBuilder::new(scenario.clone())
                    .omega(omega)
                    .solver(PlacementSolver::Exhaustive)
                    .solve_placement()
                    .expect("feasible")
                    .1;
                let approx = SystemBuilder::new(scenario.clone())
                    .omega(omega)
                    .solver(PlacementSolver::DoubleGreedyRandomized)
                    .solve_placement()
                    .expect("feasible")
                    .1;
                println!(
                    "| {omega} | {:.3} | {:.3} | exhaustive ground truth |",
                    opt.balance_cost(),
                    approx.balance_cost()
                );
            }
        }
        if w == "b" || w == "all" {
            println!("\n## (b) Trade-off in costs (small scale)\n");
            println!("| ω | hubs | C_M (management) | C_S (synchronization) |");
            println!("|---|---|---|---|");
            for &omega in &OMEGAS {
                let plan = SystemBuilder::new(scenario.clone())
                    .omega(omega)
                    .solve_placement()
                    .expect("feasible")
                    .1;
                println!(
                    "| {omega} | {} | {:.3} | {:.3} |",
                    plan.num_hubs(),
                    plan.management_cost(),
                    plan.synchronization_cost()
                );
            }
        }
        if w == "c" || w == "all" {
            println!("\n## (c) Smooth nodes vs ω (small scale)\n");
            println!("| ω | smooth nodes |");
            println!("|---|---|");
            for &omega in &OMEGAS {
                let plan = SystemBuilder::new(scenario.clone())
                    .omega(omega)
                    .solve_placement()
                    .expect("feasible")
                    .1;
                println!("| {omega} | {} |", plan.num_hubs());
            }
        }
    }

    if w == "d" || w == "all" {
        let scenario = Scenario::build(opts.params(Scale::Large));
        println!("\n## (d) Smooth nodes vs ω (large scale)\n");
        println!("| ω | smooth nodes |");
        println!("|---|---|");
        for &omega in &OMEGAS {
            let plan = SystemBuilder::new(scenario.clone())
                .omega(omega)
                .solve_placement()
                .expect("feasible")
                .1;
            println!("| {omega} | {} |", plan.num_hubs());
        }
    }

    for (panel, scale, title) in [
        (
            "e",
            Scale::Small,
            "(e) Small-scale costs: delay vs overhead",
        ),
        (
            "f",
            Scale::Large,
            "(f) Large-scale costs: delay vs overhead",
        ),
    ] {
        if w != panel && w != "all" {
            continue;
        }
        println!("\n## {title}\n");
        println!("| configuration | avg tx delay (s) | total overhead (msgs) |");
        println!("|---|---|---|");
        let params = opts.params(scale);
        // Without PCHs: source routing (Spider) — a single fixed point.
        let spider = ExperimentGrid::new(params.clone())
            .schemes([SchemeChoice::Spider])
            .variant("without PCHs", 0.0, Overrides::default())
            .run(opts.workers);
        println!(
            "| without PCHs (source routing) | {:.3} | {} |",
            spider[0].stats.avg_latency_secs(),
            spider[0].stats.overhead_msgs
        );
        let omegas: &[f64] = if opts.quick {
            &[0.02, 0.2, 1.0]
        } else {
            &OMEGAS
        };
        let mut grid = ExperimentGrid::new(params).schemes([SchemeChoice::Splicer]);
        for &omega in omegas {
            grid = grid.variant(
                format!("Splicer ω={omega}"),
                omega,
                Overrides {
                    tuning: RunTuning {
                        omega: Some(omega),
                        ..RunTuning::default()
                    },
                    ..Overrides::default()
                },
            );
        }
        for r in grid.run(opts.workers) {
            println!(
                "| {} ({} hubs) | {:.3} | {} |",
                r.label,
                r.placement_hubs.unwrap_or(0),
                r.stats.avg_latency_secs(),
                r.stats.overhead_msgs
            );
        }
    }
}
