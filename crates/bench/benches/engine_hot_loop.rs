//! The engine's per-event hot loop: full discrete-event runs on a
//! saturated hop-lock world, reported as payments/sec.
//!
//! Traffic concentrates on a small pool of hotspot endpoint pairs (the
//! `ScenarioBuilder::hotspot` regime), so path *planning* is served
//! almost entirely by the epoch-versioned cache and the numbers measure
//! the event loop itself: TU state lookups, hop locks, queue
//! pushes/drains, injection pacing, settlement walks and the event
//! scheduler. Channels are barely wider than one max-size TU, so almost
//! every hop lock contends — the ROADMAP's "hot hop-lock path". Two
//! regimes over the same world:
//!
//! * `spider_saturated` — rate-controlled Spider: windows, pacing,
//!   queues on dry directions and `QueueDrain` cascades.
//! * `blast_saturated`  — uncontrolled shortest-path blasting: the
//!   abort/refund unwinding path under the same load.
//!
//! Both also run on the reference `BinaryHeap` event queue (`*_heap`)
//! so the committed `BENCH_engine_hot_loop.json` baseline documents the
//! calendar-queue delta on identical workloads (the two backends are
//! bit-identical in outcome — `tests/determinism.rs`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pcn_routing::channel::NetworkFunds;
use pcn_routing::engine::{Engine, EngineConfig};
use pcn_routing::scheme::SchemeConfig;
use pcn_routing::tu::Payment;
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, SimDuration, SimTime, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const NODES: usize = 300;
const HOT_PAIRS: usize = 24;
const PAYMENTS: usize = 2_000;
const DURATION_SECS: u64 = 10;

fn world() -> (pcn_graph::Graph, NetworkFunds, Vec<Payment>) {
    let mut rng = StdRng::seed_from_u64(7);
    let g = pcn_graph::watts_strogatz(NODES, 6, 0.2, &mut rng);
    // Channels barely wider than one max-size TU: almost every hop lock
    // contends, queues build on dry directions and drains cascade.
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
    let pairs: Vec<(NodeId, NodeId)> = (0..HOT_PAIRS)
        .map(|_| {
            let a = rng.random_range(0..NODES);
            let mut b = rng.random_range(0..NODES);
            while b == a {
                b = rng.random_range(0..NODES);
            }
            (NodeId::from_index(a), NodeId::from_index(b))
        })
        .collect();
    let gap = SimDuration::from_micros(DURATION_SECS * 1_000_000 / PAYMENTS as u64);
    let timeout = SimDuration::from_secs(3);
    let payments = (0..PAYMENTS)
        .map(|i| {
            let (source, dest) = pairs[rng.random_range(0..HOT_PAIRS)];
            let created = SimTime::ZERO + gap.saturating_mul(i as u64);
            Payment {
                id: TxId::new(i as u64),
                source,
                dest,
                value: Amount::from_tokens(8),
                created,
                deadline: created + timeout,
            }
        })
        .collect();
    (g, funds, payments)
}

fn run_once(
    g: &pcn_graph::Graph,
    funds: &NetworkFunds,
    payments: &[Payment],
    scheme: SchemeConfig,
    cfg: EngineConfig,
) -> pcn_routing::RunStats {
    Engine::new(g.clone(), funds.clone(), scheme, cfg, SimRng::seed(1)).run(payments.to_vec())
}

fn bench_hot_loop(c: &mut Criterion) {
    let (g, funds, payments) = world();
    let mut group = c.benchmark_group("engine_hot_loop");
    group.sample_size(10);
    group.throughput(Throughput::Elements(PAYMENTS as u64));

    for (name, scheme) in [
        ("spider_saturated", SchemeConfig::spider()),
        ("blast_saturated", SchemeConfig::shortest_path()),
    ] {
        for (queue, calendar) in [("", true), ("_heap", false)] {
            let cfg = EngineConfig {
                use_calendar_queue: calendar,
                ..EngineConfig::default()
            };
            group.bench_function(format!("{name}{queue}_{PAYMENTS}p_{NODES}n"), |b| {
                b.iter(|| black_box(run_once(&g, &funds, &payments, scheme.clone(), cfg.clone())))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hot_loop);
criterion_main!(benches);
