//! Large-world scaling of the CSR graph core: the adjacency-layout
//! measurements behind the 100k-node acceptance bar.
//!
//! Unlike the other benches this one hand-rolls its timing loop: the CSR
//! [`Graph`] and the `Vec<Vec>` [`ReferenceGraph`] must be sampled
//! *interleaved* (csr, ref, csr, ref, …) so frequency scaling and cache
//! pressure hit both layouts equally, and the committed medians are an
//! honest same-build comparison. The JSON baseline keeps the exact
//! schema of the vendored criterion (`BENCH_graph_scale.json`).
//!
//! Regimes, on a WS(100k, 16) hotspot world (~800k channels):
//!
//! * `adjacency_bytes_per_entry` / `adjacency_bytes_per_node` — memory
//!   pseudo-benchmarks: the "ns" fields carry **bytes**, measured live
//!   from [`Graph::adjacency_stats`] (entries + row offsets). Guarded:
//!   ≤ 16 bytes per neighbour entry.
//! * `{csr,ref}_shortest_{cold,warm}` — single-source point-to-point
//!   Dijkstra; cold constructs a fresh `SearchWorkspace` per sample,
//!   warm reuses one. Guarded: warm CSR median ≥ 1.5× faster than the
//!   reference layout.
//! * `{csr,ref}_widest_{cold,warm}` — the widest-path analogue.
//! * `engine_shortest_path_2000p` — a full 2k-payment engine run on the
//!   100k-node world (ShortestPath scheme, hotspot pairs).
//!
//! `--quick` / `BENCH_QUICK=1` downscales to a 10k-node world with
//! distinct regime names and writes no baseline; the memory guard still
//! runs, the speedup guard is full-scale-only (quick samples are too
//! noisy to gate on).

use pcn_graph::{
    bfs_hops, shortest_path_in, watts_strogatz, widest_path_in, Graph, ReferenceGraph,
    SearchWorkspace,
};
use pcn_routing::channel::NetworkFunds;
use pcn_routing::engine::{Engine, EngineConfig};
use pcn_routing::scheme::{ComputeModel, SchemeConfig};
use pcn_routing::tu::Payment;
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, SimDuration, SimTime, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const FULL_NODES: usize = 100_000;
const QUICK_NODES: usize = 10_000;
const DEGREE: usize = 16;
const PAYMENTS: usize = 2_000;
const HOT_PAIRS: usize = 64;
const DURATION_SECS: u64 = 20;

struct Measurement {
    name: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

fn summarize(name: String, mut ns: Vec<f64>) -> Measurement {
    assert!(!ns.is_empty());
    ns.sort_by(f64::total_cmp);
    Measurement {
        name,
        median_ns: ns[ns.len() / 2],
        mean_ns: ns.iter().sum::<f64>() / ns.len() as f64,
        min_ns: ns[0],
        max_ns: *ns.last().expect("non-empty"),
        samples: ns.len(),
    }
}

/// A constant carried through the baseline (bytes, counts) in the same
/// row shape as a timing — the unit lives in the name.
fn constant(name: String, value: f64) -> Measurement {
    Measurement {
        name,
        median_ns: value,
        mean_ns: value,
        min_ns: value,
        max_ns: value,
        samples: 1,
    }
}

fn write_json(group: &str, results: &[Measurement]) {
    let dir = std::env::var("BENCH_OUTPUT_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{group}.json"));
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"group\": \"{group}\",\n  \"benchmarks\": [\n"
    ));
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{}\n",
            m.name,
            m.median_ns,
            m.mean_ns,
            m.min_ns,
            m.max_ns,
            m.samples,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out).expect("write baseline");
    eprintln!("wrote {}", path.display());
}

fn time_ns<R>(f: impl FnOnce() -> R) -> f64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_nanos() as f64
}

/// Mirrors a freshly generated graph into the reference layout: replaying
/// the channel list in id order reproduces identical neighbour order.
fn mirror(g: &Graph) -> ReferenceGraph {
    let mut r = ReferenceGraph::new(g.node_count());
    for ch in g.edges() {
        let (a, b) = g.endpoints(ch).expect("fresh channel");
        r.add_edge(a, b);
    }
    r
}

/// Interleaved A/B sampling: one (csr, reference) timing pair per round.
fn interleaved(
    samples: usize,
    mut csr: impl FnMut() -> f64,
    mut reference: impl FnMut() -> f64,
) -> (Vec<f64>, Vec<f64>) {
    let mut a = Vec::with_capacity(samples);
    let mut b = Vec::with_capacity(samples);
    for _ in 0..samples {
        a.push(csr());
        b.push(reference());
    }
    (a, b)
}

fn hotspot_payments(n: usize, rng: &mut StdRng) -> Vec<Payment> {
    let pairs: Vec<(NodeId, NodeId)> = (0..HOT_PAIRS)
        .map(|_| {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n);
            while b == a {
                b = rng.random_range(0..n);
            }
            (NodeId::from_index(a), NodeId::from_index(b))
        })
        .collect();
    let gap = SimDuration::from_micros(DURATION_SECS * 1_000_000 / PAYMENTS as u64);
    let timeout = SimDuration::from_secs(5);
    (0..PAYMENTS)
        .map(|i| {
            let (source, dest) = pairs[rng.random_range(0..HOT_PAIRS)];
            let created = SimTime::ZERO + gap.saturating_mul(i as u64);
            Payment {
                id: TxId::new(i as u64),
                source,
                dest,
                value: Amount::from_tokens(4),
                created,
                deadline: created + timeout,
            }
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1");
    let nodes = if quick { QUICK_NODES } else { FULL_NODES };
    let tag = if quick { "10k_quick" } else { "100k" };
    let search_samples = if quick { 5 } else { 15 };
    let engine_samples = if quick { 2 } else { 5 };

    let mut rng = StdRng::seed_from_u64(7);
    let g = watts_strogatz(nodes, DEGREE, 0.3, &mut rng);
    let r = mirror(&g);
    let mut results: Vec<Measurement> = Vec::new();

    // ---- memory -----------------------------------------------------
    let stats = g.adjacency_stats();
    let entries = stats.csr_entries + stats.delta_entries;
    let adj_bytes = stats.entry_total_bytes() + stats.offset_bytes;
    let per_entry = adj_bytes as f64 / entries as f64;
    let per_node = adj_bytes as f64 / nodes as f64;
    assert!(
        per_entry <= 16.0,
        "adjacency budget blown: {per_entry:.2} bytes/entry (≤ 16 required)"
    );
    eprintln!(
        "graph_scale/{tag}: {} channels, {entries} directed entries, \
         {per_entry:.2} B/entry, {per_node:.1} B/node",
        g.edge_count()
    );
    results.push(constant(
        format!("graph_scale/adjacency_bytes_per_entry_{tag}"),
        per_entry,
    ));
    results.push(constant(
        format!("graph_scale/adjacency_bytes_per_node_{tag}"),
        per_node,
    ));

    // ---- single-source searches, interleaved A/B --------------------
    let (src, dst) = (NodeId::new(0), NodeId::from_index(nodes / 2));
    let cost = |e: pcn_graph::EdgeRef| Some(1.0 + (e.id.index() % 7) as f64);
    let width = |e: pcn_graph::EdgeRef| Some(1.0 + (e.id.index() % 5) as f64);

    // Full single-source sweep (BFS): pure adjacency traversal, the
    // layout-bound regime the CSR speedup gate reads. (Dijkstra/widest
    // below carry a layout-independent priority-queue cost on top.)
    let (csr_ns, ref_ns) = interleaved(
        search_samples,
        || time_ns(|| bfs_hops(&g, src)),
        || time_ns(|| bfs_hops(&r, src)),
    );
    let csr_bfs = summarize(format!("graph_scale/csr_bfs_sweep_{tag}"), csr_ns);
    let ref_bfs = summarize(format!("graph_scale/ref_bfs_sweep_{tag}"), ref_ns);
    let bfs_speedup = ref_bfs.median_ns / csr_bfs.median_ns;
    eprintln!(
        "graph_scale/{tag}: bfs sweep csr {:.2} ms vs ref {:.2} ms — {bfs_speedup:.2}×",
        csr_bfs.median_ns / 1e6,
        ref_bfs.median_ns / 1e6
    );
    results.push(csr_bfs);
    results.push(ref_bfs);

    let (csr_ns, ref_ns) = interleaved(
        search_samples,
        || time_ns(|| shortest_path_in(&g, &mut SearchWorkspace::new(), src, dst, cost)),
        || time_ns(|| shortest_path_in(&r, &mut SearchWorkspace::new(), src, dst, cost)),
    );
    results.push(summarize(
        format!("graph_scale/csr_shortest_cold_{tag}"),
        csr_ns,
    ));
    results.push(summarize(
        format!("graph_scale/ref_shortest_cold_{tag}"),
        ref_ns,
    ));

    let mut ws_g = SearchWorkspace::new();
    let mut ws_r = SearchWorkspace::new();
    black_box(shortest_path_in(&g, &mut ws_g, src, dst, cost));
    black_box(shortest_path_in(&r, &mut ws_r, src, dst, cost));
    let (csr_ns, ref_ns) = interleaved(
        search_samples,
        || time_ns(|| shortest_path_in(&g, &mut ws_g, src, dst, cost)),
        || time_ns(|| shortest_path_in(&r, &mut ws_r, src, dst, cost)),
    );
    let csr_warm = summarize(format!("graph_scale/csr_shortest_warm_{tag}"), csr_ns);
    let ref_warm = summarize(format!("graph_scale/ref_shortest_warm_{tag}"), ref_ns);
    let speedup = ref_warm.median_ns / csr_warm.median_ns;
    eprintln!(
        "graph_scale/{tag}: warm shortest csr {:.2} ms vs ref {:.2} ms — {speedup:.2}×",
        csr_warm.median_ns / 1e6,
        ref_warm.median_ns / 1e6
    );
    if !quick {
        assert!(
            bfs_speedup >= 1.5,
            "CSR warm single-source sweep must be ≥ 1.5× the Vec<Vec> layout, got \
             {bfs_speedup:.2}×"
        );
        assert!(
            speedup >= 1.1,
            "CSR warm shortest-path must beat the Vec<Vec> layout, got {speedup:.2}× \
             (csr {:.0} ns vs ref {:.0} ns)",
            csr_warm.median_ns,
            ref_warm.median_ns
        );
    }
    results.push(csr_warm);
    results.push(ref_warm);

    let (csr_ns, ref_ns) = interleaved(
        search_samples,
        || time_ns(|| widest_path_in(&g, &mut SearchWorkspace::new(), src, dst, width)),
        || time_ns(|| widest_path_in(&r, &mut SearchWorkspace::new(), src, dst, width)),
    );
    results.push(summarize(
        format!("graph_scale/csr_widest_cold_{tag}"),
        csr_ns,
    ));
    results.push(summarize(
        format!("graph_scale/ref_widest_cold_{tag}"),
        ref_ns,
    ));

    black_box(widest_path_in(&g, &mut ws_g, src, dst, width));
    black_box(widest_path_in(&r, &mut ws_r, src, dst, width));
    let (csr_ns, ref_ns) = interleaved(
        search_samples,
        || time_ns(|| widest_path_in(&g, &mut ws_g, src, dst, width)),
        || time_ns(|| widest_path_in(&r, &mut ws_r, src, dst, width)),
    );
    results.push(summarize(
        format!("graph_scale/csr_widest_warm_{tag}"),
        csr_ns,
    ));
    results.push(summarize(
        format!("graph_scale/ref_widest_warm_{tag}"),
        ref_ns,
    ));

    // ---- full engine run --------------------------------------------
    // 500-token channels: enough headroom for each hotspot pair's
    // ~125-token cumulative drain, so the regime times mostly-successful
    // routing rather than liquidity failures.
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(500));
    let payments = hotspot_payments(nodes, &mut rng);
    // Zero the simulated compute model: at 800k channels the paper's
    // client-compute cost (30 µs/edge, §III-C — the very wall that
    // motivates hubs) exceeds any payment deadline, and this regime
    // measures the engine + adjacency at scale, not that wall.
    let scheme = SchemeConfig {
        compute: ComputeModel {
            client_secs_per_edge: 0.0,
            hub_secs_per_edge: 0.0,
            crypto_overhead: SimDuration::ZERO,
        },
        ..SchemeConfig::shortest_path()
    };
    let run = || {
        Engine::new(
            g.clone(),
            funds.clone(),
            scheme.clone(),
            EngineConfig::default(),
            SimRng::seed(1),
        )
        .run(payments.clone())
    };
    let stats = run();
    assert_eq!(stats.generated, PAYMENTS as u64);
    assert!(stats.is_consistent());
    assert!(
        stats.completed > 0,
        "the large world must complete payments: {stats}"
    );
    let ns: Vec<f64> = (0..engine_samples).map(|_| time_ns(run)).collect();
    results.push(summarize(
        format!("graph_scale/engine_shortest_path_{PAYMENTS}p_{tag}"),
        ns,
    ));

    for m in &results {
        eprintln!(
            "{}: median {:.1} mean {:.1} ({} samples)",
            m.name, m.median_ns, m.mean_ns, m.samples
        );
    }
    if quick {
        eprintln!("quick mode: baseline not written");
    } else {
        write_json("graph_scale", &results);
    }
}
