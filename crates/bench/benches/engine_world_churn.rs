//! The engine under topology churn: the hot-loop world of
//! `engine_hot_loop.rs` with a dynamic-world timeline closing and
//! opening one channel per second.
//!
//! Saturated hotspot traffic keeps the path cache hot (planning is
//! served almost entirely from cache), so the regimes measure what
//! churn costs the *event loop*: every closure bumps the topology
//! epoch, stales every cached plan, expires in-flight TUs through the
//! refund path, and forces one re-plan per hot pair — then the cache
//! refills until the next closure. Two guarded regressions run before
//! the timed samples:
//!
//! * the cached run under 1 Hz churn must keep a **>30% hit rate**
//!   (topology invalidations once a second must not collapse the cache
//!   between events), and
//! * the churned run must show **no payments/sec cliff** against the
//!   static world (bounded at 4× wall time — churn costs re-plans, not
//!   an order of magnitude).
//!
//! Regimes (committed to `BENCH_engine_world_churn.json`):
//!
//! * `spider_static`   — the saturated hotspot world, no timeline.
//! * `spider_churn_1hz`— same world + 1 close/open pair per second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pcn_routing::channel::NetworkFunds;
use pcn_routing::engine::{Engine, EngineConfig};
use pcn_routing::scheme::SchemeConfig;
use pcn_routing::tu::Payment;
use pcn_routing::world::WorldEvent;
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, SimDuration, SimTime, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const NODES: usize = 300;
const HOT_PAIRS: usize = 24;
const PAYMENTS: usize = 2_000;
const DURATION_SECS: u64 = 10;

fn world() -> (pcn_graph::Graph, NetworkFunds, Vec<Payment>) {
    let mut rng = StdRng::seed_from_u64(7);
    let g = pcn_graph::watts_strogatz(NODES, 6, 0.2, &mut rng);
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
    let pairs: Vec<(NodeId, NodeId)> = (0..HOT_PAIRS)
        .map(|_| {
            let a = rng.random_range(0..NODES);
            let mut b = rng.random_range(0..NODES);
            while b == a {
                b = rng.random_range(0..NODES);
            }
            (NodeId::from_index(a), NodeId::from_index(b))
        })
        .collect();
    let gap = SimDuration::from_micros(DURATION_SECS * 1_000_000 / PAYMENTS as u64);
    let timeout = SimDuration::from_secs(3);
    let payments = (0..PAYMENTS)
        .map(|i| {
            let (source, dest) = pairs[rng.random_range(0..HOT_PAIRS)];
            let created = SimTime::ZERO + gap.saturating_mul(i as u64);
            Payment {
                id: TxId::new(i as u64),
                source,
                dest,
                value: Amount::from_tokens(8),
                created,
                deadline: created + timeout,
            }
        })
        .collect();
    (g, funds, payments)
}

/// One close + open pair per second over the run.
fn churn_timeline() -> Vec<WorldEvent> {
    let mut rng = StdRng::seed_from_u64(23);
    let mut events = Vec::new();
    for k in 1..=DURATION_SECS {
        let at = SimTime::from_micros(k * 1_000_000);
        events.push(WorldEvent::ChannelClose {
            at,
            selector: rng.random_range(0..u64::MAX),
        });
        events.push(WorldEvent::ChannelOpen {
            at,
            a_sel: rng.random_range(0..u64::MAX),
            b_sel: rng.random_range(0..u64::MAX),
            funds_per_side: Amount::from_tokens(10),
        });
    }
    events
}

fn run_once(
    g: &pcn_graph::Graph,
    funds: &NetworkFunds,
    payments: &[Payment],
    timeline: Vec<WorldEvent>,
) -> pcn_routing::RunStats {
    Engine::new(
        g.clone(),
        funds.clone(),
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(1),
    )
    .with_timeline(timeline)
    .run(payments.to_vec())
}

fn bench_world_churn(c: &mut Criterion) {
    let (g, funds, payments) = world();

    // Guarded regressions, asserted once before the timed samples (the
    // quick/CI smoke mode runs these too).
    let churned = run_once(&g, &funds, &payments, churn_timeline());
    assert_eq!(
        churned.world_events_applied,
        2 * DURATION_SECS,
        "the full churn timeline must apply"
    );
    let hit_rate = churned.path_cache.hit_rate();
    assert!(
        hit_rate > 0.30,
        "cache hit rate under 1 Hz churn fell to {:.0}% (> 30% required): {:?}",
        100.0 * hit_rate,
        churned.path_cache
    );
    let churn_wall = churned.wall_secs;
    let static_run = run_once(&g, &funds, &payments, Vec::new());
    assert!(
        churn_wall < static_run.wall_secs.max(1e-6) * 4.0,
        "pps cliff: churned run took {churn_wall:.3}s vs static {:.3}s (>4×)",
        static_run.wall_secs
    );

    let mut group = c.benchmark_group("engine_world_churn");
    group.sample_size(10);
    group.throughput(Throughput::Elements(PAYMENTS as u64));
    group.bench_function(format!("spider_static_{PAYMENTS}p_{NODES}n"), |b| {
        b.iter(|| black_box(run_once(&g, &funds, &payments, Vec::new())))
    });
    group.bench_function(format!("spider_churn_1hz_{PAYMENTS}p_{NODES}n"), |b| {
        b.iter(|| black_box(run_once(&g, &funds, &payments, churn_timeline())))
    });
    group.finish();
}

criterion_group!(benches, bench_world_churn);
criterion_main!(benches);
