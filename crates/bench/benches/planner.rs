//! Goal-directed planning on the 100k-node large-world topology.
//!
//! An interleaved same-build A/B over WS(100 000, 16) — the world
//! `tests/large_world.rs` pins for scaling — comparing the plain
//! planner against the goal-directed one (`use_goal_directed`):
//!
//! * `plan_p2p_plain` / `plan_p2p_goal_directed` — warm point-to-point
//!   EDS plan selection (`select_paths_in`, k = 4, capacity view), the
//!   shape Direct-routing schemes run per payment. Goal-directed runs
//!   the bidirectional + ALT landmark search inside every Dijkstra.
//! * `hub_legs_per_pair` / `hub_legs_batched_trees` — the Landmark
//!   scheme's hub-leg planning: 2·k single-pair searches versus one
//!   source tree plus one destination tree with per-landmark readoffs
//!   (`shortest_path_two_trees_in`).
//!
//! Both regimes alternate pair by pair inside one process and one
//! build, so frequency drift and cache warmth cancel. The acceptance
//! bars assert in every run, `--quick` CI smoke included:
//!
//! * goal-directed warm plan latency ≥ 1.5× faster than plain;
//! * goal-directed settles ≤ half the plain search's settled nodes;
//! * batched hub-leg trees ≥ 1.5× faster than the per-pair baseline.
//!
//! The committed `BENCH_planner.json` baseline records the measured
//! numbers (full, non-quick run).

use criterion::{criterion_group, criterion_main, Criterion};
use pcn_graph::{shortest_path_two_trees_in, Path, SearchWorkspace};
use pcn_routing::channel::NetworkFunds;
use pcn_routing::paths::{select_paths_in, BalanceView, PathSelect};
use pcn_types::{Amount, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

const NODES: usize = 100_000;
const DEGREE: usize = 16;
const K: usize = 4;
const NUM_LANDMARKS: usize = 8;
const PAIRS: usize = 12;
const AB_ROUNDS: usize = 3;

fn world() -> (pcn_graph::Graph, NetworkFunds, Vec<(NodeId, NodeId)>) {
    let mut rng = StdRng::seed_from_u64(7);
    let g = pcn_graph::watts_strogatz(NODES, DEGREE, 0.3, &mut rng);
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
    // Deterministic scattered pairs: strided indices, no RNG reuse.
    let pairs = (0..PAIRS)
        .map(|i| {
            (
                NodeId::from_index((i * 8_191 + 17) % NODES),
                NodeId::from_index((i * 15_773 + NODES / 2) % NODES),
            )
        })
        .collect();
    (g, funds, pairs)
}

/// One warm EDS plan selection; returns (nanos, settled nodes).
fn plan_once(
    g: &pcn_graph::Graph,
    ws: &mut SearchWorkspace,
    funds: &NetworkFunds,
    src: NodeId,
    dst: NodeId,
    accel: bool,
) -> (u128, u64) {
    let settled0 = ws.nodes_settled();
    let t0 = Instant::now();
    black_box(select_paths_in(
        g,
        ws,
        funds,
        src,
        dst,
        K,
        PathSelect::Eds,
        BalanceView::CapacityOnly,
        Amount::from_tokens(1),
        accel,
    ));
    (t0.elapsed().as_nanos(), ws.nodes_settled() - settled0)
}

/// The Landmark scheme's per-pair hub-leg baseline: 2·k single-pair
/// searches (source → landmark, and the canonical dest → landmark leg,
/// reversed — exactly what `plan_paths` runs with the toggle off).
fn hub_legs_per_pair(
    g: &pcn_graph::Graph,
    ws: &mut SearchWorkspace,
    funds: &NetworkFunds,
    landmarks: &[NodeId],
    src: NodeId,
    dst: NodeId,
) -> Vec<(Option<Path>, Option<Path>)> {
    let cost = |e: pcn_graph::EdgeRef| (funds.total(e.id) > Amount::ZERO).then_some(1.0);
    landmarks
        .iter()
        .map(|&lm| {
            (
                g.shortest_path_in(ws, src, lm, cost).map(|(_, p)| p),
                g.shortest_path_in(ws, dst, lm, cost)
                    .map(|(_, p)| p.reversed()),
            )
        })
        .collect()
}

/// The batched replacement: one tree from the source, one from the
/// destination, legs read off per landmark.
fn hub_legs_batched(
    g: &pcn_graph::Graph,
    ws: &mut SearchWorkspace,
    funds: &NetworkFunds,
    landmarks: &[NodeId],
    src: NodeId,
    dst: NodeId,
) -> Vec<(Option<Path>, Option<Path>)> {
    let cost = |e: pcn_graph::EdgeRef| (funds.total(e.id) > Amount::ZERO).then_some(1.0);
    let (up_tree, down_tree) = shortest_path_two_trees_in(g, ws, src, dst, cost);
    landmarks
        .iter()
        .map(|&lm| {
            (
                up_tree.path_to(lm),
                down_tree.path_to(lm).map(Path::reversed),
            )
        })
        .collect()
}

fn bench_planner(c: &mut Criterion) {
    let (g, funds, pairs) = world();
    let mut ws = SearchWorkspace::new();
    ws.prepare_landmarks(&g);
    let landmarks: Vec<NodeId> = (0..NUM_LANDMARKS)
        .map(|i| NodeId::from_index((i * 12_347 + 5) % NODES))
        .collect();

    // ---- Interleaved A/B: the acceptance bars -------------------------
    // Alternate plain/goal-directed per pair (order flipped every round)
    // so the two sides sample identical machine conditions; one warmup
    // query each absorbs first-touch buffer growth.
    plan_once(&g, &mut ws, &funds, pairs[0].0, pairs[0].1, false);
    plan_once(&g, &mut ws, &funds, pairs[0].0, pairs[0].1, true);
    let (mut plain_ns, mut accel_ns) = (0u128, 0u128);
    let (mut plain_settled, mut accel_settled) = (0u64, 0u64);
    for round in 0..AB_ROUNDS {
        for &(src, dst) in &pairs {
            for &accel in if round % 2 == 0 {
                &[false, true]
            } else {
                &[true, false]
            } {
                let (ns, settled) = plan_once(&g, &mut ws, &funds, src, dst, accel);
                if accel {
                    accel_ns += ns;
                    accel_settled += settled;
                } else {
                    plain_ns += ns;
                    plain_settled += settled;
                }
            }
        }
    }
    let plan_speedup = plain_ns as f64 / accel_ns as f64;
    let settle_ratio = plain_settled as f64 / accel_settled as f64;
    assert!(
        plan_speedup >= 1.5,
        "goal-directed warm plans must be ≥1.5× faster than plain \
         (plain {plain_ns} ns vs goal-directed {accel_ns} ns = {plan_speedup:.2}×)"
    );
    assert!(
        settle_ratio >= 2.0,
        "goal-directed search must settle ≤ half the nodes \
         (plain {plain_settled} vs goal-directed {accel_settled} = {settle_ratio:.2}×)"
    );

    let (mut pair_ns, mut tree_ns) = (0u128, 0u128);
    for round in 0..AB_ROUNDS {
        for &(src, dst) in &pairs {
            for &batched in if round % 2 == 0 {
                &[false, true]
            } else {
                &[true, false]
            } {
                let t0 = Instant::now();
                let legs = if batched {
                    hub_legs_batched(&g, &mut ws, &funds, &landmarks, src, dst)
                } else {
                    hub_legs_per_pair(&g, &mut ws, &funds, &landmarks, src, dst)
                };
                let ns = t0.elapsed().as_nanos();
                if batched {
                    tree_ns += ns;
                } else {
                    pair_ns += ns;
                }
                black_box(legs);
            }
        }
    }
    let tree_speedup = pair_ns as f64 / tree_ns as f64;
    assert!(
        tree_speedup >= 1.5,
        "batched hub-leg trees must be ≥1.5× faster than 2·k single-pair \
         searches (per-pair {pair_ns} ns vs batched {tree_ns} ns = {tree_speedup:.2}×)"
    );

    // ---- Criterion samples: the committed baseline --------------------
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);
    group.metadata("world", format!("watts_strogatz({NODES}, {DEGREE}, 0.3)"));
    group.metadata("plan_speedup_interleaved", format!("{plan_speedup:.2}"));
    group.metadata(
        "settled_reduction_interleaved",
        format!("{settle_ratio:.2}"),
    );
    group.metadata("hub_leg_speedup_interleaved", format!("{tree_speedup:.2}"));

    let sample: Vec<(NodeId, NodeId)> = pairs.iter().copied().take(4).collect();
    group.bench_function(format!("plan_p2p_plain_{NODES}n_k{K}"), |b| {
        b.iter(|| {
            for &(src, dst) in &sample {
                plan_once(&g, &mut ws, &funds, src, dst, false);
            }
        })
    });
    group.bench_function(format!("plan_p2p_goal_directed_{NODES}n_k{K}"), |b| {
        b.iter(|| {
            for &(src, dst) in &sample {
                plan_once(&g, &mut ws, &funds, src, dst, true);
            }
        })
    });
    group.bench_function(
        format!("hub_legs_per_pair_{NODES}n_{NUM_LANDMARKS}lm"),
        |b| {
            b.iter(|| {
                for &(src, dst) in &sample {
                    black_box(hub_legs_per_pair(&g, &mut ws, &funds, &landmarks, src, dst));
                }
            })
        },
    );
    group.bench_function(
        format!("hub_legs_batched_trees_{NODES}n_{NUM_LANDMARKS}lm"),
        |b| {
            b.iter(|| {
                for &(src, dst) in &sample {
                    black_box(hub_legs_batched(&g, &mut ws, &funds, &landmarks, src, dst));
                }
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
