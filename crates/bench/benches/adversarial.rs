//! Adversarial fault layer: cost when disabled, resilience when armed,
//! reported in `BENCH_adversarial.json`.
//!
//! Two guarded claims run before criterion times anything:
//!
//! * **Disabled overhead < 5%** — an engine built without ever calling
//!   `with_faults` and one handed the empty `FaultPlan` are the *same*
//!   execution (`with_faults` refuses to install an empty plan), so
//!   their stats must be bit-identical and an interleaved min-of-5
//!   wall-clock comparison must agree within 5% — the honest hot path
//!   pays nothing for the fault layer's existence.
//! * **Honest-traffic floor under griefing** — with 10% of the clients
//!   griefing (5 s holds, past the 3 s TU timeout), Splicer's honest
//!   traffic must keep a TSR above 0.75 (measured ≈ 0.97 on the pinned
//!   seed): griefers burn their own throughput, not the network's.
//!
//! The timed group then measures the honest engine, the empty-plan
//! engine (identical by construction), and a griefed run on the same
//! world, as payments/sec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pcn_harness::run_spec;
use pcn_routing::channel::NetworkFunds;
use pcn_routing::engine::{Engine, EngineConfig};
use pcn_routing::scheme::SchemeConfig;
use pcn_routing::tu::Payment;
use pcn_routing::FaultPlan;
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, SimDuration, SimTime, TxId};
use pcn_workload::{ScenarioBuilder, SchemeChoice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const NODES: usize = 300;
const PAYMENTS: usize = 2_000;
const DURATION_SECS: u64 = 10;
const MAX_DISABLED_OVERHEAD: f64 = 0.05;
const HONEST_TSR_FLOOR: f64 = 0.75;

fn world() -> (pcn_graph::Graph, NetworkFunds, Vec<Payment>) {
    let mut rng = StdRng::seed_from_u64(11);
    let g = pcn_graph::watts_strogatz(NODES, 6, 0.2, &mut rng);
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(30));
    let gap = SimDuration::from_micros(DURATION_SECS * 1_000_000 / PAYMENTS as u64);
    let timeout = SimDuration::from_secs(3);
    let payments = (0..PAYMENTS)
        .map(|i| {
            let a = rng.random_range(0..NODES);
            let mut b = rng.random_range(0..NODES);
            while b == a {
                b = rng.random_range(0..NODES);
            }
            let created = SimTime::ZERO + gap.saturating_mul(i as u64);
            Payment {
                id: TxId::new(i as u64),
                source: NodeId::from_index(a),
                dest: NodeId::from_index(b),
                value: Amount::from_tokens(8),
                created,
                deadline: created + timeout,
            }
        })
        .collect();
    (g, funds, payments)
}

/// Every 10th transaction griefs, holding its locks for 5 s — past the
/// 3 s TU timeout, so every griefed lock times out and refunds.
fn griefer_plan() -> FaultPlan {
    FaultPlan {
        salt: 0x5eed,
        griefer_txs: (0..PAYMENTS as u64).step_by(10).map(TxId::new).collect(),
        griefer_hold: SimDuration::from_secs(5),
        ..FaultPlan::default()
    }
}

fn run_once(
    g: &pcn_graph::Graph,
    funds: &NetworkFunds,
    payments: &[Payment],
    plan: Option<FaultPlan>,
) -> pcn_routing::RunStats {
    let engine = Engine::new(
        g.clone(),
        funds.clone(),
        SchemeConfig::shortest_path(),
        EngineConfig::default(),
        SimRng::seed(1),
    );
    let engine = match plan {
        Some(p) => engine.with_faults(p),
        None => engine,
    };
    engine.run(payments.to_vec())
}

/// Pre-timing guards; returns the measured disabled-layer overhead so
/// the committed baseline records it.
fn assert_fault_layer_is_free_when_off(
    g: &pcn_graph::Graph,
    funds: &NetworkFunds,
    payments: &[Payment],
) -> f64 {
    // Semantics first: no call ≡ empty plan, bit for bit.
    let no_call = run_once(g, funds, payments, None);
    let empty = run_once(g, funds, payments, Some(FaultPlan::default()));
    assert_eq!(no_call.generated, PAYMENTS as u64);
    assert!(no_call.is_consistent(), "bookkeeping drifted: {no_call}");
    assert_eq!(
        no_call, empty,
        "an empty FaultPlan must be the honest execution, bit for bit"
    );
    assert_eq!(empty.faults_injected, 0);
    // Wall clock: interleaved min-of-5 per arm keeps frequency scaling
    // and cache state from favouring either side. Both arms run the
    // same machine code, so the measured gap is pure noise — the bar
    // catches any future change that puts real work on the None path.
    let time = |plan: Option<FaultPlan>| {
        let start = Instant::now();
        black_box(run_once(g, funds, payments, plan));
        start.elapsed()
    };
    let mut base = f64::INFINITY;
    let mut off = f64::INFINITY;
    for _ in 0..5 {
        base = base.min(time(None).as_secs_f64());
        off = off.min(time(Some(FaultPlan::default())).as_secs_f64());
    }
    let overhead = off / base - 1.0;
    assert!(
        overhead < MAX_DISABLED_OVERHEAD,
        "disabled fault layer costs {:.1}% (> {:.0}% bar): no-call {base:.3}s, \
         empty-plan {off:.3}s",
        overhead * 100.0,
        MAX_DISABLED_OVERHEAD * 100.0
    );
    overhead
}

/// Returns Splicer's honest TSR under 10% griefers (asserted ≥ floor).
fn assert_honest_traffic_survives_griefing() -> f64 {
    let spec = ScenarioBuilder::tiny()
        .griefers(0.1, 5_000)
        .scheme(SchemeChoice::Splicer)
        .seed(7)
        .build();
    let outcome = run_spec(&spec);
    let s = &outcome.report.stats;
    assert!(
        s.griefed_locks > 0,
        "the griefer population must actually grief"
    );
    let honest = s.honest_tsr();
    assert!(
        honest >= HONEST_TSR_FLOOR,
        "honest TSR {honest:.3} under 10% griefers fell below the \
         {HONEST_TSR_FLOOR} floor"
    );
    honest
}

fn bench_adversarial(c: &mut Criterion) {
    let (g, funds, payments) = world();
    let overhead = assert_fault_layer_is_free_when_off(&g, &funds, &payments);
    let honest_tsr = assert_honest_traffic_survives_griefing();
    let mut group = c.benchmark_group("adversarial");
    group.sample_size(10);
    group.throughput(Throughput::Elements(PAYMENTS as u64));
    group.metadata("disabled_overhead_pct", format!("{:.2}", overhead * 100.0));
    group.metadata(
        "splicer_honest_tsr_10pct_griefers",
        format!("{honest_tsr:.3}"),
    );
    group.bench_function(format!("honest_{PAYMENTS}p_{NODES}n"), |b| {
        b.iter(|| black_box(run_once(&g, &funds, &payments, None)))
    });
    group.bench_function(format!("empty_plan_{PAYMENTS}p_{NODES}n"), |b| {
        b.iter(|| black_box(run_once(&g, &funds, &payments, Some(FaultPlan::default()))))
    });
    group.bench_function(format!("griefed_10pct_{PAYMENTS}p_{NODES}n"), |b| {
        b.iter(|| black_box(run_once(&g, &funds, &payments, Some(griefer_plan()))))
    });
    group.finish();
}

criterion_group!(benches, bench_adversarial);
criterion_main!(benches);
