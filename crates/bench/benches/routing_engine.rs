//! End-to-end engine benchmark: full Splicer and Spider runs on a small
//! scenario (events/second of the simulator itself).

use criterion::{criterion_group, criterion_main, Criterion};
use pcn_workload::{Scenario, ScenarioParams};
use splicer_core::SystemBuilder;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut params = ScenarioParams::tiny();
    params.nodes = 60;
    params.candidate_count = 6;
    params.arrivals_per_sec = 15.0;
    params.duration = pcn_types::SimDuration::from_secs(10);
    let scenario = Scenario::build(params);

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("splicer_60n_10s", |b| {
        b.iter(|| {
            let builder = SystemBuilder::new(scenario.clone());
            black_box(builder.build_splicer().unwrap().run())
        })
    });
    group.bench_function("spider_60n_10s", |b| {
        b.iter(|| {
            let builder = SystemBuilder::new(scenario.clone());
            black_box(builder.build_spider().run())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
