//! Microbenchmark for the SHA-256 substrate (HTLC locks, envelopes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pcn_crypto::Sha256;
use std::hint::black_box;

fn bench_sha(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| black_box(Sha256::digest(&data)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sha);
criterion_main!(benches);
