//! Microbenchmarks for the placement solvers (§IV-C ablation: exact vs
//! approximation).

use criterion::{criterion_group, criterion_main, Criterion};
use pcn_placement::supermodular::{double_greedy_deterministic, double_greedy_randomized};
use pcn_placement::{exact::solve_exhaustive, CostParams, PlacementInstance};
use pcn_sim::SimRng;
use pcn_types::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn instance(nodes: usize, candidates: usize) -> PlacementInstance {
    let g = pcn_graph::watts_strogatz(nodes, 6, 0.3, &mut StdRng::seed_from_u64(7));
    PlacementInstance::from_graph(
        &g,
        (candidates..nodes).map(NodeId::from_index).collect(),
        (0..candidates).map(NodeId::from_index).collect(),
        CostParams::paper(0.3),
    )
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    let small = instance(60, 12);
    group.bench_function("exhaustive_12_candidates", |b| {
        b.iter(|| black_box(solve_exhaustive(&small).unwrap()))
    });
    let large = instance(300, 40);
    group.bench_function("double_greedy_det_40_candidates", |b| {
        b.iter(|| black_box(double_greedy_deterministic(&large)))
    });
    group.bench_function("double_greedy_rand_40_candidates", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed(3);
            black_box(double_greedy_randomized(&large, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
