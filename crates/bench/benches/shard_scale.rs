//! Sharded-engine scaling: the same saturated hotspot world through
//! K = 1 vs K = 4 partitioned event loops, reported as payments/sec in
//! `BENCH_shard_scale.json`.
//!
//! The regime is deliberately *planning-bound*: the path cache is off,
//! so every arrival recomputes a live-funds search over the ~600-node
//! graph, and that per-payment search is exactly the work the sharded
//! engine partitions by ownership (replica bookkeeping is replicated on
//! every shard and does not parallelize). Channels are barely wider
//! than one TU, so the event loop also carries the saturated hop-lock
//! load — same shape as `engine_hot_loop`, minus the cache.
//!
//! Before criterion times anything, a guard (a) pins K=4 semantically
//! bit-identical to K=1 on this exact world, and (b) on hosts with ≥ 4
//! cores asserts the interleaved same-build A/B speedup is ≥ 1.8× —
//! skipped with a logged reason on smaller hosts (the committed
//! baseline's `meta.available_parallelism` records which case the
//! numbers came from; 1-CPU hosts legitimately show K=4 *slower*, since
//! replicated bookkeeping is pure overhead without spare cores).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pcn_routing::channel::NetworkFunds;
use pcn_routing::engine::{EngineConfig, ShardedEngine};
use pcn_routing::scheme::SchemeConfig;
use pcn_routing::tu::Payment;
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, SimDuration, SimTime, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const NODES: usize = 600;
const HOT_PAIRS: usize = 64;
const PAYMENTS: usize = 2_000;
const DURATION_SECS: u64 = 10;
const TARGET_SPEEDUP: f64 = 1.8;

fn world() -> (pcn_graph::Graph, NetworkFunds, Vec<Payment>) {
    let mut rng = StdRng::seed_from_u64(7);
    let g = pcn_graph::watts_strogatz(NODES, 6, 0.2, &mut rng);
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
    let pairs: Vec<(NodeId, NodeId)> = (0..HOT_PAIRS)
        .map(|_| {
            let a = rng.random_range(0..NODES);
            let mut b = rng.random_range(0..NODES);
            while b == a {
                b = rng.random_range(0..NODES);
            }
            (NodeId::from_index(a), NodeId::from_index(b))
        })
        .collect();
    let gap = SimDuration::from_micros(DURATION_SECS * 1_000_000 / PAYMENTS as u64);
    let timeout = SimDuration::from_secs(3);
    let payments = (0..PAYMENTS)
        .map(|i| {
            let (source, dest) = pairs[rng.random_range(0..HOT_PAIRS)];
            let created = SimTime::ZERO + gap.saturating_mul(i as u64);
            Payment {
                id: TxId::new(i as u64),
                source,
                dest,
                value: Amount::from_tokens(8),
                created,
                deadline: created + timeout,
            }
        })
        .collect();
    (g, funds, payments)
}

fn run_once(
    g: &pcn_graph::Graph,
    funds: &NetworkFunds,
    payments: &[Payment],
    k: u32,
) -> pcn_routing::RunStats {
    let cfg = EngineConfig {
        use_path_cache: false,
        ..EngineConfig::default()
    };
    ShardedEngine::new(
        g.clone(),
        funds.clone(),
        SchemeConfig::shortest_path(),
        cfg,
        SimRng::seed(1),
        k,
    )
    .run(payments.to_vec())
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pre-timing guards. Returns the measured K=4/K=1 speedup when the
/// host has enough cores to make one, `None` when the assertion was
/// skipped (so the baseline can record which case it documents).
fn assert_sharding_pays(
    g: &pcn_graph::Graph,
    funds: &NetworkFunds,
    payments: &[Payment],
) -> Option<f64> {
    // (a) Semantics first: K=4 must be bit-identical to K=1 on this
    // exact world (the determinism suite pins this across schemes; the
    // bench re-checks its own regime so a bad number can never come
    // from a diverged run).
    let k1 = run_once(g, funds, payments, 1);
    let k4 = run_once(g, funds, payments, 4);
    assert_eq!(k1.generated, PAYMENTS as u64);
    assert!(k1.is_consistent(), "bookkeeping drifted: {k1}");
    assert_eq!(
        k1.without_cache_counters(),
        k4.without_cache_counters(),
        "K=4 diverged semantically from K=1 on the bench world"
    );
    // (b) Scaling, only where scaling is physically possible.
    let cores = cores();
    if cores < 4 {
        eprintln!(
            "shard_scale: SKIPPING the ≥{TARGET_SPEEDUP}× K=4 speedup assertion — host \
             reports {cores} core(s); numbers below are report-only"
        );
        return None;
    }
    let time = |k: u32| {
        let start = Instant::now();
        black_box(run_once(g, funds, payments, k));
        start.elapsed()
    };
    // Interleaved same-build A/B, best-of-3 per arm: alternating the
    // arms inside one process keeps frequency scaling and page-cache
    // state from favouring either side.
    let mut serial = f64::INFINITY;
    let mut sharded = f64::INFINITY;
    for _ in 0..3 {
        serial = serial.min(time(1).as_secs_f64());
        sharded = sharded.min(time(4).as_secs_f64());
    }
    let speedup = serial / sharded;
    assert!(
        speedup >= TARGET_SPEEDUP,
        "K=4 speedup {speedup:.2}× is below the {TARGET_SPEEDUP}× bar on a \
         {cores}-core host (K=1 {serial:.3}s, K=4 {sharded:.3}s)"
    );
    Some(speedup)
}

fn bench_shard_scale(c: &mut Criterion) {
    let (g, funds, payments) = world();
    let speedup = assert_sharding_pays(&g, &funds, &payments);
    let mut group = c.benchmark_group("shard_scale");
    group.sample_size(10);
    group.throughput(Throughput::Elements(PAYMENTS as u64));
    group.metadata("available_parallelism", cores());
    if let Some(s) = speedup {
        group.metadata("measured_speedup_k4", format!("{s:.2}"));
    } else {
        group.metadata("measured_speedup_k4", "skipped: <4 cores");
    }
    for k in [1u32, 4] {
        group.bench_function(format!("blast_uncached_{PAYMENTS}p_{NODES}n_k{k}"), |b| {
            b.iter(|| black_box(run_once(&g, &funds, &payments, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scale);
criterion_main!(benches);
