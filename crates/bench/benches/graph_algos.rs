//! Microbenchmarks for the graph substrate: the per-payment path
//! computations that dominate router cost.

use criterion::{criterion_group, criterion_main, Criterion};
use pcn_graph::{edge_disjoint_widest_paths, k_shortest_paths, max_flow, watts_strogatz, Graph};
use pcn_types::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn topology() -> Graph {
    watts_strogatz(500, 8, 0.3, &mut StdRng::seed_from_u64(1))
}

fn bench_graph(c: &mut Criterion) {
    let g = topology();
    let src = NodeId::new(0);
    let dst = NodeId::new(250);

    let mut group = c.benchmark_group("graph");
    group.sample_size(20);
    group.bench_function("dijkstra_ws500", |b| {
        b.iter(|| black_box(g.shortest_path(src, dst, |_| Some(1.0))))
    });
    group.bench_function("widest_edw_k5_ws500", |b| {
        b.iter(|| {
            black_box(edge_disjoint_widest_paths(&g, src, dst, 5, |e| {
                Some(1.0 + (e.id.index() % 97) as f64)
            }))
        })
    });
    group.bench_function("yen_ksp_k5_ws500", |b| {
        b.iter(|| black_box(k_shortest_paths(&g, src, dst, 5, |_| Some(1.0))))
    });
    group.bench_function("dinic_maxflow_ws500", |b| {
        b.iter(|| {
            black_box(max_flow(&g, src, dst, |e| {
                Some(1 + (e.id.index() % 50) as u64)
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
