//! The routing hot path: repeated path selection on a 1k-node world.
//!
//! Three regimes over the same query set (16 source/dest pairs, EDW
//! k = 4, capacity-only view — Spider's hot loop):
//!
//! * `uncached`  — the pre-PathCache behaviour: every query allocates
//!   fresh search buffers and recomputes from scratch.
//! * `workspace` — recompute every query, but on a reusable
//!   [`pcn_graph::SearchWorkspace`] (allocation-free search state).
//! * `cached`    — the epoch-versioned [`pcn_routing::PathCache`] in the
//!   cache-hit regime (epochs pinned, as between funds movements).
//!
//! The committed `BENCH_routing_hot_path.json` baseline documents the
//! speedup; the acceptance bar is `cached` ≥ 2× faster than `uncached`.

use criterion::{criterion_group, criterion_main, Criterion};
use pcn_graph::SearchWorkspace;
use pcn_routing::cache::{CacheKey, EpochStamp, Volatility};
use pcn_routing::channel::NetworkFunds;
use pcn_routing::paths::{select_paths, select_paths_in, BalanceView, PathSelect};
use pcn_routing::PathCache;
use pcn_types::{Amount, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const NODES: usize = 1_000;
const QUERIES: usize = 16;
const K: usize = 4;

fn world() -> (pcn_graph::Graph, NetworkFunds, Vec<(NodeId, NodeId)>) {
    let mut rng = StdRng::seed_from_u64(42);
    let g = pcn_graph::watts_strogatz(NODES, 8, 0.3, &mut rng);
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
    let pairs: Vec<(NodeId, NodeId)> = (0..QUERIES)
        .map(|_| {
            let a = rng.random_range(0..NODES);
            let mut b = rng.random_range(0..NODES);
            while b == a {
                b = rng.random_range(0..NODES);
            }
            (NodeId::from_index(a), NodeId::from_index(b))
        })
        .collect();
    (g, funds, pairs)
}

fn bench_hot_path(c: &mut Criterion) {
    let (g, funds, pairs) = world();
    let mut group = c.benchmark_group("routing_hot_path");
    group.sample_size(10);

    group.bench_function(format!("uncached_{QUERIES}q_{NODES}n"), |b| {
        b.iter(|| {
            for &(src, dst) in &pairs {
                black_box(select_paths(
                    &g,
                    &funds,
                    src,
                    dst,
                    K,
                    PathSelect::Edw,
                    BalanceView::CapacityOnly,
                    Amount::from_tokens(1),
                ));
            }
        })
    });

    let mut ws = SearchWorkspace::new();
    group.bench_function(format!("workspace_{QUERIES}q_{NODES}n"), |b| {
        b.iter(|| {
            for &(src, dst) in &pairs {
                black_box(select_paths_in(
                    &g,
                    &mut ws,
                    &funds,
                    src,
                    dst,
                    K,
                    PathSelect::Edw,
                    BalanceView::CapacityOnly,
                    Amount::from_tokens(1),
                ));
            }
        })
    });

    // Cache-hit regime: the epochs are pinned for the whole bench, as
    // they are between funds movements in a live engine. The calibration
    // pass warms the cache; every sample then measures hits *including*
    // the plan clone the engine pays to own the result.
    let mut cache = PathCache::new();
    let mut ws = SearchWorkspace::new();
    let now = EpochStamp {
        topology: g.topology_epoch(),
        funds: funds.funds_epoch(),
        prices: 0,
    };
    group.bench_function(format!("cached_{QUERIES}q_{NODES}n"), |b| {
        b.iter(|| {
            for &(src, dst) in &pairs {
                let plan = cache.get_or_compute(
                    CacheKey::plan(src, dst),
                    now,
                    Volatility::CapacityOnly,
                    || {
                        select_paths_in(
                            &g,
                            &mut ws,
                            &funds,
                            src,
                            dst,
                            K,
                            PathSelect::Edw,
                            BalanceView::CapacityOnly,
                            Amount::from_tokens(1),
                        )
                    },
                );
                black_box(plan.to_vec());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
