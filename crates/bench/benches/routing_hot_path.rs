//! The routing hot path: repeated path selection on a 1k-node world.
//!
//! Four regimes over the same query set (16 source/dest pairs, EDW
//! k = 4):
//!
//! * `uncached`  — the pre-PathCache behaviour: every query allocates
//!   fresh search buffers and recomputes from scratch (capacity-only
//!   view — Spider's hot loop).
//! * `workspace` — recompute every query, but on a reusable
//!   [`pcn_graph::SearchWorkspace`] (allocation-free search state).
//! * `cached`    — the epoch-versioned [`pcn_routing::PathCache`] in the
//!   cache-hit regime (epochs pinned, as between funds movements).
//! * `cached_live_churn` — the footprint-scoped live-view regime: every
//!   pass first moves funds on a channel *outside* the query footprints
//!   (the global funds epoch advances, as under real traffic), then runs
//!   the 16 live-balance queries through
//!   [`pcn_routing::PathCache::get_or_compute_scoped`]. Per-channel
//!   epochs keep every entry fresh, so the steady-state hit rate stays
//!   above 50% — the regime that used to sit at ~0% under the global
//!   funds epoch.
//!
//! The committed `BENCH_routing_hot_path.json` baseline documents the
//! speedup; the acceptance bar is `cached` ≥ 2× faster than `uncached`.

use criterion::{criterion_group, criterion_main, Criterion};
use pcn_graph::SearchWorkspace;
use pcn_routing::cache::{CacheKey, EpochStamp, Volatility};
use pcn_routing::channel::NetworkFunds;
use pcn_routing::paths::{
    select_paths, select_paths_footprint, select_paths_in, BalanceView, PathSelect,
};
use pcn_routing::PathCache;
use pcn_types::{Amount, ChannelId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const NODES: usize = 1_000;
const QUERIES: usize = 16;
const K: usize = 4;

fn world() -> (
    pcn_graph::Graph,
    NetworkFunds,
    Vec<(NodeId, NodeId)>,
    ChannelId,
) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut g = pcn_graph::watts_strogatz(NODES, 8, 0.3, &mut rng);
    // An isolated appendage the queries can never reach: funds churn on
    // it advances the global epoch without touching any footprint.
    let a = g.add_node();
    let b = g.add_node();
    let churn = g.add_edge(a, b);
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(100));
    let pairs: Vec<(NodeId, NodeId)> = (0..QUERIES)
        .map(|_| {
            let a = rng.random_range(0..NODES);
            let mut b = rng.random_range(0..NODES);
            while b == a {
                b = rng.random_range(0..NODES);
            }
            (NodeId::from_index(a), NodeId::from_index(b))
        })
        .collect();
    (g, funds, pairs, churn)
}

fn bench_hot_path(c: &mut Criterion) {
    let (g, mut funds, pairs, churn) = world();
    let churn_side = g.endpoints(churn).expect("churn channel exists").0;
    let mut group = c.benchmark_group("routing_hot_path");
    group.sample_size(10);

    group.bench_function(format!("uncached_{QUERIES}q_{NODES}n"), |b| {
        b.iter(|| {
            for &(src, dst) in &pairs {
                black_box(select_paths(
                    &g,
                    &funds,
                    src,
                    dst,
                    K,
                    PathSelect::Edw,
                    BalanceView::CapacityOnly,
                    Amount::from_tokens(1),
                    false,
                ));
            }
        })
    });

    let mut ws = SearchWorkspace::new();
    group.bench_function(format!("workspace_{QUERIES}q_{NODES}n"), |b| {
        b.iter(|| {
            for &(src, dst) in &pairs {
                black_box(select_paths_in(
                    &g,
                    &mut ws,
                    &funds,
                    src,
                    dst,
                    K,
                    PathSelect::Edw,
                    BalanceView::CapacityOnly,
                    Amount::from_tokens(1),
                    false,
                ));
            }
        })
    });

    // Cache-hit regime: the epochs are pinned for the whole bench, as
    // they are between funds movements in a live engine. The calibration
    // pass warms the cache; every sample then measures hits *including*
    // the `Arc` handoff the engine pays to share the result.
    let mut cache = PathCache::new();
    let mut ws = SearchWorkspace::new();
    let now = EpochStamp {
        topology: g.topology_epoch(),
        funds: funds.funds_epoch(),
        prices: 0,
    };
    group.bench_function(format!("cached_{QUERIES}q_{NODES}n"), |b| {
        b.iter(|| {
            for &(src, dst) in &pairs {
                let plan = cache.get_or_compute(
                    CacheKey::plan(src, dst),
                    now,
                    Volatility::CapacityOnly,
                    || {
                        select_paths_in(
                            &g,
                            &mut ws,
                            &funds,
                            src,
                            dst,
                            K,
                            PathSelect::Edw,
                            BalanceView::CapacityOnly,
                            Amount::from_tokens(1),
                            false,
                        )
                    },
                );
                black_box(plan);
            }
        })
    });

    // Footprint-scoped live-view regime under funds churn: each pass
    // moves funds on the isolated appendage channel (advancing the
    // global funds epoch, as any real traffic does) before the queries.
    // Entries stay fresh through their per-channel footprint check.
    let mut cache = PathCache::new();
    let mut ws = SearchWorkspace::new();
    group.bench_function(format!("cached_live_churn_{QUERIES}q_{NODES}n"), |b| {
        b.iter(|| {
            funds
                .lock(churn, churn_side, Amount::from_tokens(1))
                .expect("churn lock");
            funds
                .refund(churn, churn_side, Amount::from_tokens(1))
                .expect("churn refund");
            let now = EpochStamp {
                topology: g.topology_epoch(),
                funds: funds.funds_epoch(),
                prices: 0,
            };
            for &(src, dst) in &pairs {
                let plan =
                    cache.get_or_compute_scoped(CacheKey::plan(src, dst), now, &funds, |fp| {
                        select_paths_footprint(
                            &g,
                            &mut ws,
                            &funds,
                            src,
                            dst,
                            K,
                            PathSelect::Edw,
                            BalanceView::Live,
                            Amount::from_tokens(1),
                            false,
                            fp,
                        )
                    });
                black_box(plan);
            }
        })
    });
    let stats = cache.stats();
    assert!(
        stats.hit_rate() > 0.5,
        "steady-state live-view hit rate must exceed 50% under unrelated churn, got {:.1}% ({stats:?})",
        100.0 * stats.hit_rate(),
    );
    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
