//! Parallel-speedup baseline for the experiment grid: the same 10-cell
//! grid (2 sweep points × 5 schemes) at 1/2/4/8 workers. The JSON
//! baseline lands in `BENCH_harness_grid.json`; wall-clock per grid run
//! should shrink roughly with the worker count until cells run out.

use criterion::{criterion_group, criterion_main, Criterion};
use pcn_harness::ExperimentGrid;
use pcn_workload::{ScenarioParams, SchemeChoice};
use std::hint::black_box;

fn grid() -> ExperimentGrid {
    let mut params = ScenarioParams::tiny();
    params.nodes = 60;
    params.candidate_count = 6;
    params.arrivals_per_sec = 15.0;
    params.duration = pcn_types::SimDuration::from_secs(10);
    ExperimentGrid::new(params)
        .schemes(SchemeChoice::COMPARED)
        .sweep_channel_scale(&[0.5, 2.0])
}

fn bench_grid(c: &mut Criterion) {
    let grid = grid();
    let mut group = c.benchmark_group("harness_grid");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("grid_10cells_{workers}w"), |b| {
            b.iter(|| black_box(grid.run(workers)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid);
criterion_main!(benches);
