//! Parallel-speedup baseline for the experiment grid: the same 10-cell
//! grid (2 sweep points × 5 schemes) at 1/2/4/8 workers. The JSON
//! baseline lands in `BENCH_harness_grid.json`; wall-clock per grid run
//! should shrink roughly with the worker count until cells run out.
//!
//! The baseline stamps `available_parallelism` into the JSON's `meta`
//! object: on a 1-CPU host the 1w/2w/4w/8w rows are legitimately flat,
//! and a reader diffing baselines across machines needs that fact next
//! to the numbers. For the same reason the scaling *assertion* (4
//! workers beat 1 worker) only arms on hosts with ≥ 4 cores — skipped
//! with a logged reason elsewhere, never silently.

use criterion::{criterion_group, criterion_main, Criterion};
use pcn_harness::ExperimentGrid;
use pcn_workload::{ScenarioParams, SchemeChoice};
use std::hint::black_box;
use std::time::Instant;

fn grid() -> ExperimentGrid {
    let mut params = ScenarioParams::tiny();
    params.nodes = 60;
    params.candidate_count = 6;
    params.arrivals_per_sec = 15.0;
    params.duration = pcn_types::SimDuration::from_secs(10);
    ExperimentGrid::new(params)
        .schemes(SchemeChoice::COMPARED)
        .sweep_channel_scale(&[0.5, 2.0])
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pre-timing guard: on a host that can actually run 4 workers at once,
/// the 4-worker grid must beat the 1-worker grid (interleaved best-of-3
/// so a background hiccup can't fail the run on its own).
fn assert_grid_scales(grid: &ExperimentGrid) {
    let cores = cores();
    if cores < 4 {
        eprintln!(
            "harness_grid: SKIPPING the 4-worker scaling assertion — host reports \
             {cores} core(s), flat wall-clock across worker counts is expected here"
        );
        return;
    }
    let time = |workers: usize| {
        let start = Instant::now();
        black_box(grid.run(workers));
        start.elapsed()
    };
    let mut serial = f64::INFINITY;
    let mut parallel = f64::INFINITY;
    for _ in 0..3 {
        serial = serial.min(time(1).as_secs_f64());
        parallel = parallel.min(time(4).as_secs_f64());
    }
    assert!(
        parallel < serial,
        "4-worker grid ({parallel:.3}s) must beat 1 worker ({serial:.3}s) on a \
         {cores}-core host"
    );
}

fn bench_grid(c: &mut Criterion) {
    let grid = grid();
    assert_grid_scales(&grid);
    let mut group = c.benchmark_group("harness_grid");
    group.sample_size(10);
    group.metadata("available_parallelism", cores());
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("grid_10cells_{workers}w"), |b| {
            b.iter(|| black_box(grid.run(workers)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid);
criterion_main!(benches);
