//! Microbenchmarks for the LP/MILP solver behind small-scale placement.

use criterion::{criterion_group, criterion_main, Criterion};
use milp::{Bounds, Cmp, Model, Sense};
use std::hint::black_box;

/// A transportation-style LP with `n` supplies and `n` demands.
#[allow(clippy::needless_range_loop)] // (i, j) mirror the LP's index notation
fn transportation_lp(n: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let mut x = vec![vec![]; n];
    for (i, xi) in x.iter_mut().enumerate() {
        for j in 0..n {
            let cost = 1.0 + ((i * 7 + j * 13) % 10) as f64;
            xi.push(m.add_var(format!("x{i}_{j}"), Bounds::non_negative(), cost));
        }
    }
    for i in 0..n {
        m.add_constraint((0..n).map(|j| (x[i][j], 1.0)).collect(), Cmp::Le, 20.0);
        m.add_constraint((0..n).map(|j| (x[j][i], 1.0)).collect(), Cmp::Ge, 10.0);
    }
    m
}

/// A binary knapsack MILP with `n` items.
fn knapsack_milp(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> = (0..n)
        .map(|i| {
            m.add_var(
                format!("x{i}"),
                Bounds::binary(),
                (1 + (i * 17) % 29) as f64,
            )
        })
        .collect();
    m.add_constraint(
        xs.iter()
            .enumerate()
            .map(|(i, &x)| (x, (1 + (i * 11) % 19) as f64))
            .collect(),
        Cmp::Le,
        (3 * n) as f64,
    );
    m
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp");
    group.sample_size(15);
    group.bench_function("simplex_transportation_12x12", |b| {
        let m = transportation_lp(12);
        b.iter(|| black_box(m.solve_relaxation().unwrap()))
    });
    group.bench_function("branch_bound_knapsack_14", |b| {
        let m = knapsack_milp(14);
        b.iter(|| black_box(m.solve().unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
