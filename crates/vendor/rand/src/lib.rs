//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the subset of `rand` it actually uses is vendored here:
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and [`rngs::StdRng`].
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! upstream ChaCha12, so raw streams differ from real `rand`, but every
//! consumer in this workspace only relies on determinism per seed, which
//! holds: identical seeds yield identical streams on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level generator interface: raw words and byte fills.
pub trait RngCore {
    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Values samplable from the uniform "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, span)` via 128-bit widening multiply
/// with a rejection pass (Lemire's method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Signed starts sign-extend, so the u64 difference is the
                // true span for every integer width.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard uniform distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha12 — streams differ from real `rand`, but
    /// determinism per seed (the only property consumers rely on) holds.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let i = r.random_range(0usize..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rng_usable_through_mut_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0u64..100)
        }
        let mut r = StdRng::seed_from_u64(5);
        let v = draw(&mut r);
        assert!(v < 100);
    }
}
