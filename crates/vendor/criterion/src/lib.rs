//! Offline stand-in for the `criterion` benchmark harness.
//!
//! This workspace builds hermetically (no crates.io), so the subset of
//! criterion's API the benches use is vendored here: [`Criterion`],
//! benchmark groups, [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is simple but honest: each
//! bench is warmed up, then timed over enough iterations to fill a
//! target window, and per-iteration wall-clock statistics are printed.
//!
//! Results are additionally appended to `BENCH_<group>.json` in the
//! invocation directory (override with `BENCH_OUTPUT_DIR`), giving the
//! repo a committed machine-readable baseline without external deps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark (bytes or elements per iteration).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One measured benchmark result.
#[derive(Clone, Debug)]
struct Measurement {
    name: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    throughput: Option<Throughput>,
}

/// The benchmark driver. Collects measurements and writes one JSON
/// baseline file per group on [`BenchmarkGroup::finish`].
#[derive(Default)]
pub struct Criterion {
    quick: bool,
}

impl Criterion {
    /// Reads CLI/env configuration. Recognizes `--quick` (also the
    /// `BENCH_QUICK=1` environment variable): a smoke mode with minimal
    /// samples and a short measurement window, so CI can *execute* every
    /// bench cheaply instead of merely compiling it. Quick runs never
    /// write baseline files — their numbers are not measurements.
    /// Everything else is accepted and ignored, mirroring criterion.
    pub fn configure_from_args(mut self) -> Criterion {
        self.quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1");
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let quick = self.quick;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
            results: Vec::new(),
            metadata: Vec::new(),
            finished: false,
            quick,
        }
    }

    /// Runs a standalone benchmark (its own single-entry group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        let name = name.into();
        {
            let mut group = self.benchmark_group(name.clone());
            group.bench_function(name, f);
            group.finish();
        }
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    results: Vec<Measurement>,
    metadata: Vec<(String, String)>,
    finished: bool,
    quick: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Records a host/run fact in the group's baseline file (a `"meta"`
    /// object in `BENCH_<group>.json`). Our extension, not criterion
    /// API: baselines measured on shared or small hosts are only
    /// interpretable alongside facts like the core count, so benches
    /// stamp them into the artifact itself instead of a side channel.
    /// Values that parse as numbers are written as JSON numbers,
    /// everything else as strings. Last write per key wins.
    pub fn metadata(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        let key = key.into();
        self.metadata.retain(|(k, _)| *k != key);
        self.metadata.push((key, value.to_string()));
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let name = name.into();
        // Warmup + calibration: one iteration to estimate cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let est = b.elapsed.max(Duration::from_nanos(1));
        // Aim each sample at ~20ms (2ms in quick mode), capped to keep
        // slow benches bounded.
        let window = if self.quick {
            Duration::from_millis(2)
        } else {
            Duration::from_millis(20)
        };
        let per_sample = (window.as_nanos() / est.as_nanos()).max(1);
        let iters = per_sample.min(1_000_000) as u64;
        let samples = if self.quick {
            self.sample_size.min(2)
        } else {
            self.sample_size
        };
        let mut ns_per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            ns_per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        ns_per_iter.sort_by(f64::total_cmp);
        let median = ns_per_iter[ns_per_iter.len() / 2];
        let mean = ns_per_iter.iter().sum::<f64>() / ns_per_iter.len() as f64;
        let m = Measurement {
            name: format!("{}/{}", self.name, name),
            median_ns: median,
            mean_ns: mean,
            min_ns: ns_per_iter[0],
            max_ns: *ns_per_iter.last().expect("non-empty"),
            samples: ns_per_iter.len(),
            throughput: self.throughput,
        };
        report(&m);
        self.results.push(m);
        self
    }

    /// Flushes the group's JSON baseline (skipped in quick mode — smoke
    /// numbers must never overwrite a real baseline).
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if !self.quick {
            write_json(&self.name, &self.results, &self.metadata);
        }
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(m: &Measurement) {
    let mut line = format!(
        "{:<44} median {:>12}  (mean {}, {} samples)",
        m.name,
        human(m.median_ns),
        human(m.mean_ns),
        m.samples
    );
    match m.throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gib = bytes as f64 / m.median_ns; // bytes/ns == GB/s
            line.push_str(&format!("  {gib:.3} GB/s"));
        }
        Some(Throughput::Elements(elems)) => {
            let eps = elems as f64 / (m.median_ns / 1e9);
            line.push_str(&format!("  {eps:.0} elem/s"));
        }
        None => {}
    }
    println!("{line}");
}

/// Parses the `(name, median_ns)` pairs back out of a previously written
/// baseline file. The format is our own (see [`write_json`]), so a line
/// scan is enough — no JSON parser in the hermetic workspace.
fn parse_baseline(body: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in body.lines() {
        let Some(rest) = line.trim_start().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some(rest) = rest.split_once("\"median_ns\": ").map(|(_, r)| r) else {
            continue;
        };
        let median: f64 = rest
            .split(',')
            .next()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(f64::NAN);
        if median.is_finite() {
            out.push((name.to_string(), median));
        }
    }
    out
}

/// Median slowdown (percent) above which the baseline diff flags a
/// benchmark as a likely regression in its report.
const REGRESSION_FLAG_PCT: f64 = 25.0;

/// Report-only regression check: prints the median delta of each
/// benchmark against the checked-in `BENCH_<group>.json` baseline before
/// it is overwritten, flagging medians more than
/// [`REGRESSION_FLAG_PCT`] percent slower. Never fails the run —
/// shared-hardware noise (and the 1-CPU build container) makes a hard
/// gate meaningless; the flags are for the reviewer.
fn diff_against_baseline(results: &[Measurement], previous: &str) {
    let baseline = parse_baseline(previous);
    if baseline.is_empty() {
        return;
    }
    println!("  vs checked-in baseline (report only):");
    let mut flagged = 0u32;
    for m in results {
        match baseline.iter().find(|(name, _)| *name == m.name) {
            Some((_, old)) if *old > 0.0 => {
                let delta = 100.0 * (m.median_ns - old) / old;
                let flag = if delta > REGRESSION_FLAG_PCT {
                    flagged += 1;
                    "  ⚠ REGRESSION?"
                } else {
                    ""
                };
                println!(
                    "    {:<44} {:>12} -> {:>12}  ({:+.1}%){}",
                    m.name,
                    human(*old),
                    human(m.median_ns),
                    delta,
                    flag
                );
            }
            _ => println!("    {:<44} (new, no baseline entry)", m.name),
        }
    }
    if flagged > 0 {
        println!(
            "  ⚠ {flagged} benchmark(s) regressed >{REGRESSION_FLAG_PCT}% vs the committed \
             baseline — rerun on quiet hardware or investigate before refreshing it"
        );
    }
}

fn write_json(group: &str, results: &[Measurement], metadata: &[(String, String)]) {
    if results.is_empty() {
        return;
    }
    let dir = std::env::var("BENCH_OUTPUT_DIR").unwrap_or_else(|_| ".".into());
    let safe: String = group
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = std::path::Path::new(&dir).join(format!("BENCH_{safe}.json"));
    if let Ok(previous) = std::fs::read_to_string(&path) {
        diff_against_baseline(results, &previous);
    }
    let mut body = String::from("{\n  \"group\": \"");
    body.push_str(group);
    body.push_str("\",\n");
    if !metadata.is_empty() {
        body.push_str("  \"meta\": {");
        for (i, (key, value)) in metadata.iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            if value.parse::<f64>().is_ok() {
                body.push_str(&format!("\"{key}\": {value}"));
            } else {
                body.push_str(&format!("\"{key}\": \"{value}\""));
            }
        }
        body.push_str("},\n");
    }
    body.push_str("  \"benchmarks\": [\n");
    for (i, m) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{}\n",
            m.name,
            m.median_ns,
            m.mean_ns,
            m.min_ns,
            m.max_ns,
            m.samples,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(body.as_bytes());
    }
}

/// Re-export of [`std::hint::black_box`], mirroring criterion's export.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        std::env::set_var("BENCH_OUTPUT_DIR", std::env::temp_dir());
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(group.results.len(), 1);
        assert!(group.results[0].median_ns >= 0.0);
    }

    #[test]
    fn metadata_lands_in_the_baseline_json() {
        // Same value as `measures_and_reports` sets, so the tests cannot
        // race each other through the process-global environment.
        let dir = std::env::temp_dir();
        std::env::set_var("BENCH_OUTPUT_DIR", &dir);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("metaselftest");
        group.sample_size(2);
        group.metadata("available_parallelism", 4);
        group.metadata("host", "ci");
        group.metadata("host", "local"); // last write wins
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        let body = std::fs::read_to_string(dir.join("BENCH_metaselftest.json")).expect("baseline");
        assert!(
            body.contains("\"meta\": {\"available_parallelism\": 4, \"host\": \"local\"}"),
            "numbers unquoted, strings quoted, deduped: {body}"
        );
        // The extra "meta" line must not confuse the baseline re-reader.
        let parsed = parse_baseline(&body);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "metaselftest/noop");
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
        assert!(human(2e9).ends_with(" s"));
    }
}
