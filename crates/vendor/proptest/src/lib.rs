//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the [`proptest!`] macro over range / tuple / `prop::collection`
//! strategies, plus `prop_assert!`-style assertions.
//!
//! Differences from real proptest, deliberately accepted for hermetic
//! builds: no shrinking (a failing case reports its inputs but is not
//! minimized), and cases are drawn from a fixed deterministic seed so
//! every run exercises the identical sample set. Case count defaults to
//! 64 and can be raised with `PROPTEST_CASES`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating a case.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the deterministic generator for a named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a of the test name: stable per test, independent of order.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// A value generator. Mirrors proptest's `Strategy` in spirit: anything
/// that can produce a random `Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// `prop::…` helper namespace, mirroring proptest's layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec<T>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors of `element` values with lengths in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.0.random_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Number of cases each property runs (override with `PROPTEST_CASES`).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            let strategies = ($($strat,)*);
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..$crate::case_count() {
                #[allow(unused_variables)]
                let ($($arg,)*) = $crate::Strategy::generate(&strategies, &mut rng);
                // Bodies may consume their inputs; describe the case first.
                let described = format!("{:?}", ($(&$arg,)*));
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case} of {} failed with inputs: {described}",
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 1u64..100, b in 0u8..3) {
            prop_assert!((1..100).contains(&a));
            prop_assert!(b < 3);
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec((0u8..3, 0u64..5_000), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (op, amt) in v {
                prop_assert!(op < 3);
                prop_assert!(amt < 5_000);
            }
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let s = 0u64..1_000_000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
